//! The paper's motivating deployment (§VIII): a smart building where
//! every floor hosts one DODAG that cannot hear the others. Runs the
//! same heavy-traffic workload under GT-TSCH and under Orchestra and
//! prints the comparison the paper's Fig. 8 makes at 120 ppm.
//!
//! ```text
//! cargo run --release -p gtt-examples --example smart_building
//! ```

use gtt_metrics::FigureRow;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn main() {
    // Two floors × 7 motes; sensors report every 0.5 s (120 ppm) —
    // "very heavy" traffic by low-power IoT standards (§VIII).
    let scenario = ScenarioSpec::two_dodag(7);
    let spec = RunSpec {
        traffic_ppm: 120.0,
        warmup_secs: 120,
        measure_secs: 300,
        seed: 7,
        ..RunSpec::default()
    };

    let built = scenario.build();
    println!(
        "smart building: {} floors, {} motes total, {} ppm per sensor\n",
        built.roots.len(),
        built.topology.len(),
        spec.traffic_ppm
    );

    let mut rows: Vec<(&str, FigureRow)> = Vec::new();
    for scheduler in [
        SchedulerKind::gt_tsch_default(),
        SchedulerKind::orchestra_default(),
        SchedulerKind::minimal(32),
    ] {
        println!("running {} …", scheduler.name());
        let report = Experiment::new(scenario.clone(), scheduler)
            .with_run(spec)
            .run();
        rows.push((report.scheduler, report.row));
    }

    println!("\n{:<12}{}", "scheduler", FigureRow::header());
    for (name, row) in &rows {
        println!("{name:<12}{row}");
    }

    let gt = rows[0].1;
    let orch = rows[1].1;
    println!(
        "\nGT-TSCH delivers {:.1}× Orchestra's throughput at this load \
         ({:.0} vs {:.0} packets/minute) with {:.0}% vs {:.0}% PDR.",
        gt.received_per_min / orch.received_per_min,
        gt.received_per_min,
        orch.received_per_min,
        gt.pdr_percent,
        orch.pdr_percent,
    );
}
