//! Makes the paper's §III interference analysis visible: the same
//! GT-TSCH network run once with Algorithm 1's coordinated channel
//! allocation and once with the hash-based channel selection that
//! §III criticizes in autonomous schedulers.
//!
//! The demo prints the channels each node uses, checks the three-hop
//! uniqueness property, and compares collision counts.
//!
//! ```text
//! cargo run --release -p gtt-examples --example interference_demo
//! ```

use gt_tsch::GtTschConfig;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn run_variant(hash_channels: bool) -> (u64, f64, Vec<String>) {
    let cfg = GtTschConfig {
        hash_channels,
        ..GtTschConfig::paper_default()
    };
    let exp =
        Experiment::new(ScenarioSpec::two_dodag(7), SchedulerKind::GtTsch(cfg)).with_run(RunSpec {
            traffic_ppm: 120.0,
            warmup_secs: 120,
            measure_secs: 240,
            seed: 11,
            ..RunSpec::default()
        });
    let mut net = exp.build_network();
    let report = exp.run_on(&mut net);

    let collisions: u64 = report.per_node.iter().map(|n| n.collisions_heard).sum();
    let mut tree = Vec::new();
    for node in net.nodes() {
        let summary = node.scheduler.debug_summary();
        if !summary.is_empty() {
            // Keep only the channel part of the debug line.
            let channels: String = summary
                .split(" ask(")
                .next()
                .unwrap_or_default()
                .to_string();
            tree.push(format!(
                "  {} (parent {}): {}",
                node.id(),
                node.rpl
                    .parent()
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
                channels
            ));
        }
    }
    (collisions, report.row.pdr_percent, tree)
}

fn main() {
    println!("=== Algorithm 1 (the paper's coordinated channel allocation) ===");
    let (coll_a, pdr_a, tree) = run_variant(false);
    for line in &tree {
        println!("{line}");
    }
    println!("collisions heard: {coll_a}, PDR {pdr_a:.1}%\n");

    println!("=== hash-based channels (the §III strawman) ===");
    let (coll_b, pdr_b, tree) = run_variant(true);
    for line in &tree {
        println!("{line}");
    }
    println!("collisions heard: {coll_b}, PDR {pdr_b:.1}%\n");

    println!(
        "Algorithm 1 vs hash: {coll_a} vs {coll_b} collisions, \
         {pdr_a:.1}% vs {pdr_b:.1}% PDR."
    );
    println!(
        "The four §III problems (same-slot parent/child schedules, sibling \
         channel reuse, uncle/nephew reuse, two-hop hidden terminals) all \
         show up as the extra collisions of the hash variant."
    );
}
