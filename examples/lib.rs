//! Support crate for the runnable examples; see the `[[example]]`
//! targets in `Cargo.toml`:
//!
//! * `quickstart` — one GT-TSCH network, the six paper metrics;
//! * `smart_building` — the paper's building-automation motivation,
//!   GT-TSCH vs Orchestra side by side;
//! * `interference_demo` — the §III channel-allocation problems made
//!   visible (Algorithm 1 vs hash channels);
//! * `game_convergence` — the §VII game: payoffs, eq. 15 and
//!   best-response dynamics.
