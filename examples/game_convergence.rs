//! The §VII game, in isolation: payoff curves, the closed-form optimum
//! (eq. 15), and the Nash equilibrium of a small chain of players.
//!
//! ```text
//! cargo run --release -p gtt-examples --example game_convergence
//! ```

use gt_tsch::game::{nash_equilibrium, GameInputs, GameWeights};

fn main() {
    let weights = GameWeights::default();
    println!(
        "weights: α={}, β={}, γ={}\n",
        weights.alpha, weights.beta, weights.gamma
    );

    // --- 1. One player's payoff curve -------------------------------
    let player = GameInputs {
        rank_weight: 1.0, // first-hop node
        etx: 1.2,
        queue_avg: 6.0,
        queue_max: 8.0,
        l_tx_min: 1,
        l_rx_parent: 10,
    };
    println!("payoff v(l) for a first-hop node (ETX 1.2, queue 6/8):");
    let best = player.best_response(&weights);
    for l in 0..=10u16 {
        let v = player.payoff(&weights, l as f64);
        let bar_len = ((v + 1.0) * 20.0).max(0.0) as usize;
        let marker = if l == best.cells {
            "  ← eq. 15 optimum"
        } else {
            ""
        };
        println!("  l={l:>2}  v={v:+.3}  {}{marker}", "█".repeat(bar_len));
    }
    println!(
        "\nstationary point X = {:.3}, best integer response = {} ({:?})\n",
        player.stationary_point(&weights),
        best.cells,
        best.bound
    );

    // --- 2. How the optimum moves with the inputs --------------------
    println!("eq. 15 under varying link quality (queue fixed at 6/8):");
    for etx in [1.0, 1.5, 2.0, 3.0, 5.0] {
        let p = GameInputs { etx, ..player };
        println!(
            "  ETX {etx:>3.1} → l* = {}",
            p.best_response(&weights).cells
        );
    }
    println!("\neq. 15 under varying queue backlog (ETX fixed at 1.2):");
    for q in [0.0, 2.0, 4.0, 6.0, 7.5] {
        let p = GameInputs {
            queue_avg: q,
            ..player
        };
        println!("  Q̄ {q:>4.1} → l* = {}", p.best_response(&weights).cells);
    }

    // --- 3. The n-player equilibrium ---------------------------------
    // A 4-hop chain: deeper nodes have smaller rank weight (eq. 3) and
    // emptier queues; the equilibrium allocates more to nodes near the
    // root — the paper's load-balancing claim.
    let players: Vec<GameInputs> = (1..=4)
        .map(|hop| GameInputs {
            rank_weight: 1.0 / hop as f64,
            etx: 1.1,
            queue_avg: 6.0 / hop as f64,
            queue_max: 8.0,
            l_tx_min: 1,
            l_rx_parent: 10,
        })
        .collect();
    let ne = nash_equilibrium(&players, &weights);
    println!("\nNash equilibrium of a 4-hop chain (hop 1 = closest to root):");
    for (hop, l) in ne.iter().enumerate() {
        println!("  hop {}: l* = {l}", hop + 1);
    }
    assert!(
        ne.windows(2).all(|w| w[0] >= w[1]),
        "closer to the root ⇒ at least as many cells"
    );
    println!("\nUniqueness (Thm 2): re-running best responses reproduces the same point:");
    println!("  {:?} == {:?}", ne, nash_equilibrium(&players, &weights));
}
