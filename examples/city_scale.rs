//! City-scale walkthrough: 1 000 nodes in 10 clustered DODAGs, a
//! courier node crossing between clusters mid-run, and the spatial
//! index that makes both cheap.
//!
//! ```text
//! cargo run --release -p gtt-examples --example city_scale
//! ```

use std::time::Instant;

use gtt_net::{NodeId, Position};
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, Overlay, RunSpec, ScenarioSpec, SchedulerKind, StepMobility};

fn main() {
    // Ten phyllotaxis-packed sensor clusters, each its own DODAG with
    // its own border router, on a 1 km grid — radio-disjoint islands.
    // The layout is a pure function of the two counts (no RNG), so the
    // scenario is sweep-cacheable like any other.
    let spec = ScenarioSpec::city(10, 100);
    let scenario = spec.build();
    let islands = scenario.topology.audibility_islands();
    println!(
        "scenario `{}`: {} nodes, {} DODAG roots, {} audibility islands",
        scenario.name,
        scenario.topology.len(),
        scenario.roots.len(),
        islands.len(),
    );

    // A courier leaf from cluster 0 drives into cluster 1's radio
    // space mid-measurement and back. Each hop re-keys the island
    // partition; with the spatial index it costs bucket-local work,
    // not an O(n²) adjacency rebuild.
    let courier = NodeId::new(99);
    let exp = Experiment::new(spec, SchedulerKind::gt_tsch_default())
        .with_run(RunSpec {
            traffic_ppm: 1.0,
            warmup_secs: 300,
            measure_secs: 120,
            seed: 42,
            low_power: true,
        })
        .with_overlay(Overlay::Mobility(
            StepMobility::new()
                .hop(
                    SimDuration::from_secs(30),
                    courier,
                    Position::new(1_060.0, 60.0),
                )
                .hop(
                    SimDuration::from_secs(80),
                    courier,
                    Position::new(60.0, 60.0),
                ),
        ));

    let start = Instant::now();
    let report = exp.run();
    println!(
        "simulated {} s of city traffic in {:.2} s wall: join {:.0} %, \
         PDR {:.1} %, mean delay {:.0} ms, duty cycle {:.2} %",
        420,
        start.elapsed().as_secs_f64(),
        report.join_ratio * 100.0,
        report.row.pdr_percent,
        report.row.delay_ms,
        report.row.duty_cycle_percent,
    );
    // (Deep 100-node clusters at the low-power cadence are a stress
    // regime: everything joins, but multi-hop contention around each
    // root caps the deliverable rate well below 100 %.)

    // The incremental-mobility price tag, measured directly: hop the
    // courier between clusters a thousand times on the bare topology.
    let mut topo = exp.scenario.build().topology;
    let spots = [Position::new(1_060.0, 60.0), Position::new(60.0, 60.0)];
    let moves = 1_000;
    let start = Instant::now();
    for k in 0..moves {
        topo.set_position(courier, spots[k % spots.len()]);
    }
    println!(
        "incremental set_position over {} nodes: {:.1} µs/move",
        topo.len(),
        start.elapsed().as_secs_f64() * 1e6 / moves as f64,
    );
}
