//! Quickstart: simulate a small GT-TSCH network and print the paper's
//! six metrics.
//!
//! ```text
//! cargo run --release -p gtt-examples --example quickstart [-- --pcap PATH]
//! ```
//!
//! With `--pcap PATH` every resolved transmission of the run is also
//! captured as an IEEE 802.15.4 frame into a Wireshark-readable pcap
//! file (linktype 195). The tap is a pure observer: the printed metrics
//! are byte-identical with and without it.

use gtt_metrics::FigureRow;
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

/// Parses the optional `--pcap PATH` argument.
fn pcap_path() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().position(|a| a == "--pcap") {
        Some(i) => match args.get(i + 1) {
            Some(p) => Some(p.into()),
            None => {
                eprintln!("error: --pcap needs a file path");
                std::process::exit(2);
            }
        },
        None => None,
    }
}

fn main() {
    // One DODAG of 7 motes (a root/border-router plus 6 sensors), the
    // shape of the paper's evaluation networks; every sensor reports 60
    // packets per minute towards the root. The whole run is one
    // declarative value.
    let exp = Experiment::new(
        ScenarioSpec::single_dodag(7),
        SchedulerKind::gt_tsch_default(),
    )
    .with_run(RunSpec {
        traffic_ppm: 60.0,
        warmup_secs: 90,
        measure_secs: 180,
        seed: 42,
        ..RunSpec::default()
    });

    let scenario = exp.scenario.build();
    println!(
        "scenario `{}`: {} nodes, {} senders, root {}",
        scenario.name,
        scenario.topology.len(),
        scenario.senders(),
        scenario.roots[0],
    );

    // Driven by hand here (`exp.run()` does all of this in one call) so
    // the join ratio is visible between warm-up and measurement.
    let mut net = exp.build_network();

    // `--pcap`: hang a frame tap off the radio medium. Observers never
    // participate — the run below is bit-for-bit the same either way.
    let pcap = pcap_path().map(|path| {
        let (tap, bytes) = gtt_frame::PcapTap::new();
        net.set_frame_tap(Some(Box::new(tap)));
        (path, bytes)
    });

    net.run_for(SimDuration::from_secs(exp.run.warmup_secs));
    println!(
        "after {}s warm-up: {:.0}% of nodes joined the DODAG",
        exp.run.warmup_secs,
        net.join_ratio() * 100.0
    );

    // Steady-state measurement.
    net.start_measurement();
    net.run_for(SimDuration::from_secs(exp.run.measure_secs));
    net.finish_measurement();

    let report = net.report();
    println!(
        "\n[{}] {} packets generated, {} delivered ({:.2} hops avg)",
        report.scheduler, report.generated, report.delivered, report.mean_hops
    );
    println!("{}", FigureRow::header());
    println!("{}", report.row);

    println!("\nper-node view:");
    println!("  node   parent   rank      duty%   cells");
    for node in &report.per_node {
        println!(
            "  {:>4}   {:>6}   {:>6}   {:>6.2}   {:>5}",
            node.id.to_string(),
            node.parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            node.rank.raw(),
            node.duty_cycle * 100.0,
            node.scheduled_cells,
        );
    }

    if let Some((path, bytes)) = pcap {
        net.set_frame_tap(None); // drop the tap's handle on the buffer
        let capture = std::sync::Arc::try_unwrap(bytes)
            .expect("tap dropped")
            .into_inner()
            .expect("capture buffer poisoned");
        std::fs::write(&path, &capture).unwrap_or_else(|e| {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        });
        println!(
            "\nwrote {} bytes of pcap to {}",
            capture.len(),
            path.display()
        );
    }
}
