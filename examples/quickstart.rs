//! Quickstart: simulate a small GT-TSCH network and print the paper's
//! six metrics.
//!
//! ```text
//! cargo run --release -p gtt-examples --example quickstart
//! ```

use gtt_metrics::FigureRow;
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn main() {
    // One DODAG of 7 motes (a root/border-router plus 6 sensors), the
    // shape of the paper's evaluation networks; every sensor reports 60
    // packets per minute towards the root. The whole run is one
    // declarative value.
    let exp = Experiment::new(
        ScenarioSpec::single_dodag(7),
        SchedulerKind::gt_tsch_default(),
    )
    .with_run(RunSpec {
        traffic_ppm: 60.0,
        warmup_secs: 90,
        measure_secs: 180,
        seed: 42,
        ..RunSpec::default()
    });

    let scenario = exp.scenario.build();
    println!(
        "scenario `{}`: {} nodes, {} senders, root {}",
        scenario.name,
        scenario.topology.len(),
        scenario.senders(),
        scenario.roots[0],
    );

    // Driven by hand here (`exp.run()` does all of this in one call) so
    // the join ratio is visible between warm-up and measurement.
    let mut net = exp.build_network();
    net.run_for(SimDuration::from_secs(exp.run.warmup_secs));
    println!(
        "after {}s warm-up: {:.0}% of nodes joined the DODAG",
        exp.run.warmup_secs,
        net.join_ratio() * 100.0
    );

    // Steady-state measurement.
    net.start_measurement();
    net.run_for(SimDuration::from_secs(exp.run.measure_secs));
    net.finish_measurement();

    let report = net.report();
    println!(
        "\n[{}] {} packets generated, {} delivered ({:.2} hops avg)",
        report.scheduler, report.generated, report.delivered, report.mean_hops
    );
    println!("{}", FigureRow::header());
    println!("{}", report.row);

    println!("\nper-node view:");
    println!("  node   parent   rank      duty%   cells");
    for node in &report.per_node {
        println!(
            "  {:>4}   {:>6}   {:>6}   {:>6.2}   {:>5}",
            node.id.to_string(),
            node.parent
                .map(|p| p.to_string())
                .unwrap_or_else(|| "-".into()),
            node.rank.raw(),
            node.duty_cycle * 100.0,
            node.scheduled_cells,
        );
    }
}
