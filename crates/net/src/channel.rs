//! Physical radio channels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An IEEE 802.15.4 physical channel number (11–26 in the 2.4 GHz band).
///
/// This is the channel a radio is actually tuned to in a given timeslot,
/// *after* TSCH channel hopping has been applied. The MAC layer's
/// `ChannelOffset` is a different concept (an index into the hopping
/// sequence) and lives in `gtt-mac`; collisions are resolved here, on
/// physical channels, which is what makes hash-collided channel offsets
/// in Orchestra produce real interference (paper §III).
///
/// # Example
///
/// ```
/// use gtt_net::PhysicalChannel;
/// let ch = PhysicalChannel::new(17);
/// assert_eq!(ch.number(), 17);
/// assert_eq!(ch.to_string(), "ch17");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PhysicalChannel(u8);

impl PhysicalChannel {
    /// Creates a physical channel from its IEEE channel number.
    pub const fn new(number: u8) -> Self {
        PhysicalChannel(number)
    }

    /// The IEEE channel number.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// True if this is a valid 2.4 GHz O-QPSK channel (11–26).
    pub const fn is_two_point_four_ghz(self) -> bool {
        self.0 >= 11 && self.0 <= 26
    }
}

impl fmt::Display for PhysicalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl From<u8> for PhysicalChannel {
    fn from(number: u8) -> Self {
        PhysicalChannel(number)
    }
}

impl From<PhysicalChannel> for u8 {
    fn from(ch: PhysicalChannel) -> Self {
        ch.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let ch = PhysicalChannel::from(21u8);
        assert_eq!(u8::from(ch), 21);
        assert_eq!(ch.number(), 21);
    }

    #[test]
    fn band_check() {
        assert!(PhysicalChannel::new(11).is_two_point_four_ghz());
        assert!(PhysicalChannel::new(26).is_two_point_four_ghz());
        assert!(!PhysicalChannel::new(10).is_two_point_four_ghz());
        assert!(!PhysicalChannel::new(27).is_two_point_four_ghz());
    }
}
