//! Per-slot radio medium resolution.
//!
//! TSCH is TDMA: all interesting radio interactions happen inside one
//! timeslot. Each slot, the engine hands the medium every transmission and
//! every listener; the medium answers, per listener, what was heard, and,
//! per unicast transmission, whether an acknowledgement came back.
//!
//! The collision rules implement the paper's §III failure analysis:
//! concurrent transmissions on the same *physical* channel that are both
//! audible at a listener destroy each other there (including the
//! hidden-terminal case where the two senders cannot hear one another).

use gtt_sim::Pcg32;

use crate::channel::PhysicalChannel;
use crate::frame::{Dest, Frame};
use crate::id::NodeId;
use crate::topology::Topology;

/// One node transmitting in the current slot.
#[derive(Debug, Clone)]
pub struct Transmission<P> {
    /// Physical channel the radio is tuned to (post channel-hopping).
    pub channel: PhysicalChannel,
    /// The frame on the air. `frame.src` is the transmitter and
    /// `frame.dst` selects unicast-with-ACK vs broadcast semantics.
    pub frame: Frame<P>,
}

/// One node listening in the current slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Listener {
    /// The listening node.
    pub node: NodeId,
    /// Physical channel its radio is tuned to.
    pub channel: PhysicalChannel,
}

/// What a listener's radio saw during the slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome<P> {
    /// Nothing audible on the listened channel: idle listen.
    Idle,
    /// Exactly one audible transmission, decoded successfully.
    Received(Frame<P>),
    /// Exactly one audible transmission, lost to link error
    /// (Bernoulli `1 − PRR`).
    Faded,
    /// Two or more audible transmissions interfered; carries how many.
    Collision(usize),
}

impl<P> RxOutcome<P> {
    /// The received frame, if any.
    pub fn frame(&self) -> Option<&Frame<P>> {
        match self {
            RxOutcome::Received(f) => Some(f),
            _ => None,
        }
    }

    /// True if the radio heard energy (anything but [`RxOutcome::Idle`]).
    pub fn heard_energy(&self) -> bool {
        !matches!(self, RxOutcome::Idle)
    }
}

/// Result of resolving one slot.
#[derive(Debug, Clone)]
pub struct SlotOutcomes<P> {
    /// Outcome per listener, in the order listeners were supplied.
    pub rx: Vec<(NodeId, RxOutcome<P>)>,
    /// For each transmission (same order as supplied): `Some(true)` if it
    /// was a unicast whose destination decoded it *and* the ACK survived
    /// the reverse link; `Some(false)` if unicast and not acknowledged;
    /// `None` for broadcasts (never acknowledged).
    pub acked: Vec<Option<bool>>,
}

impl<P> SlotOutcomes<P> {
    /// Takes listener `idx`'s outcome by value, leaving
    /// [`RxOutcome::Idle`] behind.
    ///
    /// Each listener's outcome is consumed exactly once per slot, so
    /// moving the (payload-carrying) frame out beats cloning it on every
    /// successful listen.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn take_rx(&mut self, idx: usize) -> RxOutcome<P> {
        std::mem::replace(&mut self.rx[idx].1, RxOutcome::Idle)
    }
}

/// The shared radio medium.
///
/// Owns its own PRNG stream so that link-error draws are independent of
/// every node's local randomness — adding a node to a scenario does not
/// perturb the channel noise other nodes experience.
///
/// # Example
///
/// ```
/// use gtt_net::*;
/// use gtt_sim::{Pcg32, SimTime};
///
/// let topo = TopologyBuilder::new(50.0)
///     .link_model(LinkModel::Perfect)
///     .node(Position::new(0.0, 0.0))
///     .node(Position::new(30.0, 0.0))
///     .build();
/// let mut medium = RadioMedium::new(topo, Pcg32::new(1));
/// let (a, b) = (NodeId::new(0), NodeId::new(1));
/// let ch = PhysicalChannel::new(17);
/// let frame = Frame::new(PacketId::new(0), a, Dest::Unicast(b), SimTime::ZERO, ());
/// let out = medium.resolve_slot(
///     vec![Transmission { channel: ch, frame }],
///     vec![Listener { node: b, channel: ch }],
/// );
/// assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
/// assert_eq!(out.acked[0], Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct RadioMedium {
    topology: Topology,
    rng: Pcg32,
    /// When `true`, ACK frames are themselves subject to the reverse
    /// link's PRR; when `false`, ACKs of decoded frames always arrive.
    lossy_acks: bool,
}

impl RadioMedium {
    /// Creates a medium over `topology` with its own RNG stream.
    pub fn new(topology: Topology, rng: Pcg32) -> Self {
        RadioMedium {
            topology,
            rng,
            lossy_acks: true,
        }
    }

    /// Enables or disables ACK loss on the reverse link (default: enabled).
    pub fn set_lossy_acks(&mut self, lossy: bool) {
        self.lossy_acks = lossy;
    }

    /// The topology this medium resolves over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (runtime fault injection).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Resolves one timeslot.
    ///
    /// For every listener: collect the transmissions on its channel that
    /// are audible at its position (interference range). Zero ⇒ idle; two
    /// or more ⇒ collision; exactly one ⇒ decoded iff it is also within
    /// *communication* range and the link's Bernoulli(PRR) draw succeeds.
    ///
    /// ACKs: a unicast transmission is acknowledged iff its destination
    /// appears among the listeners on the same channel, decoded the frame,
    /// and the reverse-link draw succeeds (when ACK loss is enabled).
    /// A transmitting node never simultaneously listens — TSCH radios are
    /// half-duplex — so any listener entry with the same id as a
    /// transmitter is resolved as if deaf (collision-free idle) and
    /// flagged by a debug assertion.
    pub fn resolve_slot<P: Clone>(
        &mut self,
        transmissions: Vec<Transmission<P>>,
        listeners: Vec<Listener>,
    ) -> SlotOutcomes<P> {
        debug_assert!(
            listeners
                .iter()
                .all(|l| transmissions.iter().all(|t| t.frame.src != l.node)),
            "a node cannot transmit and listen in the same slot (half-duplex)"
        );

        let mut rx = Vec::with_capacity(listeners.len());
        // Who decoded which transmission: decoded[tx_index] = set of nodes.
        let mut decoded: Vec<Vec<NodeId>> = vec![Vec::new(); transmissions.len()];

        for listener in &listeners {
            if transmissions.iter().any(|t| t.frame.src == listener.node) {
                rx.push((listener.node, RxOutcome::Idle));
                continue;
            }
            // Count audible transmissions without collecting them — only
            // the single-transmission case needs an index.
            let mut audible = 0usize;
            let mut first = usize::MAX;
            for (i, t) in transmissions.iter().enumerate() {
                if t.channel == listener.channel
                    && self.topology.audible(t.frame.src, listener.node)
                {
                    audible += 1;
                    if audible == 1 {
                        first = i;
                    }
                }
            }

            let outcome = match audible {
                0 => RxOutcome::Idle,
                1 => {
                    let tx = &transmissions[first];
                    let prr = self.topology.prr(tx.frame.src, listener.node);
                    if prr > 0.0 && self.rng.gen_bool(prr) {
                        decoded[first].push(listener.node);
                        RxOutcome::Received(tx.frame.clone())
                    } else {
                        RxOutcome::Faded
                    }
                }
                n => RxOutcome::Collision(n),
            };
            rx.push((listener.node, outcome));
        }

        let acked = transmissions
            .iter()
            .enumerate()
            .map(|(i, t)| match t.frame.dst {
                Dest::Broadcast => None,
                Dest::Unicast(dst) => {
                    let delivered = decoded[i].contains(&dst);
                    if !delivered {
                        return Some(false);
                    }
                    if !self.lossy_acks {
                        return Some(true);
                    }
                    let reverse_prr = self.topology.prr(dst, t.frame.src);
                    Some(reverse_prr > 0.0 && self.rng.gen_bool(reverse_prr))
                }
            })
            .collect();

        SlotOutcomes { rx, acked }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PacketId;
    use crate::geometry::Position;
    use crate::topology::{LinkModel, TopologyBuilder};
    use gtt_sim::SimTime;

    const CH: PhysicalChannel = PhysicalChannel::new(17);
    const CH2: PhysicalChannel = PhysicalChannel::new(23);

    fn frame(src: u16, dst: Dest) -> Frame<u8> {
        Frame::new(PacketId::new(0), NodeId::new(src), dst, SimTime::ZERO, 0)
    }

    fn tx(src: u16, dst: Dest, ch: PhysicalChannel) -> Transmission<u8> {
        Transmission {
            channel: ch,
            frame: frame(src, dst),
        }
    }

    fn listener(node: u16, ch: PhysicalChannel) -> Listener {
        Listener {
            node: NodeId::new(node),
            channel: ch,
        }
    }

    /// 0 --- 1 --- 2 --- 3 in a line, 30 m apart, 35 m range: only
    /// adjacent nodes hear each other.
    fn line4() -> Topology {
        TopologyBuilder::new(35.0)
            .link_model(LinkModel::Perfect)
            .nodes((0..4).map(|i| Position::new(i as f64 * 30.0, 0.0)))
            .build()
    }

    #[test]
    fn clean_unicast_is_received_and_acked() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(1)), CH)],
            vec![listener(1, CH)],
        );
        assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
        assert_eq!(out.acked, vec![Some(true)]);
    }

    #[test]
    fn idle_when_nothing_on_channel() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(1)), CH)],
            vec![listener(1, CH2)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Idle);
        assert_eq!(out.acked, vec![Some(false)]);
    }

    #[test]
    fn out_of_range_is_idle() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(3)), CH)],
            vec![listener(3, CH)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Idle);
        assert_eq!(out.acked, vec![Some(false)]);
    }

    #[test]
    fn hidden_terminal_collides_at_middle_listener() {
        // Nodes 0 and 2 cannot hear each other but node 1 hears both —
        // paper §III problem 4.
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(1)), CH),
                tx(2, Dest::Unicast(NodeId::new(1)), CH),
            ],
            vec![listener(1, CH)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Collision(2));
        assert_eq!(out.acked, vec![Some(false), Some(false)]);
    }

    #[test]
    fn different_channels_do_not_collide() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(1)), CH),
                tx(2, Dest::Unicast(NodeId::new(3)), CH2),
            ],
            vec![listener(1, CH), listener(3, CH2)],
        );
        assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
        assert!(matches!(out.rx[1].1, RxOutcome::Received(_)));
        assert_eq!(out.acked, vec![Some(true), Some(true)]);
    }

    #[test]
    fn broadcast_reaches_all_and_is_never_acked() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(1, Dest::Broadcast, CH)],
            vec![listener(0, CH), listener(2, CH), listener(3, CH)],
        );
        assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
        assert!(matches!(out.rx[1].1, RxOutcome::Received(_)));
        assert_eq!(out.rx[2].1, RxOutcome::Idle, "node 3 is out of range");
        assert_eq!(out.acked, vec![None]);
    }

    #[test]
    fn lossy_link_fades_at_expected_rate() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .node(Position::new(0.0, 0.0))
            .node(Position::new(10.0, 0.0))
            .link_prr(a, b, 0.7)
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(42));
        let mut received = 0;
        let trials = 5_000;
        for _ in 0..trials {
            let out = m.resolve_slot(vec![tx(0, Dest::Unicast(b), CH)], vec![listener(1, CH)]);
            if matches!(out.rx[0].1, RxOutcome::Received(_)) {
                received += 1;
            }
        }
        let rate = received as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.02, "PRR draw rate {rate} ≉ 0.7");
    }

    #[test]
    fn ack_subject_to_reverse_prr() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .node(Position::new(0.0, 0.0))
            .node(Position::new(10.0, 0.0))
            .link_prr(a, b, 1.0)
            .link_prr(b, a, 0.5)
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(7));
        let mut acked = 0;
        let trials = 4_000;
        for _ in 0..trials {
            let out = m.resolve_slot(vec![tx(0, Dest::Unicast(b), CH)], vec![listener(1, CH)]);
            if out.acked[0] == Some(true) {
                acked += 1;
            }
        }
        let rate = acked as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "ACK rate {rate} ≉ 0.5");
    }

    #[test]
    fn disabling_lossy_acks_makes_decoded_frames_always_acked() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .node(Position::new(0.0, 0.0))
            .node(Position::new(10.0, 0.0))
            .link_prr(b, a, 0.0)
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(7));
        m.set_lossy_acks(false);
        let out = m.resolve_slot(vec![tx(0, Dest::Unicast(b), CH)], vec![listener(1, CH)]);
        assert_eq!(out.acked, vec![Some(true)]);
    }

    #[test]
    fn interference_range_corrupts_without_decoding() {
        // 0 at x=0, 1 at x=30 (in range of 0), jammer 2 at x=80:
        // out of comm range of 1 (50 m > 35 m)… with interference factor
        // 2.0 the jammer is audible at 1 (50 ≤ 70) and collides.
        let topo = TopologyBuilder::new(35.0)
            .link_model(LinkModel::Perfect)
            .interference_factor(2.0)
            .nodes([
                Position::new(0.0, 0.0),
                Position::new(30.0, 0.0),
                Position::new(80.0, 0.0),
            ])
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(3));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(1)), CH),
                tx(2, Dest::Broadcast, CH),
            ],
            vec![listener(1, CH)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Collision(2));
    }

    #[test]
    fn take_rx_moves_outcome_out() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let mut out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(1)), CH)],
            vec![listener(1, CH)],
        );
        let taken = out.take_rx(0);
        assert!(matches!(taken, RxOutcome::Received(_)));
        assert_eq!(out.rx[0].1, RxOutcome::Idle, "slot left empty behind");
        assert_eq!(out.rx[0].0, NodeId::new(1), "listener id untouched");
    }

    #[test]
    fn rx_outcome_helpers() {
        let f = frame(0, Dest::Broadcast);
        let r: RxOutcome<u8> = RxOutcome::Received(f);
        assert!(r.frame().is_some());
        assert!(r.heard_energy());
        assert!(!RxOutcome::<u8>::Idle.heard_energy());
        assert!(RxOutcome::<u8>::Collision(2).heard_energy());
        assert!(RxOutcome::<u8>::Faded.frame().is_none());
    }
}
