//! Per-slot radio medium resolution.
//!
//! TSCH is TDMA: all interesting radio interactions happen inside one
//! timeslot. Each slot, the engine hands the medium every transmission and
//! every listener; the medium answers, per listener, what was heard, and,
//! per unicast transmission, whether an acknowledgement came back.
//!
//! The collision rules implement the paper's §III failure analysis:
//! concurrent transmissions on the same *physical* channel that are both
//! audible at a listener destroy each other there (including the
//! hidden-terminal case where the two senders cannot hear one another).

use gtt_sim::{Pcg32, SplitMix64};

use crate::channel::PhysicalChannel;
use crate::frame::{Dest, Frame};
use crate::id::NodeId;
use crate::topology::Topology;

/// Per-node deterministic Bernoulli draw streams.
///
/// Every node owns an independent [`SplitMix64`] stream; a link-error
/// draw consumes from the stream of the node it is *keyed* by (the
/// listener for forward-PRR draws, the transmitter for ACK reverse-PRR
/// draws). Because TSCH radios are half-duplex, a node makes at most one
/// draw per slot, so each node's draw sequence depends only on the
/// ordered slots in which *that node* draws — never on how many other
/// nodes drew first in the same slot. That order-independence is what
/// lets radio-disjoint partition islands be resolved on different
/// threads (or in a different listener order, as the `naive-step` oracle
/// does) while producing bit-identical outcomes.
///
/// The streams are derived from a single [`Pcg32`] by node index, so one
/// experiment seed still determines all channel noise.
#[derive(Debug, PartialEq, Eq)]
pub struct DrawStreams {
    streams: Vec<SplitMix64>,
}

impl Clone for DrawStreams {
    fn clone(&self) -> Self {
        DrawStreams {
            streams: self.streams.clone(),
        }
    }

    // Allocation-reusing refresh for the island-parallel engine's pooled
    // sub-networks: `Vec::clone_from` keeps the stream buffer alive.
    fn clone_from(&mut self, source: &Self) {
        self.streams.clone_from(&source.streams);
    }
}

impl DrawStreams {
    /// Derives one stream per node from `rng`: a root value seeds a
    /// [`SplitMix64`] whose consecutive outputs seed the per-node
    /// streams in node-id order.
    pub fn new(mut rng: Pcg32, nodes: usize) -> Self {
        let mut derive = SplitMix64::new(rng.next_u64());
        DrawStreams {
            streams: (0..nodes)
                .map(|_| SplitMix64::new(derive.next_u64()))
                .collect(),
        }
    }

    /// Bernoulli draw from `node`'s stream: `true` with probability `p`.
    ///
    /// Matches [`Pcg32::gen_bool`]'s clamping contract exactly: `p <= 0`
    /// and `p >= 1` return without consuming from the stream, so perfect
    /// and dead links never advance any node's draw sequence.
    pub fn gen_bool(&mut self, node: NodeId, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            let bits = self.streams[node.index()].next_u64();
            ((bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
        }
    }

    /// Copies `members`' stream states from `other` into `self`.
    ///
    /// The island merge path runs each partition island on a clone of
    /// the medium and then folds the advanced per-member stream states
    /// back into the parent, keeping every node's draw sequence
    /// continuous across split/merge boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the two stream sets have different lengths or a member
    /// id is out of range.
    pub fn adopt(&mut self, other: &DrawStreams, members: &[NodeId]) {
        assert_eq!(self.streams.len(), other.streams.len());
        for &m in members {
            self.streams[m.index()] = other.streams[m.index()].clone();
        }
    }
}

/// One node transmitting in the current slot.
#[derive(Debug, Clone)]
pub struct Transmission<P> {
    /// Physical channel the radio is tuned to (post channel-hopping).
    pub channel: PhysicalChannel,
    /// The frame on the air. `frame.src` is the transmitter and
    /// `frame.dst` selects unicast-with-ACK vs broadcast semantics.
    pub frame: Frame<P>,
}

/// One node listening in the current slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Listener {
    /// The listening node.
    pub node: NodeId,
    /// Physical channel its radio is tuned to.
    pub channel: PhysicalChannel,
}

/// What a listener's radio saw during the slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxOutcome<P> {
    /// Nothing audible on the listened channel: idle listen.
    Idle,
    /// Exactly one audible transmission, decoded successfully.
    Received(Frame<P>),
    /// Exactly one audible transmission, lost to link error
    /// (Bernoulli `1 − PRR`).
    Faded,
    /// Two or more audible transmissions interfered; carries how many.
    Collision(usize),
}

impl<P> RxOutcome<P> {
    /// The received frame, if any.
    pub fn frame(&self) -> Option<&Frame<P>> {
        match self {
            RxOutcome::Received(f) => Some(f),
            _ => None,
        }
    }

    /// True if the radio heard energy (anything but [`RxOutcome::Idle`]).
    pub fn heard_energy(&self) -> bool {
        !matches!(self, RxOutcome::Idle)
    }
}

/// Result of resolving one slot.
///
/// Reusable: [`RadioMedium::resolve_slot_into`] clears and refills the
/// vectors, so a caller that keeps one instance alive pays no per-slot
/// allocation once the capacities have warmed up.
#[derive(Debug, Clone)]
pub struct SlotOutcomes<P> {
    /// Outcome per listener, in the order listeners were supplied.
    pub rx: Vec<(NodeId, RxOutcome<P>)>,
    /// For each transmission (same order as supplied): `Some(true)` if it
    /// was a unicast whose destination decoded it *and* the ACK survived
    /// the reverse link; `Some(false)` if unicast and not acknowledged;
    /// `None` for broadcasts (never acknowledged).
    pub acked: Vec<Option<bool>>,
}

impl<P> Default for SlotOutcomes<P> {
    fn default() -> Self {
        SlotOutcomes {
            rx: Vec::new(),
            acked: Vec::new(),
        }
    }
}

impl<P> SlotOutcomes<P> {
    /// Takes listener `idx`'s outcome by value, leaving
    /// [`RxOutcome::Idle`] behind.
    ///
    /// Each listener's outcome is consumed exactly once per slot, so
    /// moving the (payload-carrying) frame out beats cloning it on every
    /// successful listen.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn take_rx(&mut self, idx: usize) -> RxOutcome<P> {
        std::mem::replace(&mut self.rx[idx].1, RxOutcome::Idle)
    }
}

/// The shared radio medium.
///
/// Owns its own per-node draw streams ([`DrawStreams`]) so that
/// link-error draws are independent of every node's local randomness —
/// adding a node to a scenario does not perturb the channel noise other
/// nodes experience, and resolving radio-disjoint islands in any order
/// (or in parallel) produces identical draws.
///
/// # Example
///
/// ```
/// use gtt_net::*;
/// use gtt_sim::{Pcg32, SimTime};
///
/// let topo = TopologyBuilder::new(50.0)
///     .link_model(LinkModel::Perfect)
///     .node(Position::new(0.0, 0.0))
///     .node(Position::new(30.0, 0.0))
///     .build();
/// let mut medium = RadioMedium::new(topo, Pcg32::new(1));
/// let (a, b) = (NodeId::new(0), NodeId::new(1));
/// let ch = PhysicalChannel::new(17);
/// let frame = Frame::new(PacketId::new(0), a, Dest::Unicast(b), SimTime::ZERO, ());
/// let out = medium.resolve_slot(
///     vec![Transmission { channel: ch, frame }],
///     vec![Listener { node: b, channel: ch }],
/// );
/// assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
/// assert_eq!(out.acked[0], Some(true));
/// ```
#[derive(Debug)]
pub struct RadioMedium {
    topology: Topology,
    draws: DrawStreams,
    /// When `true`, ACK frames are themselves subject to the reverse
    /// link's PRR; when `false`, ACKs of decoded frames always arrive.
    lossy_acks: bool,
    /// Per-slot working memory, reused across slots.
    scratch: MediumScratch,
}

impl Clone for RadioMedium {
    fn clone(&self) -> Self {
        RadioMedium {
            topology: self.topology.clone(),
            draws: self.draws.clone(),
            lossy_acks: self.lossy_acks,
            scratch: self.scratch.clone(),
        }
    }

    // Allocation-reusing refresh: the island-parallel engine re-clones
    // the medium into each pooled sub-network on every `run_until`
    // window. Field-wise `clone_from` keeps the topology's adjacency
    // rows, the draw streams and the slot scratch buffers alive instead
    // of reallocating them per island per window.
    fn clone_from(&mut self, source: &Self) {
        self.topology.clone_from(&source.topology);
        self.draws.clone_from(&source.draws);
        self.lossy_acks = source.lossy_acks;
        self.scratch.clone_from(&source.scratch);
    }
}

/// Reusable per-slot buffers behind [`RadioMedium::resolve_slot_into`]:
/// the per-channel transmitter index and the half-duplex bitset. All
/// state is rebuilt each slot; keeping the allocations alive is what
/// makes steady-state resolution allocation-free.
#[derive(Debug, Default)]
struct MediumScratch {
    /// `channel number → bucket index + 1` (0 = no transmission on that
    /// channel this slot). 256 entries, allocated on first use; only the
    /// `active` entries are ever non-zero, so per-slot reset is O(active
    /// channels), not O(256).
    chan_map: Vec<u16>,
    /// Distinct channel numbers with ≥ 1 transmission this slot (TSCH
    /// hops over ≤ 16 channels, so this stays tiny).
    active: Vec<u8>,
    /// Per bucket: `(start, len)` span into `grouped`.
    spans: Vec<(u32, u32)>,
    /// Bucket fill cursors for the counting sort.
    cursors: Vec<u32>,
    /// Transmission indices grouped by channel; supply order is preserved
    /// within each bucket so "first audible" matches a full linear scan.
    grouped: Vec<u32>,
    /// Per node: transmits this slot (the O(1) half-duplex check).
    is_tx: Vec<bool>,
    /// Per transmission: whether its unicast destination decoded it —
    /// the only membership question the ACK pass ever asks, collapsing
    /// the old per-transmission `Vec<NodeId>` decode sets.
    dest_decoded: Vec<bool>,
}

impl Clone for MediumScratch {
    fn clone(&self) -> Self {
        MediumScratch {
            chan_map: self.chan_map.clone(),
            active: self.active.clone(),
            spans: self.spans.clone(),
            cursors: self.cursors.clone(),
            grouped: self.grouped.clone(),
            is_tx: self.is_tx.clone(),
            dest_decoded: self.dest_decoded.clone(),
        }
    }

    // Field-wise so `RadioMedium::clone_from` reuses the buffers.
    fn clone_from(&mut self, source: &Self) {
        self.chan_map.clone_from(&source.chan_map);
        self.active.clone_from(&source.active);
        self.spans.clone_from(&source.spans);
        self.cursors.clone_from(&source.cursors);
        self.grouped.clone_from(&source.grouped);
        self.is_tx.clone_from(&source.is_tx);
        self.dest_decoded.clone_from(&source.dest_decoded);
    }
}

impl RadioMedium {
    /// Creates a medium over `topology`, deriving per-node draw streams
    /// from `rng` (see [`DrawStreams::new`]).
    pub fn new(topology: Topology, rng: Pcg32) -> Self {
        let draws = DrawStreams::new(rng, topology.len());
        RadioMedium {
            topology,
            draws,
            lossy_acks: true,
            scratch: MediumScratch::default(),
        }
    }

    /// Copies `members`' draw-stream states from `other`'s medium into
    /// this one (see [`DrawStreams::adopt`]); part of the island merge.
    pub fn adopt_draws(&mut self, other: &RadioMedium, members: &[NodeId]) {
        self.draws.adopt(&other.draws, members);
    }

    /// Enables or disables ACK loss on the reverse link (default: enabled).
    pub fn set_lossy_acks(&mut self, lossy: bool) {
        self.lossy_acks = lossy;
    }

    /// The topology this medium resolves over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access (runtime fault injection).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Resolves one timeslot (owning convenience wrapper around
    /// [`RadioMedium::resolve_slot_into`]).
    pub fn resolve_slot<P: Clone>(
        &mut self,
        transmissions: Vec<Transmission<P>>,
        listeners: Vec<Listener>,
    ) -> SlotOutcomes<P> {
        let mut out = SlotOutcomes::default();
        self.resolve_slot_into(&transmissions, &listeners, &mut out);
        out
    }

    /// Resolves one timeslot into `out` (cleared first), allocation-free
    /// once the reusable buffers have warmed up.
    ///
    /// For every listener, *in the supplied listener order* (outcome
    /// order matters to callers; the Bernoulli draws themselves are
    /// keyed per node via [`DrawStreams`], so draw results are
    /// independent of listener order): collect the transmissions
    /// on its channel that are audible at its position (interference
    /// range). Zero ⇒ idle; two or more ⇒ collision; exactly one ⇒
    /// decoded iff it is also within *communication* range and the link's
    /// Bernoulli(PRR) draw succeeds.
    ///
    /// The per-listener work is output-sensitive: transmissions are
    /// grouped by physical channel once (a counting sort over the ≤ 16
    /// TSCH channels), each listener consults only its own channel's
    /// bucket, and the overwhelmingly common single-transmitter bucket
    /// skips the counting scan entirely. A listener on a channel with no
    /// transmission is O(1).
    ///
    /// ACKs: a unicast transmission is acknowledged iff its destination
    /// appears among the listeners on the same channel, decoded the frame,
    /// and the reverse-link draw succeeds (when ACK loss is enabled).
    /// A transmitting node never simultaneously listens — TSCH radios are
    /// half-duplex — so any listener entry with the same id as a
    /// transmitter is resolved as if deaf (collision-free idle) and
    /// flagged by a debug assertion.
    pub fn resolve_slot_into<P: Clone>(
        &mut self,
        transmissions: &[Transmission<P>],
        listeners: &[Listener],
        out: &mut SlotOutcomes<P>,
    ) {
        let RadioMedium {
            topology,
            draws,
            lossy_acks,
            scratch,
        } = self;
        out.rx.clear();
        out.acked.clear();

        // Group transmissions by channel: stable counting sort, so each
        // bucket preserves supply order ("first audible" is well-defined
        // identically to a full linear scan).
        if scratch.chan_map.is_empty() {
            scratch.chan_map.resize(usize::from(u8::MAX) + 1, 0);
        }
        for ch in scratch.active.drain(..) {
            scratch.chan_map[ch as usize] = 0;
        }
        scratch.spans.clear();
        for t in transmissions {
            let ch = t.channel.number() as usize;
            if scratch.chan_map[ch] == 0 {
                scratch.active.push(ch as u8);
                scratch.spans.push((0, 0));
                scratch.chan_map[ch] = scratch.spans.len() as u16;
            }
            scratch.spans[scratch.chan_map[ch] as usize - 1].1 += 1;
        }
        let mut start = 0u32;
        scratch.cursors.clear();
        for span in &mut scratch.spans {
            span.0 = start;
            scratch.cursors.push(start);
            start += span.1;
        }
        scratch.grouped.clear();
        scratch.grouped.resize(transmissions.len(), 0);
        scratch.dest_decoded.clear();
        scratch.dest_decoded.resize(transmissions.len(), false);
        if scratch.is_tx.len() < topology.len() {
            scratch.is_tx.resize(topology.len(), false);
        }
        for (i, t) in transmissions.iter().enumerate() {
            let bucket = scratch.chan_map[t.channel.number() as usize] as usize - 1;
            scratch.grouped[scratch.cursors[bucket] as usize] = i as u32;
            scratch.cursors[bucket] += 1;
            scratch.is_tx[t.frame.src.index()] = true;
        }

        debug_assert!(
            listeners
                .iter()
                .all(|l| !scratch.is_tx.get(l.node.index()).copied().unwrap_or(false)),
            "a node cannot transmit and listen in the same slot (half-duplex)"
        );

        for listener in listeners {
            // `get`: a listener outside the topology can only ever be
            // idle, and must not index past the bitset.
            if scratch
                .is_tx
                .get(listener.node.index())
                .copied()
                .unwrap_or(false)
            {
                out.rx.push((listener.node, RxOutcome::Idle));
                continue;
            }
            let bucket = scratch.chan_map[listener.channel.number() as usize];
            let outcome = if bucket == 0 {
                // Nothing transmits on the listened channel.
                RxOutcome::Idle
            } else {
                let (start, len) = scratch.spans[bucket as usize - 1];
                let (audible, first) = if len == 1 {
                    // Single-transmitter fast path: no counting scan.
                    let i = scratch.grouped[start as usize] as usize;
                    if topology.audible(transmissions[i].frame.src, listener.node) {
                        (1, i)
                    } else {
                        (0, usize::MAX)
                    }
                } else {
                    let mut audible = 0usize;
                    let mut first = usize::MAX;
                    for &gi in &scratch.grouped[start as usize..(start + len) as usize] {
                        let i = gi as usize;
                        if topology.audible(transmissions[i].frame.src, listener.node) {
                            audible += 1;
                            if audible == 1 {
                                first = i;
                            }
                        }
                    }
                    (audible, first)
                };
                match audible {
                    0 => RxOutcome::Idle,
                    1 => {
                        let tx = &transmissions[first];
                        let prr = topology.prr(tx.frame.src, listener.node);
                        // Forward draw: keyed by the listening node.
                        if prr > 0.0 && draws.gen_bool(listener.node, prr) {
                            if tx.frame.dst == Dest::Unicast(listener.node) {
                                scratch.dest_decoded[first] = true;
                            }
                            RxOutcome::Received(tx.frame.clone())
                        } else {
                            RxOutcome::Faded
                        }
                    }
                    n => RxOutcome::Collision(n),
                }
            };
            out.rx.push((listener.node, outcome));
        }

        for (i, t) in transmissions.iter().enumerate() {
            let acked = match t.frame.dst {
                Dest::Broadcast => None,
                Dest::Unicast(dst) => {
                    if !scratch.dest_decoded[i] {
                        Some(false)
                    } else if !*lossy_acks {
                        Some(true)
                    } else {
                        // Reverse draw: keyed by the transmitting node
                        // (half-duplex, so it cannot also have drawn as
                        // a listener this slot).
                        let reverse_prr = topology.prr(dst, t.frame.src);
                        Some(reverse_prr > 0.0 && draws.gen_bool(t.frame.src, reverse_prr))
                    }
                }
            };
            out.acked.push(acked);
        }

        for t in transmissions {
            scratch.is_tx[t.frame.src.index()] = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PacketId;
    use crate::geometry::Position;
    use crate::topology::{LinkModel, TopologyBuilder};
    use gtt_sim::SimTime;

    const CH: PhysicalChannel = PhysicalChannel::new(17);
    const CH2: PhysicalChannel = PhysicalChannel::new(23);

    fn frame(src: u16, dst: Dest) -> Frame<u8> {
        Frame::new(PacketId::new(0), NodeId::new(src), dst, SimTime::ZERO, 0)
    }

    fn tx(src: u16, dst: Dest, ch: PhysicalChannel) -> Transmission<u8> {
        Transmission {
            channel: ch,
            frame: frame(src, dst),
        }
    }

    fn listener(node: u16, ch: PhysicalChannel) -> Listener {
        Listener {
            node: NodeId::new(node),
            channel: ch,
        }
    }

    /// 0 --- 1 --- 2 --- 3 in a line, 30 m apart, 35 m range: only
    /// adjacent nodes hear each other.
    fn line4() -> Topology {
        TopologyBuilder::new(35.0)
            .link_model(LinkModel::Perfect)
            .nodes((0..4).map(|i| Position::new(i as f64 * 30.0, 0.0)))
            .build()
    }

    #[test]
    fn clean_unicast_is_received_and_acked() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(1)), CH)],
            vec![listener(1, CH)],
        );
        assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
        assert_eq!(out.acked, vec![Some(true)]);
    }

    #[test]
    fn idle_when_nothing_on_channel() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(1)), CH)],
            vec![listener(1, CH2)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Idle);
        assert_eq!(out.acked, vec![Some(false)]);
    }

    #[test]
    fn out_of_range_is_idle() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(3)), CH)],
            vec![listener(3, CH)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Idle);
        assert_eq!(out.acked, vec![Some(false)]);
    }

    #[test]
    fn hidden_terminal_collides_at_middle_listener() {
        // Nodes 0 and 2 cannot hear each other but node 1 hears both —
        // paper §III problem 4.
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(1)), CH),
                tx(2, Dest::Unicast(NodeId::new(1)), CH),
            ],
            vec![listener(1, CH)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Collision(2));
        assert_eq!(out.acked, vec![Some(false), Some(false)]);
    }

    #[test]
    fn different_channels_do_not_collide() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(1)), CH),
                tx(2, Dest::Unicast(NodeId::new(3)), CH2),
            ],
            vec![listener(1, CH), listener(3, CH2)],
        );
        assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
        assert!(matches!(out.rx[1].1, RxOutcome::Received(_)));
        assert_eq!(out.acked, vec![Some(true), Some(true)]);
    }

    #[test]
    fn broadcast_reaches_all_and_is_never_acked() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(1, Dest::Broadcast, CH)],
            vec![listener(0, CH), listener(2, CH), listener(3, CH)],
        );
        assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
        assert!(matches!(out.rx[1].1, RxOutcome::Received(_)));
        assert_eq!(out.rx[2].1, RxOutcome::Idle, "node 3 is out of range");
        assert_eq!(out.acked, vec![None]);
    }

    #[test]
    fn lossy_link_fades_at_expected_rate() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .node(Position::new(0.0, 0.0))
            .node(Position::new(10.0, 0.0))
            .link_prr(a, b, 0.7)
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(42));
        let mut received = 0;
        let trials = 5_000;
        for _ in 0..trials {
            let out = m.resolve_slot(vec![tx(0, Dest::Unicast(b), CH)], vec![listener(1, CH)]);
            if matches!(out.rx[0].1, RxOutcome::Received(_)) {
                received += 1;
            }
        }
        let rate = received as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.02, "PRR draw rate {rate} ≉ 0.7");
    }

    #[test]
    fn ack_subject_to_reverse_prr() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .node(Position::new(0.0, 0.0))
            .node(Position::new(10.0, 0.0))
            .link_prr(a, b, 1.0)
            .link_prr(b, a, 0.5)
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(7));
        let mut acked = 0;
        let trials = 4_000;
        for _ in 0..trials {
            let out = m.resolve_slot(vec![tx(0, Dest::Unicast(b), CH)], vec![listener(1, CH)]);
            if out.acked[0] == Some(true) {
                acked += 1;
            }
        }
        let rate = acked as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "ACK rate {rate} ≉ 0.5");
    }

    #[test]
    fn disabling_lossy_acks_makes_decoded_frames_always_acked() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .node(Position::new(0.0, 0.0))
            .node(Position::new(10.0, 0.0))
            .link_prr(b, a, 0.0)
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(7));
        m.set_lossy_acks(false);
        let out = m.resolve_slot(vec![tx(0, Dest::Unicast(b), CH)], vec![listener(1, CH)]);
        assert_eq!(out.acked, vec![Some(true)]);
    }

    #[test]
    fn interference_range_corrupts_without_decoding() {
        // 0 at x=0, 1 at x=30 (in range of 0), jammer 2 at x=80:
        // out of comm range of 1 (50 m > 35 m)… with interference factor
        // 2.0 the jammer is audible at 1 (50 ≤ 70) and collides.
        let topo = TopologyBuilder::new(35.0)
            .link_model(LinkModel::Perfect)
            .interference_factor(2.0)
            .nodes([
                Position::new(0.0, 0.0),
                Position::new(30.0, 0.0),
                Position::new(80.0, 0.0),
            ])
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(3));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(1)), CH),
                tx(2, Dest::Broadcast, CH),
            ],
            vec![listener(1, CH)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Collision(2));
    }

    #[test]
    fn multiple_channels_active_in_one_slot() {
        // Three concurrent transmissions on three channels in a clique:
        // each listener decodes exactly its own channel's transmitter.
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .nodes((0..6).map(|i| Position::new(i as f64 * 5.0, 0.0)))
            .build();
        let ch3 = PhysicalChannel::new(11);
        let mut m = RadioMedium::new(topo, Pcg32::new(1));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(3)), CH),
                tx(1, Dest::Unicast(NodeId::new(4)), CH2),
                tx(2, Dest::Unicast(NodeId::new(5)), ch3),
            ],
            vec![listener(3, CH), listener(4, CH2), listener(5, ch3)],
        );
        for (i, (_, rx)) in out.rx.iter().enumerate() {
            let frame = rx.frame().unwrap_or_else(|| panic!("listener {i} idle"));
            assert_eq!(frame.src, NodeId::new(i as u16), "wrong channel bucket");
        }
        assert_eq!(out.acked, vec![Some(true), Some(true), Some(true)]);
    }

    #[test]
    fn listener_on_channel_with_no_transmitter_is_idle() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let out = m.resolve_slot(
            vec![tx(0, Dest::Broadcast, CH)],
            vec![listener(1, CH2), listener(2, CH2)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Idle);
        assert_eq!(out.rx[1].1, RxOutcome::Idle);
    }

    #[test]
    fn three_colliding_transmitters_on_one_channel() {
        // A clique of four: three transmitters on one channel collide at
        // the fourth node with the exact audible count.
        let topo = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .nodes((0..4).map(|i| Position::new(i as f64 * 5.0, 0.0)))
            .build();
        let mut m = RadioMedium::new(topo, Pcg32::new(1));
        let out = m.resolve_slot(
            vec![
                tx(0, Dest::Unicast(NodeId::new(3)), CH),
                tx(1, Dest::Broadcast, CH),
                tx(2, Dest::Unicast(NodeId::new(3)), CH),
            ],
            vec![listener(3, CH)],
        );
        assert_eq!(out.rx[0].1, RxOutcome::Collision(3));
        assert_eq!(out.acked, vec![Some(false), None, Some(false)]);
    }

    #[test]
    fn resolve_slot_into_reuses_buffers_across_slots() {
        // Back-to-back slots through one reused SlotOutcomes: stale
        // outcomes from the previous slot must never leak through.
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let mut out = SlotOutcomes::default();
        m.resolve_slot_into(
            &[tx(0, Dest::Unicast(NodeId::new(1)), CH)],
            &[listener(1, CH)],
            &mut out,
        );
        assert!(matches!(out.rx[0].1, RxOutcome::Received(_)));
        assert_eq!(out.acked, vec![Some(true)]);
        m.resolve_slot_into(
            &[tx(2, Dest::Broadcast, CH2)],
            &[listener(1, CH), listener(3, CH2)],
            &mut out,
        );
        assert_eq!(out.rx.len(), 2);
        assert_eq!(out.rx[0].1, RxOutcome::Idle, "old channel must be quiet");
        assert!(matches!(out.rx[1].1, RxOutcome::Received(_)));
        assert_eq!(out.acked, vec![None]);
    }

    #[test]
    fn take_rx_moves_outcome_out() {
        let mut m = RadioMedium::new(line4(), Pcg32::new(1));
        let mut out = m.resolve_slot(
            vec![tx(0, Dest::Unicast(NodeId::new(1)), CH)],
            vec![listener(1, CH)],
        );
        let taken = out.take_rx(0);
        assert!(matches!(taken, RxOutcome::Received(_)));
        assert_eq!(out.rx[0].1, RxOutcome::Idle, "slot left empty behind");
        assert_eq!(out.rx[0].0, NodeId::new(1), "listener id untouched");
    }

    #[test]
    fn rx_outcome_helpers() {
        let f = frame(0, Dest::Broadcast);
        let r: RxOutcome<u8> = RxOutcome::Received(f);
        assert!(r.frame().is_some());
        assert!(r.heard_energy());
        assert!(!RxOutcome::<u8>::Idle.heard_energy());
        assert!(RxOutcome::<u8>::Collision(2).heard_energy());
        assert!(RxOutcome::<u8>::Faded.frame().is_none());
    }
}
