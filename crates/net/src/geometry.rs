//! 2-D placement geometry.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A node position in metres on a 2-D plane.
///
/// The paper's testbed places motes on building floors; a plane is
/// sufficient because a DODAG never spans floors (§VIII: "for each level,
/// we have a DODAG that cannot be seen by IoT nodes placed in other
/// levels").
///
/// # Example
///
/// ```
/// use gtt_net::Position;
/// let a = Position::new(0.0, 0.0);
/// let b = Position::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Position {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Position {
    /// The origin.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// Creates a position.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_to(self, other: Position) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared euclidean distance to `other` in m² — range checks on the
    /// medium's hot path compare against a squared radius to skip the
    /// square root.
    pub fn distance_sq(self, other: Position) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Returns this position translated by `(dx, dy)`.
    pub fn offset(self, dx: f64, dy: f64) -> Position {
        Position::new(self.x + dx, self.y + dy)
    }

    /// Midpoint between this position and `other`.
    pub fn midpoint(self, other: Position) -> Position {
        Position::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Position {
    fn from((x, y): (f64, f64)) -> Self {
        Position::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Position::new(1.0, 2.0);
        let b = Position::new(4.0, 6.0);
        assert_eq!(a.distance_to(b), b.distance_to(a));
        assert_eq!(a.distance_to(b), 5.0);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Position::new(-3.5, 8.25);
        assert_eq!(p.distance_to(p), 0.0);
    }

    #[test]
    fn offset_and_midpoint() {
        let p = Position::ORIGIN.offset(10.0, 0.0);
        assert_eq!(p, Position::new(10.0, 0.0));
        assert_eq!(Position::ORIGIN.midpoint(p), Position::new(5.0, 0.0));
    }

    #[test]
    fn tuple_conversion() {
        let p: Position = (2.0, 3.0).into();
        assert_eq!(p, Position::new(2.0, 3.0));
    }
}
