//! Grid-bucketed spatial index over node positions.
//!
//! The audibility relation only connects nodes within the interference
//! range `R`, so bucketing positions on a square grid of cell side `R`
//! guarantees every audible peer of a node lies in the 3×3 block of
//! cells around the node's own cell: two positions within `R` of each
//! other differ by at most `R` per axis, hence by at most one cell
//! coordinate. Audibility and neighbor queries therefore enumerate a
//! handful of buckets instead of all `n` nodes, which is what makes
//! `TopologyBuilder::build` O(n·k) and `Topology::set_position` an
//! incremental O(k)-ish update (k = bucket-local candidates).
//!
//! Determinism: buckets are kept in a `BTreeMap` (iteration sorted by
//! cell coordinate) and each bucket holds its members in ascending id
//! order, so every enumeration here is canonical — sorted cell, then id
//! order — independent of insertion history. See DETERMINISM.md.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::geometry::Position;
use crate::id::NodeId;

/// Integer cell coordinate on the bucket grid.
pub(crate) type Cell = (i64, i64);

/// The index: occupied grid cells and the cached cell of every node.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub(crate) struct SpatialGrid {
    /// Bucket side length in metres (the interference range).
    cell_size: f64,
    /// Occupied cells → members in ascending id order. Empty buckets are
    /// erased on removal so the map is a pure function of the current
    /// positions — incremental maintenance and a fresh build compare
    /// equal.
    buckets: BTreeMap<Cell, Vec<NodeId>>,
    /// Cached cell of each node, so relocation never re-derives the old
    /// coordinate from floating-point state.
    cell_of: Vec<Cell>,
}

impl SpatialGrid {
    /// Builds the index for `positions` with buckets of side `cell_size`.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not positive (the interference range of a
    /// valid topology always is).
    pub(crate) fn build(cell_size: f64, positions: &[Position]) -> Self {
        assert!(
            cell_size > 0.0,
            "spatial grid cell must be positive, got {cell_size}"
        );
        let mut grid = SpatialGrid {
            cell_size,
            buckets: BTreeMap::new(),
            cell_of: Vec::with_capacity(positions.len()),
        };
        for (i, &p) in positions.iter().enumerate() {
            let cell = grid.cell_at(p);
            grid.cell_of.push(cell);
            // Ids arrive in ascending order, so pushing keeps the bucket
            // sorted.
            grid.buckets
                .entry(cell)
                .or_default()
                .push(NodeId::from_index(i));
        }
        grid
    }

    /// Cell containing `p`.
    ///
    /// The `as` casts saturate, so coordinates beyond ±9.2e18 cells all
    /// collapse onto the grid border cell. That only widens a candidate
    /// set (candidates are always distance-checked), never loses a pair:
    /// positions that far apart are never audible anyway.
    fn cell_at(&self, p: Position) -> Cell {
        (
            (p.x / self.cell_size).floor() as i64,
            (p.y / self.cell_size).floor() as i64,
        )
    }

    /// The cached cell of `node`.
    pub(crate) fn cell(&self, node: NodeId) -> Cell {
        self.cell_of[node.index()]
    }

    /// Moves `node` into the bucket for `to`, keeping buckets sorted and
    /// erasing the old bucket if it empties.
    pub(crate) fn relocate(&mut self, node: NodeId, to: Position) {
        let from = self.cell_of[node.index()];
        let dest = self.cell_at(to);
        if from == dest {
            return;
        }
        let old = self
            .buckets
            .get_mut(&from)
            .expect("cached cell must have a bucket");
        let pos = old
            .binary_search(&node)
            .expect("node must be in its cached bucket");
        old.remove(pos);
        if old.is_empty() {
            self.buckets.remove(&from);
        }
        let new = self.buckets.entry(dest).or_default();
        let pos = new
            .binary_search(&node)
            .expect_err("node cannot already be in the destination bucket");
        new.insert(pos, node);
        self.cell_of[node.index()] = dest;
    }

    /// Calls `f` for every node in the 3×3 block of cells around
    /// `center`, in canonical order: cells sorted by coordinate, ids
    /// ascending within each cell.
    ///
    /// Near the saturated grid border two offsets can map to the same
    /// cell, so callers that collect candidates must dedup (adjacency
    /// rows are sorted + deduped anyway).
    pub(crate) fn for_each_candidate(&self, center: Cell, mut f: impl FnMut(NodeId)) {
        for dx in -1..=1_i64 {
            for dy in -1..=1_i64 {
                let cell = (center.0.saturating_add(dx), center.1.saturating_add(dy));
                if let Some(bucket) = self.buckets.get(&cell) {
                    for &id in bucket {
                        f(id);
                    }
                }
            }
        }
    }
}

impl Clone for SpatialGrid {
    fn clone(&self) -> Self {
        SpatialGrid {
            cell_size: self.cell_size,
            buckets: self.buckets.clone(),
            cell_of: self.cell_of.clone(),
        }
    }

    // Allocation-reusing refresh: the island-parallel engine re-clones
    // the topology into pooled sub-networks every window.
    fn clone_from(&mut self, source: &Self) {
        self.cell_size = source.cell_size;
        self.buckets.clone_from(&source.buckets);
        self.cell_of.clone_from(&source.cell_of);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u16]) -> Vec<NodeId> {
        raw.iter().map(|&r| NodeId::new(r)).collect()
    }

    #[test]
    fn build_buckets_by_cell_in_id_order() {
        let grid = SpatialGrid::build(
            10.0,
            &[
                Position::new(25.0, 0.0), // cell (2, 0)
                Position::new(5.0, 5.0),  // cell (0, 0)
                Position::new(9.9, 0.0),  // cell (0, 0)
                Position::new(-0.1, 0.0), // cell (-1, 0)
                Position::new(10.0, 0.0), // cell (1, 0) — boundary goes up
            ],
        );
        assert_eq!(grid.cell(NodeId::new(0)), (2, 0));
        assert_eq!(grid.cell(NodeId::new(3)), (-1, 0));
        assert_eq!(grid.cell(NodeId::new(4)), (1, 0));
        let cells: Vec<(Cell, Vec<NodeId>)> =
            grid.buckets.iter().map(|(&c, m)| (c, m.clone())).collect();
        assert_eq!(
            cells,
            vec![
                ((-1, 0), ids(&[3])),
                ((0, 0), ids(&[1, 2])),
                ((1, 0), ids(&[4])),
                ((2, 0), ids(&[0])),
            ]
        );
    }

    #[test]
    fn relocate_erases_emptied_buckets() {
        let mut grid = SpatialGrid::build(10.0, &[Position::ORIGIN, Position::new(35.0, 0.0)]);
        assert_eq!(grid.buckets.len(), 2);
        grid.relocate(NodeId::new(1), Position::new(2.0, 0.0));
        assert_eq!(grid.cell(NodeId::new(1)), (0, 0));
        // The (3, 0) bucket is gone, not left empty: incremental state
        // must compare equal to a fresh build of the same positions.
        let rebuilt = SpatialGrid::build(10.0, &[Position::ORIGIN, Position::new(2.0, 0.0)]);
        assert_eq!(grid, rebuilt);
    }

    #[test]
    fn candidates_enumerate_sorted_cell_then_id() {
        let grid = SpatialGrid::build(
            10.0,
            &[
                Position::new(15.0, 15.0), // cell (1, 1)
                Position::new(5.0, 5.0),   // cell (0, 0)
                Position::new(25.0, 25.0), // cell (2, 2)
                Position::new(16.0, 16.0), // cell (1, 1)
                Position::new(45.0, 45.0), // cell (4, 4) — outside the block
            ],
        );
        let mut seen = Vec::new();
        grid.for_each_candidate((1, 1), |id| seen.push(id));
        // (0,0) before (1,1) before (2,2); ids ascending inside (1,1).
        assert_eq!(seen, ids(&[1, 0, 3, 2]));
    }

    #[test]
    fn far_coordinates_saturate_without_panicking() {
        let grid = SpatialGrid::build(10.0, &[Position::new(f64::MAX, f64::MAX), Position::ORIGIN]);
        assert_eq!(grid.cell(NodeId::new(0)), (i64::MAX, i64::MAX));
        let mut seen = Vec::new();
        grid.for_each_candidate(grid.cell(NodeId::new(0)), |id| seen.push(id));
        // The saturated 3×3 block folds onto the border cell; dedup is
        // the caller's job.
        assert!(seen.iter().all(|&id| id == NodeId::new(0)));
    }
}
