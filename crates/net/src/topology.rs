//! Node placement, connectivity and link quality.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::geometry::Position;
use crate::id::NodeId;
use crate::spatial::SpatialGrid;

/// How per-link packet reception ratio (PRR) is derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkModel {
    /// Every in-range link delivers with PRR 1.0.
    Perfect,
    /// PRR is 1.0 out to `plateau · range`, then falls linearly to
    /// `edge_prr` at exactly `range`. This mirrors Cooja's UDGM-with-
    /// distance-loss configuration used in low-power IoT evaluations.
    DistanceFalloff {
        /// Fraction of the range with perfect reception (0..=1).
        plateau: f64,
        /// PRR at the very edge of the communication range (0..=1).
        edge_prr: f64,
    },
    /// Every in-range link has this fixed PRR.
    Fixed(f64),
}

impl Default for LinkModel {
    fn default() -> Self {
        // Matches the "good but not perfect links" regime of the paper's
        // testbed: nodes near their parent see PRR ≈ 1, edge links ~0.8.
        LinkModel::DistanceFalloff {
            plateau: 0.6,
            edge_prr: 0.8,
        }
    }
}

impl LinkModel {
    fn prr_at(&self, distance: f64, range: f64) -> f64 {
        if distance > range {
            return 0.0;
        }
        match *self {
            LinkModel::Perfect => 1.0,
            LinkModel::Fixed(p) => p.clamp(0.0, 1.0),
            LinkModel::DistanceFalloff { plateau, edge_prr } => {
                let knee = plateau.clamp(0.0, 1.0) * range;
                if distance <= knee || range <= knee {
                    1.0
                } else {
                    let t = (distance - knee) / (range - knee);
                    1.0 + t * (edge_prr.clamp(0.0, 1.0) - 1.0)
                }
            }
        }
    }
}

/// Immutable description of node placement and link quality.
///
/// Built with [`TopologyBuilder`]; consumed by the
/// [`RadioMedium`](crate::RadioMedium) for per-slot resolution and by
/// scenario builders for sanity checks.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    positions: Vec<Position>,
    range: f64,
    interference_factor: f64,
    link_model: LinkModel,
    prr_overrides: BTreeMap<(NodeId, NodeId), f64>,
    /// Per-node audible peers (within interference range), in id order —
    /// precomputed at build time and updated incrementally on every
    /// [`Topology::set_position`] call (the only way positions change),
    /// so it never goes stale; PRR overrides affect link quality, not
    /// audibility. The event-driven engine walks this to find the
    /// listeners a transmission could reach without scanning all nodes.
    audible_adj: Vec<Vec<NodeId>>,
    /// Per-node in-range peers, in id order — the communication-range
    /// subset of `audible_adj` (interference factor ≥ 1 guarantees
    /// in-range ⊆ audible), maintained by the same incremental updates.
    range_adj: Vec<Vec<NodeId>>,
    /// Grid-bucketed positions (cell side = interference range):
    /// audibility queries enumerate the 3×3 cell block around a node
    /// instead of all pairs, making `build` O(n·k) and `set_position`
    /// output-sensitive.
    grid: SpatialGrid,
}

impl Clone for Topology {
    fn clone(&self) -> Self {
        Topology {
            positions: self.positions.clone(),
            range: self.range,
            interference_factor: self.interference_factor,
            link_model: self.link_model,
            prr_overrides: self.prr_overrides.clone(),
            audible_adj: self.audible_adj.clone(),
            range_adj: self.range_adj.clone(),
            grid: self.grid.clone(),
        }
    }

    // Allocation-reusing refresh: the island-parallel engine re-clones
    // the topology into pooled sub-networks on every `run_until` window,
    // and `Vec::clone_from` reuses the adjacency row buffers instead of
    // reallocating ~n vectors per island per window.
    fn clone_from(&mut self, source: &Self) {
        self.positions.clone_from(&source.positions);
        self.range = source.range;
        self.interference_factor = source.interference_factor;
        self.link_model = source.link_model;
        self.prr_overrides.clone_from(&source.prr_overrides);
        self.audible_adj.clone_from(&source.audible_adj);
        self.range_adj.clone_from(&source.range_adj);
        self.grid.clone_from(&source.grid);
    }
}

/// Removes `id` from a sorted row; no-op if absent.
fn remove_sorted(row: &mut Vec<NodeId>, id: NodeId) {
    if let Ok(pos) = row.binary_search(&id) {
        row.remove(pos);
    }
}

/// Inserts `id` into a sorted row at its sorted position; no-op if present.
fn insert_sorted(row: &mut Vec<NodeId>, id: NodeId) {
    if let Err(pos) = row.binary_search(&id) {
        row.insert(pos, id);
    }
}

impl Topology {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Iterator over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len()).map(NodeId::from_index)
    }

    /// Position of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn position(&self, node: NodeId) -> Position {
        self.positions[node.index()]
    }

    /// Communication range in metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Interference range in metres (≥ communication range).
    pub fn interference_range(&self) -> f64 {
        self.range * self.interference_factor
    }

    /// Interference range as a multiple of the communication range (the
    /// value given to [`TopologyBuilder::interference_factor`]).
    pub fn interference_factor(&self) -> f64 {
        self.interference_factor
    }

    /// The link-quality model distances are mapped through.
    pub fn link_model(&self) -> LinkModel {
        self.link_model
    }

    /// All explicit PRR overrides, in `(a, b)` key order.
    pub fn prr_overrides(&self) -> impl Iterator<Item = ((NodeId, NodeId), f64)> + '_ {
        self.prr_overrides.iter().map(|(&k, &v)| (k, v))
    }

    /// Distance between two nodes in metres.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.position(a).distance_to(self.position(b))
    }

    /// True if `a` and `b` are distinct nodes within communication range.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.distance(a, b) <= self.range
    }

    /// True if a transmission by `tx` is *audible* at `listener` — i.e.
    /// within interference range. Audible-but-not-in-range transmissions
    /// corrupt concurrent receptions without being decodable.
    pub fn audible(&self, tx: NodeId, listener: NodeId) -> bool {
        // Squared-distance compare: this runs per (listener × transmission)
        // in the medium's slot resolution; the sqrt is pure overhead.
        tx != listener
            && self.positions[tx.index()].distance_sq(self.positions[listener.index()])
                <= self.interference_range() * self.interference_range()
    }

    /// Packet reception ratio of the directed link `a → b`.
    ///
    /// Returns 0.0 for out-of-range pairs and for `a == b`. Explicit
    /// overrides installed via [`TopologyBuilder::link_prr`] win over the
    /// distance model.
    pub fn prr(&self, a: NodeId, b: NodeId) -> f64 {
        if a == b {
            return 0.0;
        }
        // Overrides are a fault-injection niche; don't walk the map on
        // every reception draw of an override-free run.
        if !self.prr_overrides.is_empty() {
            if let Some(&p) = self.prr_overrides.get(&(a, b)) {
                return p;
            }
        }
        self.link_model.prr_at(self.distance(a, b), self.range)
    }

    /// Overrides the PRR of the directed link `a → b` at runtime (fault
    /// injection: a wall goes up, a microwave turns on…).
    ///
    /// # Panics
    ///
    /// Panics if `prr` is outside `[0, 1]`.
    pub fn set_link_prr(&mut self, a: NodeId, b: NodeId, prr: f64) {
        assert!(
            (0.0..=1.0).contains(&prr),
            "PRR must be in [0,1], got {prr}"
        );
        self.prr_overrides.insert((a, b), prr);
    }

    /// The explicit runtime override installed on `a → b`, if any
    /// (distinct from [`Topology::prr`], which falls back to the
    /// distance model).
    pub fn link_prr_override(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.prr_overrides.get(&(a, b)).copied()
    }

    /// Removes the runtime override on `a → b`, restoring the distance
    /// model's PRR. Links without an override are ignored. Prefer this
    /// over re-inserting the nominal value when undoing fault injection:
    /// an emptied override map keeps [`Topology::prr`]'s override-free
    /// fast path alive on the reception hot path.
    pub fn clear_link_prr(&mut self, a: NodeId, b: NodeId) {
        self.prr_overrides.remove(&(a, b));
    }

    /// Moves `node` to `to`, updating the audibility adjacency
    /// incrementally.
    ///
    /// Mobility support: link PRRs follow from the new distances
    /// immediately (the link model is evaluated per query), and the
    /// precomputed neighbor lists are patched here so per-slot consumers
    /// keep their O(degree) walks. Only the moved node's neighborhood is
    /// recomputed — its old rows double as the reverse-edge lists
    /// (audibility and range are symmetric), and candidates for the new
    /// rows come from the spatial grid's 3×3 cell block, so a hop costs
    /// O(k log k) for k bucket-local candidates instead of the old O(n²)
    /// full rebuild. Explicit PRR overrides are left untouched — they
    /// are pinned faults, not distance-derived.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn set_position(&mut self, node: NodeId, to: Position) {
        let i = node.index();
        // Detach: symmetry means the node's own rows list exactly the
        // peer rows that mention it.
        let mut audible_row = std::mem::take(&mut self.audible_adj[i]);
        for &peer in &audible_row {
            remove_sorted(&mut self.audible_adj[peer.index()], node);
        }
        let mut range_row = std::mem::take(&mut self.range_adj[i]);
        for &peer in &range_row {
            remove_sorted(&mut self.range_adj[peer.index()], node);
        }
        self.positions[i] = to;
        self.grid.relocate(node, to);
        // Recompute only the moved node's rows, reusing their buffers.
        audible_row.clear();
        self.grid.for_each_candidate(self.grid.cell(node), |b| {
            if self.audible(node, b) {
                audible_row.push(b);
            }
        });
        audible_row.sort_unstable();
        audible_row.dedup();
        range_row.clear();
        range_row.extend(
            audible_row
                .iter()
                .copied()
                .filter(|&b| self.in_range(node, b)),
        );
        for &peer in &audible_row {
            insert_sorted(&mut self.audible_adj[peer.index()], node);
        }
        for &peer in &range_row {
            insert_sorted(&mut self.range_adj[peer.index()], node);
        }
        self.audible_adj[i] = audible_row;
        self.range_adj[i] = range_row;
    }

    /// Recomputes both adjacency tables from the spatial grid: O(n·k)
    /// for k bucket-local candidates per node, instead of all pairs.
    fn rebuild_adjacency(&mut self) {
        let n = self.positions.len();
        let audible: Vec<Vec<NodeId>> = (0..n)
            .map(|i| {
                let a = NodeId::from_index(i);
                let mut row = Vec::new();
                self.grid.for_each_candidate(self.grid.cell(a), |b| {
                    if self.audible(a, b) {
                        row.push(b);
                    }
                });
                row.sort_unstable();
                row.dedup();
                row
            })
            .collect();
        let range: Vec<Vec<NodeId>> = (0..n)
            .map(|i| {
                let a = NodeId::from_index(i);
                audible[i]
                    .iter()
                    .copied()
                    .filter(|&b| self.in_range(a, b))
                    .collect()
            })
            .collect();
        self.audible_adj = audible;
        self.range_adj = range;
    }

    /// All in-range neighbors of `node`, in id order. Precomputed: the
    /// communication-range subset of [`Topology::audible_neighbors`],
    /// O(degree) to walk, no distance math.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.range_adj[node.index()]
    }

    /// All nodes a transmission by `node` is audible at (interference
    /// range), in id order. Precomputed: O(degree) to walk, no distance
    /// math.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn audible_neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.audible_adj[node.index()]
    }

    /// True if the connectivity graph is connected (ignoring link quality).
    ///
    /// Scenario builders assert this before running an experiment so a bad
    /// placement fails fast instead of producing a 0% PDR run.
    pub fn is_connected(&self) -> bool {
        if self.positions.is_empty() {
            return true;
        }
        let n = self.positions.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(i) = stack.pop() {
            for &nb in &self.range_adj[i] {
                let j = nb.index();
                if !seen[j] {
                    seen[j] = true;
                    count += 1;
                    stack.push(j);
                }
            }
        }
        count == n
    }

    /// Connected components of the *audibility* graph — the partition
    /// islands of the radio medium.
    ///
    /// Two nodes are in the same island iff a chain of
    /// interference-range edges connects them; nodes in different
    /// islands can never exchange energy (not even as interference), so
    /// a slot can be resolved island-by-island in any order — or in
    /// parallel — with identical outcomes.
    ///
    /// Deterministic canonical form: each island is sorted by node id
    /// and islands are ordered by their smallest member, so the result
    /// is a pure function of the audibility graph.
    pub fn audibility_islands(&self) -> Vec<Vec<NodeId>> {
        let n = self.positions.len();
        // Union-find with path halving over the precomputed (bucket-
        // local) audibility edges. NodeId is u16-backed, so u32 parents
        // always fit.
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize];
                i = parent[i as usize];
            }
            i
        }
        let mut parent: Vec<u32> = (0..n as u32).collect();
        for i in 0..n {
            for &nb in &self.audible_adj[i] {
                let a = find(&mut parent, i as u32);
                let b = find(&mut parent, nb.index() as u32);
                if a != b {
                    // Root at the smaller id: with path halving this
                    // keeps the forest shallow and the final scan cheap.
                    parent[a.max(b) as usize] = a.min(b);
                }
            }
        }
        // Group 0..n by root: the ascending scan yields members in id
        // order and islands ordered by their smallest member — the
        // canonical form — with no sorting pass.
        let mut island_of_root = vec![usize::MAX; n];
        let mut islands: Vec<Vec<NodeId>> = Vec::new();
        for i in 0..n {
            let root = find(&mut parent, i as u32) as usize;
            let slot = island_of_root[root];
            let slot = if slot == usize::MAX {
                island_of_root[root] = islands.len();
                islands.push(Vec::new());
                islands.len() - 1
            } else {
                slot
            };
            islands[slot].push(NodeId::from_index(i));
        }
        islands
    }
}

/// Builder for [`Topology`] (C-BUILDER).
///
/// # Example
///
/// ```
/// use gtt_net::{LinkModel, NodeId, Position, TopologyBuilder};
///
/// let topo = TopologyBuilder::new(40.0)
///     .link_model(LinkModel::Perfect)
///     .interference_factor(1.5)
///     .node(Position::new(0.0, 0.0))
///     .node(Position::new(30.0, 0.0))
///     .link_prr(NodeId::new(0), NodeId::new(1), 0.9)
///     .build();
/// assert_eq!(topo.len(), 2);
/// assert_eq!(topo.prr(NodeId::new(0), NodeId::new(1)), 0.9);
/// // The override is directional; the reverse uses the model.
/// assert_eq!(topo.prr(NodeId::new(1), NodeId::new(0)), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    positions: Vec<Position>,
    range: f64,
    interference_factor: f64,
    link_model: LinkModel,
    prr_overrides: BTreeMap<(NodeId, NodeId), f64>,
}

impl TopologyBuilder {
    /// Starts a topology with the given communication range (metres).
    ///
    /// # Panics
    ///
    /// Panics if `range` is not finite and positive.
    pub fn new(range: f64) -> Self {
        assert!(
            range.is_finite() && range > 0.0,
            "communication range must be positive, got {range}"
        );
        TopologyBuilder {
            positions: Vec::new(),
            range,
            interference_factor: 1.0,
            link_model: LinkModel::default(),
            prr_overrides: BTreeMap::new(),
        }
    }

    /// Adds a node at `position`; ids are assigned in insertion order.
    pub fn node(mut self, position: Position) -> Self {
        self.positions.push(position);
        self
    }

    /// Adds several nodes at once.
    pub fn nodes<I: IntoIterator<Item = Position>>(mut self, positions: I) -> Self {
        self.positions.extend(positions);
        self
    }

    /// Sets the link-quality model.
    pub fn link_model(mut self, model: LinkModel) -> Self {
        self.link_model = model;
        self
    }

    /// Sets the interference range as a multiple of the communication
    /// range (must be ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn interference_factor(mut self, factor: f64) -> Self {
        assert!(
            factor >= 1.0,
            "interference range cannot be smaller than communication range"
        );
        self.interference_factor = factor;
        self
    }

    /// Overrides the PRR of the directed link `a → b`.
    ///
    /// # Panics
    ///
    /// Panics if `prr` is outside `[0, 1]`.
    pub fn link_prr(mut self, a: NodeId, b: NodeId, prr: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&prr),
            "PRR must be in [0,1], got {prr}"
        );
        self.prr_overrides.insert((a, b), prr);
        self
    }

    /// Overrides the PRR of both directions of the link `a ↔ b`.
    pub fn link_prr_symmetric(self, a: NodeId, b: NodeId, prr: f64) -> Self {
        self.link_prr(a, b, prr).link_prr(b, a, prr)
    }

    /// Finalizes the topology: buckets the positions on the spatial grid
    /// and precomputes both adjacency tables in O(n·k).
    pub fn build(self) -> Topology {
        let grid = SpatialGrid::build(self.range * self.interference_factor, &self.positions);
        let mut topo = Topology {
            positions: self.positions,
            range: self.range,
            interference_factor: self.interference_factor,
            link_model: self.link_model,
            prr_overrides: self.prr_overrides,
            audible_adj: Vec::new(),
            range_adj: Vec::new(),
            grid,
        };
        topo.rebuild_adjacency();
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(spacing: f64, n: usize, range: f64) -> Topology {
        TopologyBuilder::new(range)
            .link_model(LinkModel::Perfect)
            .nodes((0..n).map(|i| Position::new(i as f64 * spacing, 0.0)))
            .build()
    }

    #[test]
    fn in_range_and_neighbors() {
        let t = line(30.0, 4, 35.0);
        let n1 = NodeId::new(1);
        assert_eq!(t.neighbors(n1), [NodeId::new(0), NodeId::new(2)]);
        assert!(!t.in_range(NodeId::new(0), NodeId::new(2)));
        assert!(!t.in_range(n1, n1), "a node is not its own neighbor");
        assert_eq!(t.neighbors(NodeId::new(0)), [n1]);
    }

    #[test]
    fn neighbors_follow_moves_and_stay_in_id_order() {
        let mut t = line(30.0, 4, 35.0);
        let n3 = NodeId::new(3);
        // Walk n3 between n0 and n1: every row it enters stays sorted.
        t.set_position(n3, Position::new(15.0, 0.0));
        assert_eq!(t.neighbors(n3), [NodeId::new(0), NodeId::new(1)]);
        assert_eq!(t.neighbors(NodeId::new(0)), [NodeId::new(1), n3]);
        assert_eq!(
            t.neighbors(NodeId::new(1)),
            [NodeId::new(0), NodeId::new(2), n3]
        );
        assert_eq!(t.neighbors(NodeId::new(2)), [NodeId::new(1)]);
    }

    #[test]
    fn incremental_moves_match_a_fresh_build() {
        // A sequence of moves (cell changes, island splits, returns) must
        // leave the topology byte-equal to one built from the final
        // positions — including the spatial grid's internal state.
        let mut t = TopologyBuilder::new(30.0)
            .interference_factor(1.5)
            .nodes((0..6).map(|i| Position::new(f64::from(i) * 25.0, 0.0)))
            .build();
        let moves = [
            (NodeId::new(2), Position::new(500.0, 500.0)),
            (NodeId::new(0), Position::new(-40.0, 10.0)),
            (NodeId::new(2), Position::new(26.0, 1.0)),
            (NodeId::new(5), Position::new(26.0, -1.0)),
        ];
        for (node, to) in moves {
            t.set_position(node, to);
        }
        let rebuilt = TopologyBuilder::new(30.0)
            .interference_factor(1.5)
            .nodes(t.node_ids().map(|id| t.position(id)).collect::<Vec<_>>())
            .build();
        assert_eq!(t, rebuilt);
    }

    #[test]
    fn audible_neighbors_precomputed_in_id_order() {
        let t = TopologyBuilder::new(30.0)
            .interference_factor(2.0)
            .nodes((0..4).map(|i| Position::new(i as f64 * 35.0, 0.0)))
            .build();
        // Comm range 30 m, interference 60 m: each node "hears" nodes up
        // to one position away (35 m) but not two (70 m).
        assert_eq!(
            t.audible_neighbors(NodeId::new(1)),
            [NodeId::new(0), NodeId::new(2)]
        );
        assert_eq!(t.audible_neighbors(NodeId::new(0)), [NodeId::new(1)]);
        for id in t.node_ids() {
            for &peer in t.audible_neighbors(id) {
                assert!(t.audible(id, peer));
            }
        }
    }

    #[test]
    fn set_position_rebuilds_audibility_and_prr() {
        let mut t = line(30.0, 3, 35.0);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        assert!(!t.in_range(a, c));
        // Walk n2 next to n0: n0↔n2 become audible, n1↔n2 go silent.
        t.set_position(c, Position::new(10.0, 0.0));
        assert_eq!(t.audible_neighbors(a), [b, c]);
        assert_eq!(t.audible_neighbors(c), [a, b]); // n1 is 20 m away
        assert_eq!(t.prr(a, c), 1.0, "perfect link model at 10 m");
        t.set_position(c, Position::new(200.0, 0.0));
        assert_eq!(t.audible_neighbors(c), [] as [NodeId; 0]);
        assert_eq!(t.prr(a, c), 0.0);
    }

    #[test]
    fn accessors_expose_build_inputs() {
        let t = TopologyBuilder::new(25.0)
            .interference_factor(1.5)
            .link_model(LinkModel::Fixed(0.7))
            .node(Position::ORIGIN)
            .node(Position::new(10.0, 0.0))
            .link_prr(NodeId::new(0), NodeId::new(1), 0.25)
            .build();
        assert_eq!(t.interference_factor(), 1.5);
        assert_eq!(t.link_model(), LinkModel::Fixed(0.7));
        let overrides: Vec<_> = t.prr_overrides().collect();
        assert_eq!(overrides, vec![((NodeId::new(0), NodeId::new(1)), 0.25)]);
    }

    #[test]
    fn interference_extends_beyond_range() {
        let t = TopologyBuilder::new(30.0)
            .interference_factor(2.0)
            .node(Position::new(0.0, 0.0))
            .node(Position::new(50.0, 0.0))
            .build();
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        assert!(!t.in_range(a, b));
        assert!(t.audible(a, b), "50m is inside the 60m interference range");
    }

    #[test]
    fn distance_falloff_shape() {
        let model = LinkModel::DistanceFalloff {
            plateau: 0.5,
            edge_prr: 0.5,
        };
        assert_eq!(model.prr_at(0.0, 100.0), 1.0);
        assert_eq!(model.prr_at(50.0, 100.0), 1.0);
        assert!((model.prr_at(75.0, 100.0) - 0.75).abs() < 1e-12);
        assert!((model.prr_at(100.0, 100.0) - 0.5).abs() < 1e-12);
        assert_eq!(model.prr_at(101.0, 100.0), 0.0);
    }

    #[test]
    fn prr_override_beats_model() {
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t = TopologyBuilder::new(100.0)
            .link_model(LinkModel::Perfect)
            .node(Position::ORIGIN)
            .node(Position::new(10.0, 0.0))
            .link_prr(a, b, 0.25)
            .build();
        assert_eq!(t.prr(a, b), 0.25);
        assert_eq!(t.prr(b, a), 1.0);
        assert_eq!(t.prr(a, a), 0.0);
    }

    #[test]
    fn out_of_range_prr_is_zero() {
        let t = line(60.0, 2, 50.0);
        assert_eq!(t.prr(NodeId::new(0), NodeId::new(1)), 0.0);
    }

    #[test]
    fn connectivity_detection() {
        assert!(line(30.0, 5, 35.0).is_connected());
        assert!(!line(60.0, 3, 50.0).is_connected());
        assert!(TopologyBuilder::new(10.0).build().is_connected());
    }

    #[test]
    fn audibility_islands_partition_by_component() {
        // Two 3-node clusters 1 km apart: two islands, canonical order.
        let t = TopologyBuilder::new(40.0)
            .nodes((0..3).map(|i| Position::new(f64::from(i) * 30.0, 0.0)))
            .nodes((0..3).map(|i| Position::new(1000.0 + f64::from(i) * 30.0, 0.0)))
            .build();
        let islands = t.audibility_islands();
        assert_eq!(islands.len(), 2);
        assert_eq!(
            islands[0],
            (0..3).map(NodeId::from_index).collect::<Vec<_>>()
        );
        assert_eq!(
            islands[1],
            (3..6).map(NodeId::from_index).collect::<Vec<_>>()
        );
        // A connected line is a single island containing everyone.
        assert_eq!(line(30.0, 5, 35.0).audibility_islands().len(), 1);
        // The empty topology has no islands.
        assert!(TopologyBuilder::new(10.0)
            .build()
            .audibility_islands()
            .is_empty());
    }

    #[test]
    fn audibility_islands_follow_interference_range_and_moves() {
        // 60 m apart with 50 m comm range: two islands — but with
        // interference factor 1.5 the nodes are mutually audible, so one.
        let mut t = TopologyBuilder::new(50.0)
            .interference_factor(1.5)
            .node(Position::ORIGIN)
            .node(Position::new(60.0, 0.0))
            .build();
        assert_eq!(t.audibility_islands().len(), 1);
        // Moving the node out of interference range splits the island.
        t.set_position(NodeId::new(1), Position::new(200.0, 0.0));
        assert_eq!(t.audibility_islands().len(), 2);
        t.set_position(NodeId::new(1), Position::new(40.0, 0.0));
        assert_eq!(t.audibility_islands().len(), 1);
    }

    #[test]
    fn fixed_model_clamps() {
        let m = LinkModel::Fixed(1.5);
        assert_eq!(m.prr_at(1.0, 10.0), 1.0);
        let m = LinkModel::Fixed(-0.5);
        assert_eq!(m.prr_at(1.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_range_rejected() {
        let _ = TopologyBuilder::new(0.0);
    }

    #[test]
    #[should_panic(expected = "PRR must be in [0,1]")]
    fn bad_override_rejected() {
        let _ = TopologyBuilder::new(10.0).link_prr(NodeId::new(0), NodeId::new(1), 1.2);
    }
}
