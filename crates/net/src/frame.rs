//! Link-layer frames.

use std::fmt;

use gtt_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::id::NodeId;

/// A unique identifier assigned to every packet at generation time.
///
/// The metrics layer keys end-to-end bookkeeping (delay, delivery,
/// duplicates) on packet ids, so ids stay stable while a packet is
/// forwarded hop by hop.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PacketId(u64);

impl PacketId {
    /// Creates a packet id from a raw counter value.
    pub const fn new(raw: u64) -> Self {
        PacketId(raw)
    }

    /// The raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Link-layer destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dest {
    /// A single neighbor; the receiver acknowledges in the same slot.
    Unicast(NodeId),
    /// All audible neighbors; never acknowledged.
    Broadcast,
}

impl Dest {
    /// The unicast target, if any.
    pub fn unicast(self) -> Option<NodeId> {
        match self {
            Dest::Unicast(n) => Some(n),
            Dest::Broadcast => None,
        }
    }

    /// True for [`Dest::Broadcast`].
    pub fn is_broadcast(self) -> bool {
        matches!(self, Dest::Broadcast)
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Unicast(n) => write!(f, "{n}"),
            Dest::Broadcast => f.write_str("bcast"),
        }
    }
}

/// A link-layer frame carrying an opaque payload `P`.
///
/// The payload type is chosen by the layer that owns the queue: the engine
/// instantiates `Frame<Payload>` where `Payload` is its enum over
/// application data, RPL and 6P messages. Keeping `gtt-net` generic means
/// the substrate has no dependency on any protocol crate.
///
/// # Example
///
/// ```
/// use gtt_net::{Dest, Frame, NodeId, PacketId};
/// use gtt_sim::SimTime;
///
/// let frame = Frame::new(
///     PacketId::new(1),
///     NodeId::new(2),
///     Dest::Unicast(NodeId::new(1)),
///     SimTime::ZERO,
///     "app-data",
/// );
/// assert_eq!(frame.hops, 0);
/// let fwd = frame.forwarded(NodeId::new(1), Dest::Unicast(NodeId::new(0)));
/// assert_eq!(fwd.hops, 1);
/// assert_eq!(fwd.origin, NodeId::new(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame<P> {
    /// End-to-end packet identity (stable across hops).
    pub id: PacketId,
    /// Node that generated the packet.
    pub origin: NodeId,
    /// Link-layer sender of this hop.
    pub src: NodeId,
    /// Link-layer destination of this hop.
    pub dst: Dest,
    /// When the packet was generated (for end-to-end delay).
    pub generated_at: SimTime,
    /// Number of link-layer hops completed so far.
    pub hops: u8,
    /// Opaque payload.
    pub payload: P,
}

impl<P> Frame<P> {
    /// Creates a freshly generated frame (hop count 0, `src == origin`).
    pub fn new(id: PacketId, origin: NodeId, dst: Dest, generated_at: SimTime, payload: P) -> Self {
        Frame {
            id,
            origin,
            src: origin,
            dst,
            generated_at,
            hops: 0,
            payload,
        }
    }

    /// Returns a copy re-addressed for the next hop, with the hop counter
    /// incremented (saturating).
    pub fn forwarded(&self, new_src: NodeId, new_dst: Dest) -> Self
    where
        P: Clone,
    {
        Frame {
            id: self.id,
            origin: self.origin,
            src: new_src,
            dst: new_dst,
            generated_at: self.generated_at,
            hops: self.hops.saturating_add(1),
            payload: self.payload.clone(),
        }
    }

    /// Maps the payload, preserving all addressing metadata.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Frame<Q> {
        Frame {
            id: self.id,
            origin: self.origin,
            src: self.src,
            dst: self.dst,
            generated_at: self.generated_at,
            hops: self.hops,
            payload: f(self.payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame<&'static str> {
        Frame::new(
            PacketId::new(9),
            NodeId::new(4),
            Dest::Unicast(NodeId::new(2)),
            SimTime::from_millis(30),
            "hello",
        )
    }

    #[test]
    fn new_frame_has_zero_hops_and_src_origin() {
        let f = frame();
        assert_eq!(f.hops, 0);
        assert_eq!(f.src, f.origin);
    }

    #[test]
    fn forwarding_increments_hops_and_keeps_identity() {
        let f = frame();
        let g = f.forwarded(NodeId::new(2), Dest::Unicast(NodeId::new(0)));
        assert_eq!(g.id, f.id);
        assert_eq!(g.origin, f.origin);
        assert_eq!(g.generated_at, f.generated_at);
        assert_eq!(g.hops, 1);
        assert_eq!(g.src, NodeId::new(2));
    }

    #[test]
    fn hop_count_saturates() {
        let mut f = frame();
        f.hops = u8::MAX;
        let g = f.forwarded(NodeId::new(1), Dest::Broadcast);
        assert_eq!(g.hops, u8::MAX);
    }

    #[test]
    fn map_preserves_metadata() {
        let f = frame().map(|s| s.len());
        assert_eq!(f.payload, 5);
        assert_eq!(f.id, PacketId::new(9));
    }

    #[test]
    fn dest_helpers() {
        assert_eq!(
            Dest::Unicast(NodeId::new(3)).unicast(),
            Some(NodeId::new(3))
        );
        assert_eq!(Dest::Broadcast.unicast(), None);
        assert!(Dest::Broadcast.is_broadcast());
        assert_eq!(Dest::Broadcast.to_string(), "bcast");
        assert_eq!(Dest::Unicast(NodeId::new(3)).to_string(), "n3");
    }
}
