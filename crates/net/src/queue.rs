//! Bounded packet queues.
//!
//! Zolertia Firefly motes have 32 KB of RAM; Contiki-NG gives the MAC a
//! small fixed pool of queue buffers (`QUEUEBUF_NUM`, default 8). Queue
//! overflow under heavy traffic — "queue loss" — is one of the six metrics
//! in every figure of the paper, so the queue is a first-class type with
//! its own drop accounting.

use std::collections::VecDeque;

/// Statistics kept by a [`PacketQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets removed for transmission.
    pub dequeued: u64,
    /// Packets rejected because the queue was full (queue loss).
    pub dropped: u64,
    /// High-water mark of the queue length.
    pub peak_len: usize,
}

/// A bounded FIFO with per-destination extraction and drop accounting.
///
/// TSCH transmits "the oldest packet addressed to the neighbor of the
/// current cell", not simply the head of the queue, so extraction takes a
/// predicate ([`PacketQueue::pop_where`]). Capacities are small (≤ 64);
/// the linear scan is deliberate and cache-friendly.
///
/// # Example
///
/// ```
/// use gtt_net::PacketQueue;
///
/// let mut q: PacketQueue<u32> = PacketQueue::new(2);
/// assert!(q.push(1).is_ok());
/// assert!(q.push(2).is_ok());
/// assert_eq!(q.push(3), Err(3)); // full: queue loss
/// assert_eq!(q.stats().dropped, 1);
/// assert_eq!(q.pop_where(|&p| p == 2), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct PacketQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    stats: QueueStats,
    /// Bumped on every content mutation (see [`PacketQueue::mutations`]).
    mutations: u64,
}

impl<T> PacketQueue<T> {
    /// Creates a queue holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        PacketQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            stats: QueueStats::default(),
            mutations: 0,
        }
    }

    /// Monotonic content-mutation counter: moves whenever the set of
    /// queued packets may have changed. Consumers caching queue-derived
    /// answers (the MAC's next-transmission memo) compare counters
    /// instead of diffing contents; spurious bumps only cost a
    /// recomputation, so the counter is conservative.
    pub fn mutations(&self) -> u64 {
        self.mutations
    }

    /// Maximum number of packets.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no packets are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True if the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining free buffer slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Appends a packet.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (handing the packet back) when the queue is
    /// full; the drop is counted as queue loss.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            self.stats.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.mutations += 1;
        self.stats.enqueued += 1;
        self.stats.peak_len = self.stats.peak_len.max(self.items.len());
        Ok(())
    }

    /// Removes and returns the oldest packet.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.mutations += 1;
            self.stats.dequeued += 1;
        }
        item
    }

    /// Removes and returns the oldest packet matching `pred`.
    pub fn pop_where(&mut self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        let item = self.items.remove(idx);
        if item.is_some() {
            self.mutations += 1;
            self.stats.dequeued += 1;
        }
        item
    }

    /// Reference to the oldest packet matching `pred`, without removing it.
    pub fn peek_where(&self, pred: impl Fn(&T) -> bool) -> Option<&T> {
        self.items.iter().find(|t| pred(t))
    }

    /// Number of queued packets matching `pred`.
    pub fn count_where(&self, pred: impl Fn(&T) -> bool) -> usize {
        self.items.iter().filter(|t| pred(t)).count()
    }

    /// Iterates over queued packets, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Puts a packet back at the *front* of the queue, bypassing statistics.
    ///
    /// Used by the MAC to return an unacknowledged packet to the head of
    /// the line for retransmission: the packet was never really "gone", so
    /// neither the enqueue counter nor the drop counter moves. To keep the
    /// bound honest the packet is still rejected when the queue is full
    /// (which cannot happen in the MAC's pop-then-requeue pattern).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is full.
    pub fn requeue_front(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.items.push_front(item);
        self.mutations += 1;
        // Undo the matching pop's dequeue count so stats reflect real
        // departures only.
        self.stats.dequeued = self.stats.dequeued.saturating_sub(1);
        Ok(())
    }

    /// Removes every queued packet matching `pred`, returning them in
    /// queue order. Used when a parent switch re-addresses queued traffic.
    pub fn drain_where(&mut self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut kept = VecDeque::with_capacity(self.items.len());
        let mut taken = Vec::new();
        for item in self.items.drain(..) {
            if pred(&item) {
                taken.push(item);
            } else {
                kept.push_back(item);
            }
        }
        self.items = kept;
        self.mutations += 1;
        self.stats.dequeued += taken.len() as u64;
        taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = PacketQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn overflow_counts_and_returns_packet() {
        let mut q = PacketQueue::new(1);
        q.push("a").unwrap();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.push("c"), Err("c"));
        assert_eq!(q.stats().dropped, 2);
        assert_eq!(q.stats().enqueued, 1);
        assert!(q.is_full());
        assert_eq!(q.free(), 0);
    }

    #[test]
    fn pop_where_takes_oldest_match() {
        let mut q = PacketQueue::new(8);
        for i in [10, 21, 12, 23] {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_where(|&x| x > 20), Some(21));
        assert_eq!(q.pop_where(|&x| x > 20), Some(23));
        assert_eq!(q.pop_where(|&x| x > 20), None);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_and_count() {
        let mut q = PacketQueue::new(8);
        for i in [1, 2, 3, 4] {
            q.push(i).unwrap();
        }
        assert_eq!(q.peek_where(|&x| x % 2 == 0), Some(&2));
        assert_eq!(q.count_where(|&x| x % 2 == 0), 2);
        assert_eq!(q.len(), 4, "peek/count must not remove");
    }

    #[test]
    fn drain_where_partitions_in_order() {
        let mut q = PacketQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let evens = q.drain_where(|&x| x % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    fn requeue_front_restores_order_and_stats() {
        let mut q = PacketQueue::new(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        let head = q.pop().unwrap();
        q.requeue_front(head).unwrap();
        assert_eq!(q.pop(), Some("a"), "requeued packet stays at the head");
        // One real departure so far ("a" popped twice but requeued once).
        assert_eq!(q.stats().dequeued, 1);
        assert_eq!(q.stats().enqueued, 2);
    }

    #[test]
    fn requeue_front_respects_capacity() {
        let mut q = PacketQueue::new(1);
        q.push(1).unwrap();
        assert_eq!(q.requeue_front(2), Err(2));
    }

    #[test]
    fn peak_len_tracks_high_water() {
        let mut q = PacketQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.stats().peak_len, 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_capacity_rejected() {
        let _: PacketQueue<u8> = PacketQueue::new(0);
    }
}
