//! Node identifiers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a simulated IoT node.
///
/// Ids are dense indices assigned by [`TopologyBuilder`](crate::TopologyBuilder)
/// in insertion order, so they double as `Vec` indices throughout the
/// workspace ([`NodeId::index`]). A newtype keeps them from being confused
/// with slot numbers, channel offsets or queue lengths (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use gtt_net::NodeId;
/// let root = NodeId::new(0);
/// assert_eq!(root.index(), 0);
/// assert_eq!(root.to_string(), "n0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from its dense index.
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// The raw id value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The id as a `Vec` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u16::MAX`.
    pub fn from_index(index: usize) -> Self {
        assert!(
            index <= u16::MAX as usize,
            "node index {index} out of range"
        );
        NodeId(index as u16)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u16 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let id = NodeId::new(7);
        assert_eq!(u16::from(id), 7);
        assert_eq!(NodeId::from(7u16), id);
        assert_eq!(NodeId::from_index(7), id);
        assert_eq!(id.index(), 7);
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_large() {
        let _ = NodeId::from_index(70_000);
    }
}
