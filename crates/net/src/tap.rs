//! The frame-tap seam: observe every resolved transmission as wire bytes.
//!
//! A [`FrameTap`] is the radio-tap analogue for the simulated medium: the
//! engine drives it once per transmission, *after* the medium has resolved
//! the slot, with the frame's encoded IEEE 802.15.4 bytes plus the slot
//! metadata a capture tool would timestamp it with (ASN, channel, ACK
//! outcome). Sinks live in `gtt-frame` (the pcap writer, the
//! retry-histogram used by the paper-claims tests); this crate only owns
//! the seam so the medium layer stays the single point where "what went
//! over the air" is defined.
//!
//! # Determinism contract (see `DETERMINISM.md`)
//!
//! Taps are observers, never participants: the engine must produce
//! byte-identical network reports with a tap installed, absent, or
//! swapped — a tap receives `&TapRecord` and has no channel back into
//! the simulation. Records arrive in deterministic order (ascending
//! ASN; within a slot, ascending transmitter node id), so a trace is a pure
//! function of the experiment that produced it.

use crate::channel::PhysicalChannel;
use crate::frame::{Dest, PacketId};
use crate::id::NodeId;
use gtt_sim::SimTime;

/// Everything a sink sees about one resolved transmission.
///
/// `bytes` is the full MPDU — MAC header through FCS — encoded into the
/// engine's reusable tap buffer; it is only valid for the duration of the
/// [`FrameTap::on_transmission`] call (copy it out to keep it).
#[derive(Debug)]
pub struct TapRecord<'a> {
    /// Absolute slot number of the slot the frame was transmitted in.
    pub asn: u64,
    /// Start time of that slot (what a capture timestamps the frame with).
    pub time: SimTime,
    /// Physical channel the transmission went out on.
    pub channel: PhysicalChannel,
    /// Transmitting node (the per-hop source, not the packet origin).
    pub src: NodeId,
    /// Link-layer destination.
    pub dst: Dest,
    /// Engine packet id (`u64::MAX` for untracked control frames).
    pub packet: PacketId,
    /// Slot outcome: `Some(true)` acknowledged, `Some(false)` unicast
    /// not acknowledged, `None` broadcast (no ACK expected).
    pub acked: Option<bool>,
    /// The encoded MPDU (header + payload + FCS), standard byte order.
    pub bytes: &'a [u8],
}

/// A sink for resolved transmissions (pcap writer, histogram, …).
///
/// Implementations must be pure observers: the engine guarantees the
/// simulation is byte-identical with or without a tap installed, and that
/// guarantee only composes if the tap itself never reaches back into
/// shared state the simulation reads.
pub trait FrameTap: Send {
    /// Called once per transmission, in deterministic order (ascending
    /// ASN, then ascending transmitter node id within the slot).
    fn on_transmission(&mut self, record: &TapRecord<'_>);
}
