//! # gtt-net — radio medium, topology and link-quality substrate
//!
//! This crate models everything "below" the TSCH MAC for the GT-TSCH
//! reproduction: where nodes are, which links exist and how good they are,
//! and what every listening radio hears when a set of nodes transmit in the
//! same timeslot.
//!
//! The paper evaluates GT-TSCH in the Cooja emulator; this crate is the
//! substituted substrate (see `DESIGN.md` §1). It reproduces the phenomena
//! the evaluation depends on:
//!
//! * **co-channel collisions** — two audible transmissions on one physical
//!   channel destroy each other at the listener (no capture effect, like
//!   Cooja's UDGM in its default configuration),
//! * **hidden terminals** — audibility is evaluated per listener, so two
//!   senders out of range of each other still collide at a node that hears
//!   both (§III problem 4 of the paper),
//! * **lossy links** — a clean (single-transmitter) reception still fails
//!   with probability `1 − PRR(link)`, driving the ETX metric of §VII-B.
//!
//! # Example
//!
//! ```
//! use gtt_net::{NodeId, Position, Topology, TopologyBuilder};
//!
//! let topo: Topology = TopologyBuilder::new(50.0)
//!     .node(Position::new(0.0, 0.0))
//!     .node(Position::new(30.0, 0.0))
//!     .node(Position::new(90.0, 0.0))
//!     .build();
//! let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
//! assert!(topo.in_range(a, b));
//! assert!(!topo.in_range(a, c)); // 90 m > 50 m range
//! assert!(topo.prr(a, b) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod frame;
pub mod geometry;
pub mod id;
pub mod medium;
pub mod queue;
mod spatial;
pub mod tap;
pub mod topology;

pub use channel::PhysicalChannel;
pub use frame::{Dest, Frame, PacketId};
pub use geometry::Position;
pub use id::NodeId;
pub use medium::{DrawStreams, Listener, RadioMedium, RxOutcome, SlotOutcomes, Transmission};
pub use queue::{PacketQueue, QueueStats};
pub use tap::{FrameTap, TapRecord};
pub use topology::{LinkModel, Topology, TopologyBuilder};
