//! Criterion micro-benchmarks of the building blocks every experiment
//! leans on: the game solver (eq. 15), Algorithm 1 channel allocation,
//! radio-medium slot resolution and the per-slot MAC planner.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gt_tsch::{ChannelAllocator, GameInputs, GameWeights};
use gtt_mac::{Asn, ChannelOffset, HoppingSequence};
use gtt_net::{
    Dest, Frame, LinkModel, Listener, NodeId, PacketId, PhysicalChannel, Position, RadioMedium,
    Topology, TopologyBuilder, Transmission,
};
use gtt_sim::{Pcg32, SimTime};

fn game_solver(c: &mut Criterion) {
    let weights = GameWeights::default();
    c.bench_function("game/eq15_best_response", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let inputs = GameInputs {
                rank_weight: 1.0 / (1.0 + (i % 4) as f64),
                etx: 1.0 + (i % 10) as f64 * 0.2,
                queue_avg: (i % 8) as f64,
                queue_max: 8.0,
                l_tx_min: 1 + (i % 3) as u16,
                l_rx_parent: 8,
            };
            std::hint::black_box(inputs.best_response(&weights))
        })
    });
}

fn channel_allocation(c: &mut Criterion) {
    c.bench_function("channel/algorithm1_allocate_5_children", |b| {
        b.iter_batched(
            || ChannelAllocator::new(8, 0),
            |mut alloc| {
                for i in 0..5u16 {
                    std::hint::black_box(alloc.allocate(NodeId::new(i), Some(1), Some(2)));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn dense_topology(n: usize) -> Topology {
    let mut b = TopologyBuilder::new(60.0).link_model(LinkModel::Fixed(0.95));
    for i in 0..n {
        let angle = i as f64 * 0.7;
        let radius = 10.0 + (i % 5) as f64 * 10.0;
        b = b.node(Position::new(radius * angle.cos(), radius * angle.sin()));
    }
    b.build()
}

fn medium_resolution(c: &mut Criterion) {
    let topo = dense_topology(14);
    let hopping = HoppingSequence::paper_default();
    c.bench_function("medium/resolve_slot_14_nodes", |b| {
        let mut medium = RadioMedium::new(topo.clone(), Pcg32::new(1));
        let mut asn = 0u64;
        b.iter(|| {
            asn += 1;
            let ch = |off: u8| hopping.channel(Asn::new(asn), ChannelOffset::new(off));
            // Half the nodes transmit, half listen — a busy slot.
            let transmissions: Vec<Transmission<u32>> = (0..7u16)
                .map(|i| Transmission {
                    channel: ch((i % 4) as u8),
                    frame: Frame::new(
                        PacketId::new(asn),
                        NodeId::new(i),
                        Dest::Unicast(NodeId::new(i + 7)),
                        SimTime::ZERO,
                        0,
                    ),
                })
                .collect();
            let listeners: Vec<Listener> = (7..14u16)
                .map(|i| Listener {
                    node: NodeId::new(i),
                    channel: ch(((i - 7) % 4) as u8),
                })
                .collect();
            std::hint::black_box(medium.resolve_slot(transmissions, listeners))
        })
    });

    c.bench_function("medium/prr_lookup", |b| {
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 1) % 14;
            std::hint::black_box(topo.prr(NodeId::new(i), NodeId::new((i + 1) % 14)))
        })
    });
}

fn prng(c: &mut Criterion) {
    c.bench_function("sim/pcg32_next_u32", |b| {
        let mut rng = Pcg32::new(42);
        b.iter(|| std::hint::black_box(rng.next_u32()))
    });
    c.bench_function("sim/pcg32_gen_range", |b| {
        let mut rng = Pcg32::new(42);
        b.iter(|| std::hint::black_box(rng.gen_range_u32(0, 97)))
    });
    c.bench_function("sim/channel_hop", |b| {
        let hop = PhysicalChannel::new(17);
        let seq = HoppingSequence::paper_default();
        let mut asn = 0u64;
        b.iter(|| {
            asn += 1;
            let c = seq.channel(Asn::new(asn), ChannelOffset::new(3));
            std::hint::black_box(c == hop)
        })
    });
}

criterion_group!(
    benches,
    game_solver,
    channel_allocation,
    medium_resolution,
    prng
);
criterion_main!(benches);
