//! `slots_per_sec`: engine-core throughput on the 120-node scenarios.
//!
//! Measures wall time per simulated run of the sparse-traffic
//! `large_grid` (the event-driven core's headline case) and the dense
//! `large_star` (its worst case: every slot has listeners). When the
//! `naive-step` feature is on, the exhaustive oracle loop is measured on
//! the same scenarios so the speedup is a number, not a claim — the
//! `bench_engine` binary turns the comparison into `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

/// Simulated seconds per measured iteration.
const SIM_SECS: u64 = 30;

fn experiment(scenario: &ScenarioSpec, scheduler: &SchedulerKind) -> Experiment {
    Experiment::new(scenario.clone(), scheduler.clone()).with_run(RunSpec {
        traffic_ppm: 6.0,
        warmup_secs: 0,
        measure_secs: SIM_SECS,
        seed: 1,
        ..RunSpec::default()
    })
}

fn run_event(scenario: &ScenarioSpec, scheduler: &SchedulerKind) {
    let mut net = experiment(scenario, scheduler).build_network();
    net.run_for(SimDuration::from_secs(SIM_SECS));
}

#[cfg(feature = "naive-step")]
fn run_naive(scenario: &ScenarioSpec, scheduler: &SchedulerKind) {
    let mut net = experiment(scenario, scheduler)
        .network_builder()
        .naive_stepping()
        .build();
    net.run_for(SimDuration::from_secs(SIM_SECS));
}

fn slots_per_sec(c: &mut Criterion) {
    let grid = ScenarioSpec::large_grid();
    let star = ScenarioSpec::large_star();
    let gt = SchedulerKind::gt_tsch_default();
    let minimal = SchedulerKind::minimal(16);

    let mut group = c.benchmark_group("slots_per_sec");
    group.sample_size(10);
    group.bench_function("large_grid_120_event", |b| {
        b.iter_batched(|| (), |()| run_event(&grid, &gt), BatchSize::PerIteration)
    });
    group.bench_function("large_star_120_event", |b| {
        b.iter_batched(
            || (),
            |()| run_event(&star, &minimal),
            BatchSize::PerIteration,
        )
    });
    #[cfg(feature = "naive-step")]
    {
        group.bench_function("large_grid_120_naive", |b| {
            b.iter_batched(|| (), |()| run_naive(&grid, &gt), BatchSize::PerIteration)
        });
        group.bench_function("large_star_120_naive", |b| {
            b.iter_batched(
                || (),
                |()| run_naive(&star, &minimal),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, slots_per_sec);
criterion_main!(benches);
