//! Criterion benchmarks of the figure experiments themselves: one short
//! simulation per (figure, scheduler) configuration, so `cargo bench`
//! exercises every code path the paper's evaluation runs, end to end.
//!
//! These measure *simulator throughput* (wall time per simulated run);
//! the paper's own metrics are produced by the `fig8`/`fig9`/`fig10`
//! binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

/// A short (20 s warm-up + 20 s measured) run of a figure configuration.
fn short_run(scenario: &ScenarioSpec, scheduler: &SchedulerKind, seed: u64) -> f64 {
    Experiment::new(scenario.clone(), scheduler.clone())
        .with_run(RunSpec {
            traffic_ppm: 120.0,
            warmup_secs: 20,
            measure_secs: 20,
            seed,
            ..RunSpec::default()
        })
        .run()
        .row
        .pdr_percent
}

fn fig8_configs(c: &mut Criterion) {
    let scenario = ScenarioSpec::two_dodag(7);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("gt_tsch_14_nodes_120ppm", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(short_run(
                &scenario,
                &SchedulerKind::gt_tsch_default(),
                seed,
            ))
        })
    });
    group.bench_function("orchestra_14_nodes_120ppm", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(short_run(
                &scenario,
                &SchedulerKind::orchestra_default(),
                seed,
            ))
        })
    });
    group.finish();
}

fn fig9_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for n in [6usize, 9] {
        let scenario = ScenarioSpec::two_dodag(n);
        group.bench_function(format!("gt_tsch_{n}_per_dodag"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(short_run(
                    &scenario,
                    &SchedulerKind::gt_tsch_default(),
                    seed,
                ))
            })
        });
    }
    group.finish();
}

fn fig10_configs(c: &mut Criterion) {
    let scenario = ScenarioSpec::two_dodag(7);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    for len in [8u16, 20] {
        group.bench_function(format!("gt_tsch_slotframe_{}", len * 4), |b| {
            let sched = SchedulerKind::GtTsch(gt_tsch::GtTschConfig::with_slotframe_len(len * 4));
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(short_run(&scenario, &sched, seed))
            })
        });
        group.bench_function(format!("orchestra_unicast_{len}"), |b| {
            let sched =
                SchedulerKind::Orchestra(gtt_orchestra::OrchestraConfig::with_unicast_len(len));
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                std::hint::black_box(short_run(&scenario, &sched, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig8_configs, fig9_configs, fig10_configs);
criterion_main!(benches);
