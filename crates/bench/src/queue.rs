//! Fault-tolerant work-stealing sweep queue.
//!
//! `sweep_worker`'s shard files (PR 5/6) statically partition a
//! figure's cells: a worker that dies takes its shard with it and a
//! slow worker straggles the whole figure. This module replaces the
//! static partition with an on-disk *queue directory* that any number
//! of workers — threads, processes, or (over a shared filesystem)
//! hosts — drain cooperatively, surviving crashes of any of them:
//!
//! ```text
//! queue/
//!   pending/<key>   cell waiting to be claimed
//!   leases/<key>    cell being computed; carries worker id + heartbeat
//!   done/<key>      completion marker (result lives in the sweep cache)
//!   failed/<key>    cell parked after its retry budget; a valid shard
//!                   file (`# error` comment + experiment hex line)
//! ```
//!
//! Every transition is a single atomic `rename` on one filesystem (the
//! same temp+rename discipline as the sweep cache), so each cell is in
//! exactly one state at any instant and two workers can never both own
//! a lease:
//!
//! ```text
//!            claim (rename)                 complete
//! pending ───────────────────▶ leases ───────────────────▶ done
//!    ▲                          │   │      (marker first,
//!    │   requeue-on-death       │   │       then lease removed)
//!    └──────────────────────────┘   └─────▶ failed
//!        (stale heartbeat,            (retry budget exhausted,
//!         retries < budget)            or poisoned entry)
//! ```
//!
//! **Liveness without clocks.** A lease file carries a monotonically
//! increasing heartbeat counter that the owning process re-stamps every
//! [`QueueWorkerConfig::heartbeat`]. Staleness is detected
//! *observer-side*: a worker watching someone else's lease remembers
//! the `(worker, beat)` pair it last saw and how long ago *on its own
//! clock*; only when the pair stays frozen past the timeout is the
//! lease declared dead and renamed back to `pending/` (with its retry
//! count bumped). No synchronized clocks, no absolute timestamps in
//! any file.
//!
//! **Safety ordering.** Every exit from the lease state creates the
//! successor state *before* removing the lease (done marker, requeued
//! pending entry, or failed entry first; lease second). A crash between
//! the two steps leaves the cell in *two* states, never zero — and the
//! duplicate is benign: claims check the `done/` marker first, and a
//! double-computed cell writes byte-identical results because the
//! simulation is deterministic. Cells are never lost.
//!
//! **Termination.** A worker exits only after seeing pending empty,
//! leases empty, and pending empty *again* — a requeue in flight during
//! the first two listings (lease removed, pending entry just created)
//! is caught by the third.
//!
//! The queue schedules work; it never touches simulation semantics.
//! Results flow exclusively through the content-addressed sweep cache,
//! so a figure rendered from a queue-filled cache is byte-identical to
//! a single-process `--no-cache` run (see `DETERMINISM.md`).

use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crossbeam::thread;
use gtt_workload::Experiment;

use crate::sweep::{
    cache_fetch, cache_store, cell_key, quarantine, run_cell, CacheFetch, SweepConfig, SweepPoint,
};

/// First line of every pending/lease cell file. Bump on layout change.
const QUEUE_CELL_HEADER: &str = "gtt-queue cell v1";

/// Claim-contention backoff: first sleep.
const BACKOFF_BASE: Duration = Duration::from_millis(15);

/// Claim-contention backoff: cap (also the idle poll interval while
/// waiting out someone else's live lease).
const BACKOFF_CAP: Duration = Duration::from_millis(1000);

/// A parsed pending/lease cell file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueCell {
    /// Requeues so far (0 on first enqueue).
    pub retries: u32,
    /// Owning worker id, or `-` while pending.
    pub worker: String,
    /// Heartbeat counter (0 while pending; stamped upward while leased).
    pub beat: u64,
    /// The hex-encoded canonical experiment ([`Experiment::encode_hex`]).
    pub hex: String,
}

impl QueueCell {
    fn render(&self) -> String {
        format!(
            "{QUEUE_CELL_HEADER}\nretries {}\nworker {}\nbeat {}\n{}\n",
            self.retries, self.worker, self.beat, self.hex
        )
    }

    fn parse(text: &str) -> Option<QueueCell> {
        let mut lines = text.lines();
        if lines.next()? != QUEUE_CELL_HEADER {
            return None;
        }
        let retries = lines.next()?.strip_prefix("retries ")?.parse().ok()?;
        let worker = lines.next()?.strip_prefix("worker ")?.to_string();
        let beat = lines.next()?.strip_prefix("beat ")?.parse().ok()?;
        let hex = lines.next()?.to_string();
        if lines.next().is_some() || hex.is_empty() {
            return None;
        }
        Some(QueueCell {
            retries,
            worker,
            beat,
            hex,
        })
    }
}

/// Outcome of [`QueueDir::requeue_stale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requeue {
    /// The lease changed (or vanished) since it was observed — its
    /// owner is alive (or finished); nothing was touched.
    Refreshed,
    /// The dead worker's cell is back in `pending/` with its retry
    /// count bumped.
    Requeued,
    /// The cell exhausted its retry budget and was parked in `failed/`.
    Parked,
}

/// Handle to one on-disk queue directory.
#[derive(Debug, Clone)]
pub struct QueueDir {
    root: PathBuf,
}

impl QueueDir {
    /// Opens (creating if needed) the queue under `root`. Idempotent
    /// and safe to race from many processes.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<QueueDir> {
        let q = QueueDir { root: root.into() };
        for sub in ["pending", "leases", "done", "failed"] {
            std::fs::create_dir_all(q.root.join(sub))?;
        }
        Ok(q)
    }

    /// The queue's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dir(&self, sub: &str) -> PathBuf {
        self.root.join(sub)
    }

    /// Sorted cell keys in one state directory (non-key files ignored,
    /// so stray temp files can never be mistaken for cells).
    fn keys_in(&self, sub: &str) -> std::io::Result<Vec<String>> {
        let mut keys = Vec::new();
        for entry in std::fs::read_dir(self.dir(sub))? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.len() == 32 && name.bytes().all(|b| b.is_ascii_hexdigit()) {
                keys.push(name.to_string());
            }
        }
        keys.sort_unstable();
        Ok(keys)
    }

    /// Keys waiting to be claimed.
    pub fn pending_keys(&self) -> std::io::Result<Vec<String>> {
        self.keys_in("pending")
    }

    /// Keys currently leased.
    pub fn lease_keys(&self) -> std::io::Result<Vec<String>> {
        self.keys_in("leases")
    }

    /// Keys with a completion marker.
    pub fn done_keys(&self) -> std::io::Result<Vec<String>> {
        self.keys_in("done")
    }

    /// Keys parked after exhausting their retry budget.
    pub fn failed_keys(&self) -> std::io::Result<Vec<String>> {
        self.keys_in("failed")
    }

    /// True if `key` has a completion marker.
    pub fn is_done(&self, key: &str) -> bool {
        self.dir("done").join(key).exists()
    }

    /// True if `key` is anywhere in the queue (pending, leased, done or
    /// failed).
    pub fn contains(&self, key: &str) -> bool {
        ["pending", "leases", "done", "failed"]
            .iter()
            .any(|sub| self.dir(sub).join(key).exists())
    }

    /// Atomically writes `text` to `sub/key` via a per-process temp
    /// file + rename.
    fn write_atomic(&self, sub: &str, key: &str, text: &str) -> std::io::Result<()> {
        let tmp = self
            .dir(sub)
            .join(format!("{key}.tmp-{}", std::process::id()));
        let write = std::fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(text.as_bytes()))
            .and_then(|()| std::fs::rename(&tmp, self.dir(sub).join(key)));
        if write.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        write
    }

    /// Adds a cell to `pending/` (retries 0). No-op if the key already
    /// exists anywhere in the queue.
    pub fn enqueue_hex(&self, key: &str, hex: &str) -> std::io::Result<bool> {
        if self.contains(key) {
            return Ok(false);
        }
        let cell = QueueCell {
            retries: 0,
            worker: "-".to_string(),
            beat: 0,
            hex: hex.to_string(),
        };
        self.write_atomic("pending", key, &cell.render())?;
        Ok(true)
    }

    /// Claims a pending cell for `worker`: atomically renames
    /// `pending/key` into `leases/key`, then stamps it with the worker
    /// id and heartbeat 1. Returns `None` when the cell is gone
    /// (claimed by someone else, or already done — a done pending entry
    /// is discarded). A torn/unparseable entry is parked and yields
    /// `None`.
    pub fn claim(&self, key: &str, worker: &str) -> std::io::Result<Option<QueueCell>> {
        if self.is_done(key) {
            // A requeue raced a completion: the result already exists.
            let _ = std::fs::remove_file(self.dir("pending").join(key));
            return Ok(None);
        }
        let lease_path = self.dir("leases").join(key);
        match std::fs::rename(self.dir("pending").join(key), &lease_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        // We own the lease exclusively now: the rename can only succeed
        // for one claimant.
        let text = std::fs::read_to_string(&lease_path)?;
        let Some(mut cell) = QueueCell::parse(&text) else {
            self.park_raw(key, "unparseable queue cell", &text)?;
            return Ok(None);
        };
        cell.worker = worker.to_string();
        cell.beat = 1;
        self.write_atomic("leases", key, &cell.render())?;
        Ok(Some(cell))
    }

    /// Re-stamps a lease this process owns: bumps the heartbeat counter
    /// in place (temp+rename). A vanished lease is a no-op — the cell
    /// just completed on another thread.
    pub fn stamp_lease(&self, key: &str) -> std::io::Result<()> {
        let text = match std::fs::read_to_string(self.dir("leases").join(key)) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let Some(mut cell) = QueueCell::parse(&text) else {
            return Ok(()); // torn entry; the stale sweep will park it
        };
        cell.beat += 1;
        self.write_atomic("leases", key, &cell.render())
    }

    /// Reads a lease without claiming it (for the stale sweep).
    pub fn read_lease(&self, key: &str) -> Option<QueueCell> {
        let text = std::fs::read_to_string(self.dir("leases").join(key)).ok()?;
        QueueCell::parse(&text)
    }

    /// Marks `key` complete: writes the `done/` marker *first*, then
    /// removes the lease — a crash in between leaves a harmless
    /// done+lease pair that the stale sweep cleans up.
    pub fn complete(&self, key: &str, worker: &str) -> std::io::Result<()> {
        self.write_atomic("done", key, &format!("done {worker}\n"))?;
        match std::fs::remove_file(self.dir("leases").join(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Parks a leased cell in `failed/` with the captured error. The
    /// failed entry is a valid shard file (comment + hex line), so a
    /// parked cell can be re-run by hand with
    /// `sweep_worker --cache-dir DIR queue/failed/<key>` after the
    /// cause is fixed.
    pub fn park(&self, key: &str, error: &str, hex: &str) -> std::io::Result<()> {
        let error = error.replace('\n', " ");
        self.write_atomic("failed", key, &format!("# {error}\n{key} miss {hex}\n"))?;
        match std::fs::remove_file(self.dir("leases").join(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// [`park`](Self::park) for entries whose hex is unrecoverable.
    fn park_raw(&self, key: &str, error: &str, raw: &str) -> std::io::Result<()> {
        let error = error.replace('\n', " ");
        let raw = raw.replace('\n', " ");
        self.write_atomic("failed", key, &format!("# {error}: {raw}\n"))?;
        match std::fs::remove_file(self.dir("leases").join(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Takes a lease away from a worker observed dead: requeues the
    /// cell to `pending/` with its retry count bumped — or parks it if
    /// the budget is spent. `observed` is the `(worker, beat)` pair the
    /// caller has watched stay frozen past the timeout; if the lease no
    /// longer matches it (re-stamped, completed, already requeued), the
    /// owner is alive and nothing is touched.
    pub fn requeue_stale(
        &self,
        key: &str,
        observed: (&str, u64),
        retry_budget: u32,
    ) -> std::io::Result<Requeue> {
        let Some(cell) = self.read_lease(key) else {
            return Ok(Requeue::Refreshed);
        };
        if (cell.worker.as_str(), cell.beat) != observed {
            return Ok(Requeue::Refreshed);
        }
        if self.is_done(key) {
            // Completion crashed between marker and lease removal:
            // finish the job for it.
            let _ = std::fs::remove_file(self.dir("leases").join(key));
            return Ok(Requeue::Refreshed);
        }
        let retries = cell.retries + 1;
        if retries > retry_budget {
            self.park(
                key,
                &format!(
                    "lease expired {retries} times (last worker {}); retry budget {retry_budget} spent",
                    cell.worker
                ),
                &cell.hex,
            )?;
            return Ok(Requeue::Parked);
        }
        let requeued = QueueCell {
            retries,
            worker: "-".to_string(),
            beat: 0,
            hex: cell.hex,
        };
        // Successor state first, lease second: a crash here duplicates
        // the cell (benign — deterministic results), never loses it.
        self.write_atomic("pending", key, &requeued.render())?;
        let _ = std::fs::remove_file(self.dir("leases").join(key));
        Ok(Requeue::Requeued)
    }
}

/// Observer-side staleness detector: remembers the `(worker, beat)`
/// pair last seen per lease and how long ago on the *local* clock. A
/// lease is stale when the pair stays frozen past the timeout — no
/// cross-host clock comparison ever happens.
#[derive(Debug, Default)]
pub struct StaleTracker {
    seen: HashMap<String, (String, u64, Instant)>,
}

impl StaleTracker {
    /// Creates an empty tracker.
    pub fn new() -> StaleTracker {
        StaleTracker::default()
    }

    /// Records one observation of `key`'s lease; returns `true` when
    /// the heartbeat has been frozen for at least `timeout`.
    pub fn observe(&mut self, key: &str, worker: &str, beat: u64, timeout: Duration) -> bool {
        let now = Instant::now();
        match self.seen.get_mut(key) {
            Some((w, b, since)) if *w == worker && *b == beat => {
                now.duration_since(*since) >= timeout
            }
            Some(entry) => {
                *entry = (worker.to_string(), beat, now);
                false
            }
            None => {
                self.seen
                    .insert(key.to_string(), (worker.to_string(), beat, now));
                false
            }
        }
    }

    /// Drops the record for `key` (after a requeue or completion).
    pub fn forget(&mut self, key: &str) {
        self.seen.remove(key);
    }
}

/// Settings for [`run_queue_worker`].
#[derive(Debug, Clone)]
pub struct QueueWorkerConfig {
    /// The queue directory (created if absent).
    pub queue: PathBuf,
    /// The sweep cache directory results are written to.
    pub cache_dir: PathBuf,
    /// Worker threads (`0` = one per available core).
    pub jobs: usize,
    /// Interval between lease re-stamps.
    pub heartbeat: Duration,
    /// How long a frozen heartbeat must be observed before the lease is
    /// declared dead. Clamped to at least 3 heartbeats so a merely slow
    /// worker is not robbed.
    pub lease_timeout: Duration,
    /// Requeues per cell before it is parked in `failed/`.
    pub retry_budget: u32,
    /// This process's worker id (stamped into leases and done markers).
    pub worker_id: String,
}

impl QueueWorkerConfig {
    /// Defaults: auto thread count, 500 ms heartbeat, 10 s lease
    /// timeout, 3 retries, a pid-derived worker id.
    pub fn new(queue: impl Into<PathBuf>, cache_dir: impl Into<PathBuf>) -> QueueWorkerConfig {
        static NONCE: AtomicUsize = AtomicUsize::new(0);
        QueueWorkerConfig {
            queue: queue.into(),
            cache_dir: cache_dir.into(),
            jobs: 0,
            heartbeat: Duration::from_millis(500),
            lease_timeout: Duration::from_secs(10),
            retry_budget: 3,
            worker_id: format!(
                "w{}-{}",
                std::process::id(),
                NONCE.fetch_add(1, Ordering::Relaxed)
            ),
        }
    }

    fn effective_timeout(&self) -> Duration {
        self.lease_timeout.max(self.heartbeat * 3)
    }
}

/// What one [`run_queue_worker`] call did and saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueWorkerStats {
    /// Cells this worker completed (computed + cache hits).
    pub completed: usize,
    /// Cells this worker simulated.
    pub computed: usize,
    /// Cells already in the sweep cache when claimed.
    pub cache_hits: usize,
    /// Requeues this worker performed (stale leases of dead workers
    /// plus its own retryable failures).
    pub requeued: usize,
    /// Cells this worker parked in `failed/`.
    pub parked: usize,
    /// Corrupt cache cells quarantined.
    pub corrupt: usize,
    /// Cache write-backs that failed (each also requeues or parks the
    /// cell — a result that could not be stored was never delivered).
    pub store_errors: usize,
    /// Queue-wide: cells in `failed/` at exit (any worker's).
    pub failed_total: usize,
    /// Queue-wide: cells in `done/` at exit.
    pub done_total: usize,
    /// Queue-wide: cells still pending or leased at exit. The
    /// termination check makes this 0; anything else means a cell
    /// leaked.
    pub lost: usize,
}

/// Drains the queue: claims pending cells, fills the sweep cache, and
/// steals from dead workers until the queue is empty. Runs
/// `config.jobs` claim/compute threads plus one heartbeat thread that
/// re-stamps every lease this process holds. Returns when pending and
/// leases are both empty (checked pending–leases–pending to close the
/// requeue race); cells whose retry budget is spent are parked in
/// `failed/`, never wedging the drain.
pub fn run_queue_worker(config: &QueueWorkerConfig) -> std::io::Result<QueueWorkerStats> {
    let q = QueueDir::open(&config.queue)?;
    std::fs::create_dir_all(&config.cache_dir)?;

    let threads = if config.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        config.jobs
    };

    // Leases held by THIS process: the heartbeat thread stamps exactly
    // these, and the stale sweep never touches them. Completion removes
    // the key *under this lock* before touching queue files, so the
    // heartbeat thread (which stamps under the same lock) can never
    // resurrect a lease after its cell completed.
    let held: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
    let stop = AtomicBool::new(false);
    let stats: Vec<AtomicUsize> = (0..7).map(|_| AtomicUsize::new(0)).collect();
    let [completed, computed, cache_hits, requeued, parked, corrupt, store_errors] = [
        &stats[0], &stats[1], &stats[2], &stats[3], &stats[4], &stats[5], &stats[6],
    ];
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);

    thread::scope(|scope| {
        // Heartbeat: re-stamp held leases, forever, until every worker
        // thread is done.
        scope.spawn(|_| {
            while !stop.load(Ordering::Relaxed) {
                {
                    let held = held.lock().expect("heartbeat lock");
                    for key in held.iter() {
                        let _ = q.stamp_lease(key);
                    }
                }
                // Sleep in slices so shutdown is prompt.
                let mut slept = Duration::ZERO;
                while slept < config.heartbeat && !stop.load(Ordering::Relaxed) {
                    let slice = Duration::from_millis(25).min(config.heartbeat - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
            }
        });

        let worker_handles: Vec<_> = (0..threads)
            .map(|index| {
                let q = &q;
                let held = &held;
                let io_error = &io_error;
                scope.spawn(move |_| {
                    let run = drain_queue(
                        q,
                        config,
                        index,
                        held,
                        &WorkerCounters {
                            completed,
                            computed,
                            cache_hits,
                            requeued,
                            parked,
                            corrupt,
                            store_errors,
                        },
                    );
                    if let Err(e) = run {
                        io_error.lock().expect("error slot").get_or_insert(e);
                    }
                })
            })
            .collect();
        for handle in worker_handles {
            let _ = handle.join();
        }
        stop.store(true, Ordering::Relaxed);
    })
    .expect("queue worker thread panicked");

    if let Some(e) = io_error.into_inner().expect("error slot") {
        return Err(e);
    }

    let lost = q.pending_keys()?.len() + q.lease_keys()?.len();
    Ok(QueueWorkerStats {
        completed: completed.load(Ordering::Relaxed),
        computed: computed.load(Ordering::Relaxed),
        cache_hits: cache_hits.load(Ordering::Relaxed),
        requeued: requeued.load(Ordering::Relaxed),
        parked: parked.load(Ordering::Relaxed),
        corrupt: corrupt.load(Ordering::Relaxed),
        store_errors: store_errors.load(Ordering::Relaxed),
        failed_total: q.failed_keys()?.len(),
        done_total: q.done_keys()?.len(),
        lost,
    })
}

/// Shared per-run counters (all workers increment the same atomics).
struct WorkerCounters<'a> {
    completed: &'a AtomicUsize,
    computed: &'a AtomicUsize,
    cache_hits: &'a AtomicUsize,
    requeued: &'a AtomicUsize,
    parked: &'a AtomicUsize,
    corrupt: &'a AtomicUsize,
    store_errors: &'a AtomicUsize,
}

/// One worker thread's claim/compute/steal loop.
fn drain_queue(
    q: &QueueDir,
    config: &QueueWorkerConfig,
    index: usize,
    held: &Mutex<HashSet<String>>,
    counters: &WorkerCounters<'_>,
) -> std::io::Result<()> {
    let mut backoff = BACKOFF_BASE;
    let mut jitter =
        SplitMix64::new(0x9e37_79b9_7f4a_7c15 ^ (std::process::id() as u64) << 17 ^ index as u64);
    let mut tracker = StaleTracker::new();
    let timeout = config.effective_timeout();
    loop {
        let mut progressed = false;

        // Claim pending cells, starting at a rotated offset so
        // concurrent workers fan out instead of piling on cell 0.
        let pending = q.pending_keys()?;
        if !pending.is_empty() {
            let start = (index + jitter.next_u64() as usize) % pending.len();
            for i in 0..pending.len() {
                let key = &pending[(start + i) % pending.len()];
                let Some(cell) = q.claim(key, &config.worker_id)? else {
                    continue;
                };
                held.lock().expect("held lock").insert(key.clone());
                process_cell(q, config, key, cell, held, counters)?;
                progressed = true;
            }
        }

        // Steal from the dead: watch other owners' leases and requeue
        // any whose heartbeat froze past the timeout.
        for key in q.lease_keys()? {
            if held.lock().expect("held lock").contains(&key) {
                continue; // our own live lease
            }
            let Some(lease) = q.read_lease(&key) else {
                tracker.forget(&key);
                continue;
            };
            if q.is_done(&key) {
                // Leftover of a completion that crashed mid-way.
                let _ = std::fs::remove_file(q.dir("leases").join(&key));
                tracker.forget(&key);
                continue;
            }
            if tracker.observe(&key, &lease.worker, lease.beat, timeout) {
                match q.requeue_stale(&key, (&lease.worker, lease.beat), config.retry_budget)? {
                    Requeue::Requeued => {
                        counters.requeued.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                    Requeue::Parked => {
                        counters.parked.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                    Requeue::Refreshed => {}
                }
                tracker.forget(&key);
            }
        }

        if progressed {
            backoff = BACKOFF_BASE;
            continue;
        }

        // Exit check, pending–leases–pending: a requeue in flight
        // during the first listing (lease gone, pending not yet
        // re-listed) is caught by the second pending listing.
        if q.pending_keys()?.is_empty()
            && q.lease_keys()?.is_empty()
            && q.pending_keys()?.is_empty()
        {
            return Ok(());
        }

        // Nothing claimable: back off (jittered 50–150%) and re-poll.
        let sleep = backoff.mul_f64(0.5 + jitter.unit_f64());
        std::thread::sleep(sleep);
        backoff = (backoff * 2).min(BACKOFF_CAP);
    }
}

/// Computes (or serves from cache) one claimed cell, then completes,
/// requeues, or parks it. Never returns without removing the key from
/// `held` and resolving the lease.
fn process_cell(
    q: &QueueDir,
    config: &QueueWorkerConfig,
    key: &str,
    cell: QueueCell,
    held: &Mutex<HashSet<String>>,
    counters: &WorkerCounters<'_>,
) -> std::io::Result<()> {
    enum Served {
        CacheHit,
        Computed,
    }
    let outcome: Result<Served, String> = (|| {
        let experiment = Experiment::decode_hex(&cell.hex)
            .map_err(|e| format!("undecodable experiment hex: {e:?}"))?;
        if cell_key(&experiment) != key {
            return Err(format!(
                "cell key mismatch: entry named {key} but its experiment hashes to {}",
                cell_key(&experiment)
            ));
        }
        match cache_fetch(&config.cache_dir, key) {
            CacheFetch::Hit(_) => return Ok(Served::CacheHit),
            CacheFetch::Corrupt => {
                counters.corrupt.fetch_add(1, Ordering::Relaxed);
                let _ = quarantine(&config.cache_dir, key);
            }
            CacheFetch::Miss => {}
        }
        // A panicking experiment must park the cell, not kill the
        // worker: catch it and convert to a retryable failure.
        let result = catch_unwind(AssertUnwindSafe(|| run_cell(&experiment)))
            .map_err(|p| format!("experiment panicked: {}", panic_message(&p)))?;
        // The cache is the queue's only output channel: a failed store
        // means the result was never delivered, so it is a cell
        // failure, not a warning.
        cache_store(&config.cache_dir, key, &experiment, &result).map_err(|e| {
            counters.store_errors.fetch_add(1, Ordering::Relaxed);
            format!("cache store failed: {e}")
        })?;
        Ok(Served::Computed)
    })();

    // Remove from `held` under the lock BEFORE touching queue files:
    // the heartbeat thread stamps under the same lock, so once we drop
    // the key it can never re-create the lease file after removal.
    held.lock().expect("held lock").remove(key);

    match outcome {
        Ok(kind) => {
            counters.completed.fetch_add(1, Ordering::Relaxed);
            match kind {
                Served::CacheHit => counters.cache_hits.fetch_add(1, Ordering::Relaxed),
                Served::Computed => counters.computed.fetch_add(1, Ordering::Relaxed),
            };
            q.complete(key, &config.worker_id)
        }
        Err(error) => {
            let retries = cell.retries + 1;
            if retries > config.retry_budget {
                counters.parked.fetch_add(1, Ordering::Relaxed);
                q.park(key, &error, &cell.hex)
            } else {
                counters.requeued.fetch_add(1, Ordering::Relaxed);
                let requeued = QueueCell {
                    retries,
                    worker: "-".to_string(),
                    beat: 0,
                    hex: cell.hex,
                };
                q.write_atomic("pending", key, &requeued.render())?;
                let _ = std::fs::remove_file(q.dir("leases").join(key));
                Ok(())
            }
        }
    }
}

/// Best-effort text of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What [`enqueue_points`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnqueueSummary {
    /// Cells newly added to `pending/`.
    pub enqueued: usize,
    /// Cells already verified in the sweep cache (marked done without
    /// queueing).
    pub already_cached: usize,
    /// Cells already pending/leased/done/failed in the queue.
    pub already_queued: usize,
    /// Corrupt cache cells quarantined during the pre-check (the cell
    /// is then enqueued for recomputation).
    pub corrupt: usize,
}

/// Populates a queue from a figure's sweep cells: every distinct
/// `(point, seed)` cell not already served by the cache (checked
/// against `config.cache_dir`) or present in the queue is enqueued;
/// cells the cache already holds get a `done/` marker immediately.
pub fn enqueue_points(
    q: &QueueDir,
    points: &[SweepPoint],
    config: &SweepConfig,
) -> std::io::Result<EnqueueSummary> {
    let mut summary = EnqueueSummary::default();
    let mut seen = HashSet::new();
    for point in points {
        for &seed in &config.seeds {
            let exp = point.experiment.with_seed(seed);
            let key = cell_key(&exp);
            if !seen.insert(key.clone()) {
                continue;
            }
            if let Some(dir) = config.cache_dir.as_deref() {
                match cache_fetch(dir, &key) {
                    CacheFetch::Hit(_) => {
                        if !q.is_done(&key) {
                            q.write_atomic("done", &key, "done pre-cached\n")?;
                        }
                        summary.already_cached += 1;
                        continue;
                    }
                    CacheFetch::Corrupt => {
                        summary.corrupt += 1;
                        let _ = quarantine(dir, &key);
                    }
                    CacheFetch::Miss => {}
                }
            }
            if q.enqueue_hex(&key, &exp.encode_hex())? {
                summary.enqueued += 1;
            } else {
                summary.already_queued += 1;
            }
        }
    }
    Ok(summary)
}

/// SplitMix64 — backoff jitter and claim-offset rotation only (never
/// simulation randomness).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::probe_cached;
    use gtt_workload::{RunSpec, ScenarioSpec, SchedulerKind};

    fn tiny_experiment(ppm: f64) -> Experiment {
        Experiment::new(ScenarioSpec::star(2), SchedulerKind::minimal(8)).with_run(RunSpec {
            traffic_ppm: ppm,
            warmup_secs: 20,
            measure_secs: 30,
            seed: 1,
            ..RunSpec::default()
        })
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gtt-queue-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn enqueue(q: &QueueDir, exp: &Experiment) -> String {
        let key = cell_key(exp);
        assert!(q.enqueue_hex(&key, &exp.encode_hex()).unwrap());
        key
    }

    #[test]
    fn claim_is_exclusive_and_enqueue_is_idempotent() {
        let q = QueueDir::open(scratch("claim")).unwrap();
        let exp = tiny_experiment(10.0);
        let key = enqueue(&q, &exp);
        assert!(!q.enqueue_hex(&key, &exp.encode_hex()).unwrap(), "dup");
        let cell = q.claim(&key, "w1").unwrap().expect("first claim wins");
        assert_eq!(cell.worker, "w1");
        assert_eq!(cell.beat, 1);
        assert_eq!(cell.hex, exp.encode_hex());
        assert!(q.claim(&key, "w2").unwrap().is_none(), "lease is exclusive");
        assert_eq!(q.pending_keys().unwrap().len(), 0);
        assert_eq!(q.lease_keys().unwrap(), vec![key.clone()]);
        // Completion: done marker first, lease removed.
        q.complete(&key, "w1").unwrap();
        assert!(q.is_done(&key));
        assert!(q.lease_keys().unwrap().is_empty());
        // A stale pending copy of a done cell is discarded on claim.
        let stale = QueueCell {
            retries: 1,
            worker: "-".into(),
            beat: 0,
            hex: exp.encode_hex(),
        };
        q.write_atomic("pending", &key, &stale.render()).unwrap();
        assert!(q.claim(&key, "w3").unwrap().is_none());
        assert!(q.pending_keys().unwrap().is_empty(), "dup pending removed");
    }

    #[test]
    fn stamping_bumps_the_heartbeat_monotonically() {
        let q = QueueDir::open(scratch("stamp")).unwrap();
        let key = enqueue(&q, &tiny_experiment(10.0));
        q.claim(&key, "w1").unwrap().unwrap();
        for expect in 2..6 {
            q.stamp_lease(&key).unwrap();
            assert_eq!(q.read_lease(&key).unwrap().beat, expect);
        }
        // Stamping a vanished lease is a no-op, not an error.
        q.complete(&key, "w1").unwrap();
        q.stamp_lease(&key).unwrap();
        assert!(q.read_lease(&key).is_none());
    }

    #[test]
    fn stale_lease_is_requeued_with_bumped_retries_then_parked() {
        let q = QueueDir::open(scratch("requeue")).unwrap();
        let key = enqueue(&q, &tiny_experiment(10.0));
        let budget = 2;
        for round in 1..=budget {
            let cell = q.claim(&key, "dead").unwrap().unwrap();
            assert_eq!(cell.retries, round - 1);
            // Observer saw (dead, 1) frozen: requeue.
            assert_eq!(
                q.requeue_stale(&key, ("dead", 1), budget).unwrap(),
                Requeue::Requeued
            );
            assert_eq!(q.pending_keys().unwrap(), vec![key.clone()]);
            assert!(q.lease_keys().unwrap().is_empty());
        }
        // Budget spent: the next expiry parks it with the error.
        q.claim(&key, "dead").unwrap().unwrap();
        assert_eq!(
            q.requeue_stale(&key, ("dead", 1), budget).unwrap(),
            Requeue::Parked
        );
        assert_eq!(q.failed_keys().unwrap(), vec![key.clone()]);
        let parked = std::fs::read_to_string(q.dir("failed").join(&key)).unwrap();
        assert!(parked.starts_with("# lease expired"), "{parked}");
        // The failed entry is a valid shard line: key, status, hex.
        let line = parked.lines().nth(1).unwrap();
        let mut fields = line.split_whitespace();
        assert_eq!(fields.next(), Some(key.as_str()));
        assert_eq!(fields.next(), Some("miss"));
        let hex = fields.next().unwrap();
        assert_eq!(cell_key(&Experiment::decode_hex(hex).unwrap()), key);
    }

    #[test]
    fn refreshed_lease_is_never_stolen() {
        let q = QueueDir::open(scratch("refresh")).unwrap();
        let key = enqueue(&q, &tiny_experiment(10.0));
        q.claim(&key, "alive").unwrap().unwrap();
        q.stamp_lease(&key).unwrap(); // beat now 2

        // Observer acted on the stale (alive, 1) observation: no theft.
        assert_eq!(
            q.requeue_stale(&key, ("alive", 1), 3).unwrap(),
            Requeue::Refreshed
        );
        assert_eq!(q.lease_keys().unwrap(), vec![key.clone()]);
        assert_eq!(q.read_lease(&key).unwrap().beat, 2);
    }

    #[test]
    fn stale_tracker_requires_a_frozen_beat_for_the_full_window() {
        let mut t = StaleTracker::new();
        let timeout = Duration::from_millis(40);
        assert!(!t.observe("k", "w", 1, timeout), "first sight arms only");
        std::thread::sleep(Duration::from_millis(50));
        assert!(t.observe("k", "w", 1, timeout), "frozen past timeout");
        // A re-stamp resets the window.
        assert!(!t.observe("k", "w", 2, timeout), "fresh beat re-arms");
        assert!(!t.observe("k", "w", 2, Duration::from_secs(60)));
        t.forget("k");
        assert!(!t.observe("k", "w", 2, timeout), "forgotten = first sight");
    }

    #[test]
    fn torn_pending_entry_is_parked_not_looped() {
        let q = QueueDir::open(scratch("torn")).unwrap();
        let key = "00112233445566778899aabbccddeeff";
        q.write_atomic("pending", key, "not a queue cell\n")
            .unwrap();
        assert!(q.claim(key, "w1").unwrap().is_none());
        assert_eq!(q.failed_keys().unwrap(), vec![key.to_string()]);
        assert!(q.pending_keys().unwrap().is_empty());
        assert!(q.lease_keys().unwrap().is_empty());
    }

    #[test]
    fn worker_drains_a_queue_end_to_end_and_results_land_in_the_cache() {
        let root = scratch("drain");
        let q = QueueDir::open(root.join("queue")).unwrap();
        let cache = root.join("cache");
        let exps = [tiny_experiment(10.0), tiny_experiment(20.0)];
        for exp in &exps {
            enqueue(&q, exp);
        }
        let mut config = QueueWorkerConfig::new(q.root(), &cache);
        config.jobs = 2;
        config.heartbeat = Duration::from_millis(50);
        let stats = run_queue_worker(&config).unwrap();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.computed, 2);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.done_total, 2);
        assert_eq!(stats.failed_total, 0);
        assert_eq!(stats.lost, 0);
        for exp in &exps {
            assert!(probe_cached(&cache, exp), "result delivered to cache");
        }
        // Re-enqueueing after completion is a no-op (done markers win)…
        for exp in &exps {
            assert!(!q.enqueue_hex(&cell_key(exp), &exp.encode_hex()).unwrap());
        }
        // …and a fresh queue over a warm cache is served without
        // simulating.
        let q2 = QueueDir::open(root.join("queue2")).unwrap();
        for exp in &exps {
            enqueue(&q2, exp);
        }
        let mut config2 = QueueWorkerConfig::new(q2.root(), &cache);
        config2.jobs = 1;
        let stats2 = run_queue_worker(&config2).unwrap();
        assert_eq!(stats2.completed, 2);
        assert_eq!(stats2.cache_hits, 2);
        assert_eq!(stats2.computed, 0);
    }

    #[test]
    fn poisoned_cell_is_parked_after_its_retry_budget() {
        let root = scratch("poison");
        let q = QueueDir::open(root.join("queue")).unwrap();
        // A syntactically valid queue cell whose hex is not a valid
        // experiment encoding: every claim fails, so the cell must end
        // up parked after budget+1 attempts — not loop forever, not
        // kill the worker.
        let key = "ffeeddccbbaa99887766554433221100";
        let poison = QueueCell {
            retries: 0,
            worker: "-".into(),
            beat: 0,
            hex: "deadbeef".into(),
        };
        q.write_atomic("pending", key, &poison.render()).unwrap();
        let mut config = QueueWorkerConfig::new(q.root(), root.join("cache"));
        config.jobs = 1;
        config.retry_budget = 2;
        let stats = run_queue_worker(&config).unwrap();
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.failed_total, 1);
        assert_eq!(stats.requeued, 2, "budget-many requeues before parking");
        assert_eq!(stats.parked, 1);
        assert_eq!(stats.lost, 0);
        let parked = std::fs::read_to_string(q.dir("failed").join(key)).unwrap();
        assert!(parked.contains("undecodable"), "{parked}");
    }

    #[test]
    fn enqueue_points_skips_cached_cells_and_marks_them_done() {
        let root = scratch("enqueue-points");
        let q = QueueDir::open(root.join("queue")).unwrap();
        let cache = root.join("cache");
        let warm = tiny_experiment(10.0);
        crate::sweep::ensure_cached(&cache, &warm.with_seed(1));
        let points = vec![
            SweepPoint {
                x_label: "10".into(),
                experiment: tiny_experiment(10.0),
            },
            SweepPoint {
                x_label: "20".into(),
                experiment: tiny_experiment(20.0),
            },
        ];
        let config = SweepConfig {
            seeds: vec![1, 2],
            threads: 1,
            ..SweepConfig::default()
        }
        .cached(cache);
        let summary = enqueue_points(&q, &points, &config).unwrap();
        assert_eq!(summary.already_cached, 1, "the warm cell skips the queue");
        assert_eq!(summary.enqueued, 3);
        assert_eq!(summary.already_queued, 0);
        assert_eq!(q.pending_keys().unwrap().len(), 3);
        assert_eq!(q.done_keys().unwrap().len(), 1);
        assert!(q.is_done(&cell_key(&warm.with_seed(1))));
        // Second enqueue is fully idempotent.
        let again = enqueue_points(&q, &points, &config).unwrap();
        assert_eq!(again.enqueued, 0);
        assert_eq!(again.already_queued, 3);
        assert_eq!(again.already_cached, 1);
    }
}
