//! Shared command-line front end of the figure binaries.
//!
//! Every figure binary (`fig8`, `fig9`, `fig10`, `fig_noise`) is a thin
//! wrapper over [`figure_main`]: it contributes its [`FigureSweep`]s
//! (table name, x axis, declarative cell list) and this module supplies
//! one strict, uniform flag surface:
//!
//! ```text
//! fig8 [--quick] [--no-cache | --cache-only] [--cache-dir DIR]
//!      [--jobs N] [--pcap PATH] [--list | --enqueue QUEUE_DIR] [--help]
//! ```
//!
//! Unknown flags, missing values and conflicting modes print the usage
//! to stderr and exit with status 2 — never a panic, and never a flag
//! value silently eaten by the next flag.

use std::path::PathBuf;
use std::process::exit;

use crate::queue::{enqueue_points, QueueDir};
use crate::sweep::{render_shard_list, run_sweep, SweepConfig, SweepPoint};
use crate::table::render_figure_tables;

/// One sub-figure sweep a binary renders: its table label, x-axis name
/// and declarative cell list.
#[derive(Debug, Clone)]
pub struct FigureSweep {
    /// Table label (`"8"`, `"noise-depth"`, …) for
    /// [`render_figure_tables`].
    pub table: &'static str,
    /// Human-readable x-axis name passed to [`run_sweep`].
    pub x_axis: &'static str,
    /// The sweep's points.
    pub points: Vec<SweepPoint>,
}

/// Parses `--jobs N` from an argv slice: `0` (auto — one worker per
/// available core) when the flag is absent. Shared by every binary that
/// fans simulation out over threads (`fig*`, `bench_engine`,
/// `sweep_worker`). A missing or non-positive value prints an error to
/// stderr and exits with status 2 — a silently defaulted job count
/// would hide a typo in a benchmark command line.
pub fn jobs_from(args: &[String]) -> usize {
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("error: --jobs needs a positive integer");
                exit(2);
            }
        },
        None => 0,
    }
}

/// What a figure binary was asked to do.
enum Mode {
    /// Simulate (or serve from cache) and print the tables.
    Run,
    /// Print `<key> <hit|miss> <hex>` shard lines; simulate nothing.
    List,
    /// Populate a work-stealing queue directory with the cells.
    Enqueue(PathBuf),
}

/// Parsed figure command line.
struct FigureArgs {
    config: SweepConfig,
    mode: Mode,
    /// `--pcap PATH`: after the tables, re-run the figure's first cell
    /// (first sweep, first point, first configured seed) with a frame
    /// tap and write the capture here.
    pcap: Option<PathBuf>,
}

fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--quick] [--no-cache | --cache-only] [--cache-dir DIR] \
         [--jobs N] [--pcap PATH] [--list | --enqueue QUEUE_DIR] [--help]"
    )
}

fn help(bin: &str) -> String {
    format!(
        "{}\n\n\
         Renders the figure's six series tables, averaged over seeds.\n\n\
         Options:\n  \
         --quick              average 2 seeds instead of 5\n  \
         --no-cache           ignore the persistent sweep cache entirely\n  \
         --cache-only         render from the cache without simulating;\n                       \
         absent cells are reported per point and shown as n/a\n                       \
         (exit status 1 if any cell was missing)\n  \
         --cache-dir DIR      sweep cache location (default target/sweep-cache)\n  \
         --jobs N             worker threads (default: one per core)\n  \
         --pcap PATH          also write an IEEE 802.15.4 pcap trace of the\n                       \
         figure's first cell (first point, first seed) to PATH;\n                       \
         deterministic — same binary and flags, same bytes\n  \
         --list               print one '<key> <hit|miss> <hex experiment>' line\n                       \
         per cell, without simulating (sweep_worker shard input)\n  \
         --enqueue QUEUE_DIR  add every cell not already cached to a\n                       \
         work-stealing queue directory (see sweep_worker --queue)\n  \
         --help               this text\n",
        usage(bin)
    )
}

/// Prints `message` + usage to stderr and exits with status 2.
fn bad_usage(bin: &str, message: &str) -> ! {
    eprintln!("error: {message}\n{}", usage(bin));
    exit(2);
}

/// Strictly parses a figure binary's argv (no positionals allowed).
fn parse_figure_args(bin: &str) -> FigureArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut no_cache = false;
    let mut cache_only = false;
    let mut list = false;
    let mut enqueue: Option<PathBuf> = None;
    let mut cache_dir = String::from("target/sweep-cache");
    let mut jobs = 0usize;
    let mut pcap: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        // A flag value may not itself look like a flag: `--cache-dir
        // --quick` is a forgotten value, not a directory named --quick.
        let value_of = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            match args.get(*i) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => bad_usage(bin, &format!("{flag} needs a value")),
            }
        };
        match args[i].as_str() {
            "--quick" => quick = true,
            "--no-cache" => no_cache = true,
            "--cache-only" => cache_only = true,
            "--list" => list = true,
            "--help" | "-h" => {
                print!("{}", help(bin));
                exit(0);
            }
            "--cache-dir" => cache_dir = value_of(&mut i, "--cache-dir"),
            "--enqueue" => enqueue = Some(PathBuf::from(value_of(&mut i, "--enqueue"))),
            "--pcap" => pcap = Some(PathBuf::from(value_of(&mut i, "--pcap"))),
            "--jobs" => match value_of(&mut i, "--jobs").parse::<usize>() {
                Ok(n) if n > 0 => jobs = n,
                _ => bad_usage(bin, "--jobs needs a positive integer"),
            },
            flag if flag.starts_with("--") => bad_usage(bin, &format!("unknown flag {flag}")),
            positional => bad_usage(bin, &format!("unexpected argument {positional}")),
        }
        i += 1;
    }

    if no_cache && cache_only {
        bad_usage(bin, "--no-cache and --cache-only contradict each other");
    }
    if list && enqueue.is_some() {
        bad_usage(bin, "--list and --enqueue are mutually exclusive");
    }
    if no_cache && enqueue.is_some() {
        bad_usage(bin, "--enqueue needs the cache (drop --no-cache)");
    }
    if pcap.is_some() && (list || enqueue.is_some()) {
        bad_usage(bin, "--pcap only applies when the figure actually runs");
    }
    if pcap.is_some() && cache_only {
        // --cache-only promises "no simulation"; a trace is always a
        // fresh simulation (the cache stores reports, not frames).
        bad_usage(bin, "--pcap re-simulates a cell; drop --cache-only");
    }

    let mut config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    config.threads = jobs;
    config.cache_only = cache_only;
    if !no_cache {
        config = config.cached(cache_dir);
    }
    let mode = match enqueue {
        Some(dir) => Mode::Enqueue(dir),
        None if list => Mode::List,
        None => Mode::Run,
    };
    FigureArgs { config, mode, pcap }
}

/// The whole `main` of a figure binary: parses the uniform flag set,
/// then lists, enqueues, or runs + renders the given sweeps.
///
/// In run mode the tables go to stdout and a cache summary to stderr.
/// With `--cache-only`, cells absent from the cache are reported per
/// point on stderr, rendered as `n/a`, and make the process exit 1 —
/// a partially-warm cache yields a partial figure, never a panic.
pub fn figure_main(bin: &str, sweeps: Vec<FigureSweep>) {
    let FigureArgs { config, mode, pcap } = parse_figure_args(bin);

    // `--pcap` traces the figure's first cell: first sweep, first
    // point, first configured seed. Captured up front because run mode
    // consumes the sweeps.
    let trace_cell = pcap.map(|path| {
        let point = sweeps
            .first()
            .and_then(|s| s.points.first())
            .unwrap_or_else(|| bad_usage(bin, "--pcap needs a figure with at least one cell"));
        let seed = *config.seeds.first().expect("sweep config has seeds");
        (point.experiment.with_seed(seed), path)
    });

    match mode {
        Mode::List => {
            let points: Vec<SweepPoint> =
                sweeps.into_iter().flat_map(|sweep| sweep.points).collect();
            print!("{}", render_shard_list(&points, &config));
        }
        Mode::Enqueue(dir) => {
            let points: Vec<SweepPoint> =
                sweeps.into_iter().flat_map(|sweep| sweep.points).collect();
            let queue = QueueDir::open(&dir).unwrap_or_else(|e| {
                eprintln!("error: cannot open queue {}: {e}", dir.display());
                exit(1);
            });
            let summary = enqueue_points(&queue, &points, &config).unwrap_or_else(|e| {
                eprintln!("error: enqueue into {} failed: {e}", dir.display());
                exit(1);
            });
            eprintln!(
                "{bin}: enqueued {} cells into {} ({} already cached, {} already queued, \
                 {} corrupt quarantined)",
                summary.enqueued,
                dir.display(),
                summary.already_cached,
                summary.already_queued,
                summary.corrupt
            );
        }
        Mode::Run => {
            let seeds = config.seeds.len();
            let mut hits = 0;
            let mut misses = 0;
            let mut corrupt = 0;
            let mut store_errors = 0;
            let mut missing = 0;
            let mut first_store_error: Option<String> = None;
            for sweep in sweeps {
                eprintln!("running {bin} sweep {} ({seeds} seeds/point)…", sweep.table);
                let results = run_sweep(sweep.x_axis, sweep.points, &config);
                print!("{}", render_figure_tables(sweep.table, &results));
                for p in &results.points {
                    if p.missing > 0 {
                        eprintln!(
                            "  missing {}/{seeds} cells: {} at {}={}",
                            p.missing, p.scheduler, sweep.x_axis, p.x_label
                        );
                    }
                }
                hits += results.cache_hits;
                misses += results.cache_misses;
                corrupt += results.corrupt_cells;
                store_errors += results.store_errors;
                missing += results.missing_cells;
                if first_store_error.is_none() {
                    first_store_error = results.first_store_error;
                }
            }
            eprintln!(
                "sweep cache: {hits} hits, {misses} misses, {corrupt} corrupt, \
                 {store_errors} store errors, {missing} missing"
            );
            if let Some((experiment, path)) = trace_cell {
                // A dedicated traced re-run of the first cell: the
                // sweep above serves reports (possibly from cache);
                // the trace is always simulated fresh so its bytes are
                // a pure function of the experiment, never of cache
                // state. Reports are byte-identical with the tap on.
                eprintln!("{bin}: tracing first cell to {}…", path.display());
                let exp = experiment.with_trace(&path);
                let _report = exp.run();
                eprintln!(
                    "{bin}: wrote {} bytes of pcap",
                    std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
                );
            }
            if store_errors > 0 {
                eprintln!(
                    "warning: {store_errors} cache write-backs failed (first: {})",
                    first_store_error.as_deref().unwrap_or("unknown")
                );
            }
            if missing > 0 {
                eprintln!(
                    "warning: {missing} cells absent from the cache — figure is partial \
                     (n/a cells); finish the queue workers and re-render"
                );
                exit(1);
            }
        }
    }
}
