//! Paper-style series tables.

use gtt_metrics::FigureRow;

use crate::sweep::SweepResults;

/// Extracts one series value from a six-series row.
type SeriesAccessor = fn(&FigureRow) -> f64;

/// The six sub-figures of every evaluation figure, in paper order.
const SERIES: [(&str, SeriesAccessor); 6] = [
    ("Packet delivery ratio (%)", |r| r.pdr_percent),
    ("End-to-end delay (ms)", |r| r.delay_ms),
    ("Packet loss (packet/minute)", |r| r.loss_per_min),
    ("Radio duty cycle (%)", |r| r.duty_cycle_percent),
    ("Queue loss (packets/node)", |r| r.queue_loss),
    ("Received packets per minute", |r| r.received_per_min),
];

/// Renders the figure's six series as sub-tables `(a)`–`(f)`, matching
/// the layout of the paper's Figs. 8–10.
pub fn render_figure_tables(figure: &str, results: &SweepResults) -> String {
    let mut out = String::new();
    let xs = results.x_labels();
    let schedulers = results.schedulers();

    for (idx, (title, extract)) in SERIES.iter().enumerate() {
        let sub = (b'a' + idx as u8) as char;
        out.push_str(&format!("## Fig. {figure}{sub} — {title}\n"));
        out.push_str(&format!("{:<12}", results.x_axis));
        for x in &xs {
            out.push_str(&format!(" {x:>9}"));
        }
        out.push('\n');
        for sched in &schedulers {
            out.push_str(&format!("{sched:<12}"));
            for x in &xs {
                match results.get(sched, x) {
                    // A point with no rows is a cache-only render whose
                    // cells were all absent: show the gap explicitly
                    // instead of a fabricated 0.00.
                    Some(p) if p.rows.is_empty() => out.push_str(&format!(" {:>9}", "n/a")),
                    Some(p) => out.push_str(&format!(" {:>9.2}", extract(&p.mean))),
                    None => out.push_str(&format!(" {:>9}", "-")),
                }
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::PointResult;

    fn fake_results() -> SweepResults {
        let row = |pdr: f64| FigureRow {
            pdr_percent: pdr,
            delay_ms: 100.0,
            loss_per_min: 1.0,
            duty_cycle_percent: 9.0,
            queue_loss: 0.0,
            received_per_min: 400.0,
        };
        SweepResults {
            cache_hits: 0,
            cache_misses: 0,
            corrupt_cells: 0,
            store_errors: 0,
            first_store_error: None,
            missing_cells: 0,
            x_axis: "traffic".into(),
            points: vec![
                PointResult {
                    x_label: "30".into(),
                    scheduler: "gt-tsch",
                    mean: row(99.0),
                    rows: vec![row(99.0)],
                    join_ratio: 1.0,
                    generated: 100.0,
                    missing: 0,
                },
                PointResult {
                    x_label: "30".into(),
                    scheduler: "orchestra",
                    mean: row(97.0),
                    rows: vec![row(97.0)],
                    join_ratio: 1.0,
                    generated: 100.0,
                    missing: 0,
                },
            ],
        }
    }

    #[test]
    fn renders_six_subtables_with_all_schedulers() {
        let text = render_figure_tables("8", &fake_results());
        for sub in ["8a", "8b", "8c", "8d", "8e", "8f"] {
            assert!(text.contains(&format!("Fig. {sub}")), "missing {sub}");
        }
        assert!(text.contains("gt-tsch"));
        assert!(text.contains("orchestra"));
        assert!(text.contains("99.00"));
        assert!(text.contains("97.00"));
    }

    /// Cache-only renders with absent cells show `n/a`, never a
    /// fabricated zero row.
    #[test]
    fn rowless_points_render_as_na() {
        let mut results = fake_results();
        results.points[1].rows.clear();
        results.points[1].mean = FigureRow::default();
        results.points[1].missing = 1;
        let text = render_figure_tables("8", &results);
        assert!(text.contains("n/a"), "{text}");
        assert!(text.contains("99.00"), "present point still rendered");
        // Every orchestra cell is n/a — the zeroed mean never leaks.
        let orchestra_rows = text.lines().filter(|l| l.starts_with("orchestra"));
        for line in orchestra_rows {
            assert!(line.contains("n/a"), "fabricated value: {line}");
            assert!(!line.contains("0.00"), "fabricated value: {line}");
        }
    }

    #[test]
    fn missing_points_render_as_dash() {
        let mut results = fake_results();
        results.points.remove(1); // drop orchestra but keep it unknown
        let text = render_figure_tables("9", &results);
        assert!(
            !text.contains("orchestra"),
            "only present schedulers listed"
        );
    }
}
