//! Parallel sweep execution with a persistent per-cell result cache and
//! multi-process sharding support.
//!
//! Every cell of a sweep matrix is a pure function of one
//! [`Experiment`] value (scenario spec, scheduler configuration, run
//! spec incl. seed, overlay timeline), so re-running a figure only
//! needs to simulate the cells whose experiment changed. With
//! [`SweepConfig::cache_dir`] set, each finished cell is written to one
//! small file keyed by [`cell_key`] — a 128-bit FNV digest of the
//! experiment's *canonical byte encoding*
//! ([`Experiment::encode`]), which embeds the encoding schema version,
//! so a schema bump invalidates every old key by construction. Values
//! are stored as exact `f64` bit patterns, so cached and fresh runs
//! average to byte-identical rows. The serialization is hand-rolled
//! hex-on-text because the vendored `serde` stand-in is marker-only
//! (see `crates/compat`).
//!
//! Cell files end in a 128-bit FNV content checksum, so the loader can
//! tell three states apart: a *hit* (schema + checksum verify), a
//! *miss* (no file, or a file written by a different cache schema
//! version), and a *corrupt* cell (bytes present but torn, truncated or
//! bit-flipped). Corrupt cells are never served and never silently
//! treated as a miss: they are quarantined to a `corrupt/` subdirectory
//! and counted in [`SweepResults::corrupt_cells`]. Likewise cache
//! *writes* that fail are counted ([`SweepResults::store_errors`]) and
//! the first error is kept for the harness to print, instead of being
//! silently dropped.
//!
//! The same keys and encodings power cross-process sharding: figure
//! binaries dump their cells as one hex-encoded experiment per line
//! (`--list`, rendered by [`render_shard_list`]), any number of
//! `sweep_worker` processes fill the shared cache directory from
//! disjoint slices of those lines ([`ensure_cached`]) — or steal work
//! from a fault-tolerant on-disk queue (see [`crate::queue`]) — and the
//! final figure run is then 100% cache hits. A figure can also render
//! from a *partially* warm cache ([`SweepConfig::cache_only`]): missing
//! cells are counted per point and rendered as explicit `n/a` table
//! cells instead of being simulated (or panicking).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crossbeam::thread;
use gtt_metrics::{FigureRow, Summary};
use gtt_workload::Experiment;

/// Bump when the cached *quantities* or the simulator's observable
/// behavior change — every old cell file then fails this header check
/// and is recomputed. (Key collisions across schema versions are
/// impossible for *input* changes: the cache key hashes the canonical
/// experiment encoding, whose own [`gtt_workload::ENCODING_VERSION`]
/// covers layout changes. This constant covers the other half — same
/// inputs, different simulator.) `--no-cache` (or deleting
/// `target/sweep-cache`) forces fresh runs, and CI's figure smoke
/// always passes `--no-cache` for this reason.
// v4: cell files carry a trailing fnv128 content checksum; torn or
// bit-flipped cells are quarantined instead of parsed.
const CACHE_SCHEMA: &str = "gtt-sweep-cache v4";

/// Shared prefix of every [`CACHE_SCHEMA`] generation. A first line
/// with this prefix but a different version is an *expected* stale cell
/// (a plain miss); any other first line means the file is damaged.
const CACHE_SCHEMA_FAMILY: &str = "gtt-sweep-cache ";

/// Subdirectory of the cache dir where damaged cells are parked.
const QUARANTINE_SUBDIR: &str = "corrupt";

/// One (x-value, experiment) point of a sweep. The per-seed cells are
/// the point's experiment re-seeded from [`SweepConfig::seeds`].
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sweep coordinate ("30", "75", … — the figure's x axis).
    pub x_label: String,
    /// The experiment (its `run.seed` is overwritten per repetition).
    pub experiment: Experiment,
}

/// Sweep-wide settings.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = one per available core, capped at the
    /// number of runs).
    pub threads: usize,
    /// Directory of the persistent per-cell result cache (`None`
    /// disables caching). The figure binaries default to
    /// `target/sweep-cache`.
    pub cache_dir: Option<PathBuf>,
    /// Render-only mode: cells absent from the cache are *not*
    /// simulated — they are counted per point
    /// ([`PointResult::missing`]) and rendered as `n/a`. This is how a
    /// figure is assembled from a partially-warm cache while queue
    /// workers are still filling it (or after some cells were parked in
    /// `failed/`).
    pub cache_only: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seeds: vec![1, 2, 3, 4, 5],
            threads: 0,
            cache_dir: None,
            cache_only: false,
        }
    }
}

impl SweepConfig {
    /// A fast configuration for smoke tests (2 seeds).
    pub fn quick() -> Self {
        SweepConfig {
            seeds: vec![1, 2],
            ..SweepConfig::default()
        }
    }

    /// Enables the persistent result cache under `dir`.
    pub fn cached(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }
}

/// Result of one sweep point, averaged over seeds.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The sweep coordinate.
    pub x_label: String,
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Seed-averaged six-series row. Meaningless (all zero) when
    /// [`rows`](Self::rows) is empty — the table renderer prints `n/a`
    /// for such points.
    pub mean: FigureRow,
    /// Per-seed rows (for dispersion). May hold fewer rows than
    /// configured seeds — or none — in cache-only mode.
    pub rows: Vec<FigureRow>,
    /// Mean join ratio across seeds (sanity signal).
    pub join_ratio: f64,
    /// Mean packets generated.
    pub generated: f64,
    /// Cells of this point that could not be served in cache-only mode
    /// (plain misses and quarantined corrupt cells). Always 0 when
    /// simulation is allowed.
    pub missing: usize,
}

impl PointResult {
    /// 95% confidence half-width of the PDR across seeds (`NaN` when
    /// the point has no rows at all).
    pub fn pdr_ci95(&self) -> f64 {
        if self.rows.is_empty() {
            return f64::NAN;
        }
        self.rows
            .iter()
            .map(|r| r.pdr_percent)
            .collect::<Summary>()
            .ci95_half_width()
    }
}

/// All results of a figure sweep.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Human-readable name of the x axis ("traffic (ppm/node)", …).
    pub x_axis: String,
    /// Results in input order.
    pub points: Vec<PointResult>,
    /// Cells served from the persistent cache.
    pub cache_hits: usize,
    /// Cells that had to be simulated (and were written back when
    /// caching is enabled). Does *not* include corrupt cells — those
    /// are counted separately so damage is never reported as a plain
    /// miss.
    pub cache_misses: usize,
    /// Damaged cache cells (torn/truncated/bit-flipped) that were
    /// quarantined to `corrupt/` instead of being served or silently
    /// recounted as misses.
    pub corrupt_cells: usize,
    /// Cache write-backs that failed (the cells themselves were still
    /// used for the figure; only persistence was lost).
    pub store_errors: usize,
    /// The first cache write-back error, for a one-line warning.
    pub first_store_error: Option<String>,
    /// Total cells skipped in cache-only mode (sum of per-point
    /// [`PointResult::missing`]).
    pub missing_cells: usize,
}

impl SweepResults {
    /// The distinct x labels in first-appearance order.
    pub fn x_labels(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.x_label) {
                seen.push(p.x_label.clone());
            }
        }
        seen
    }

    /// The distinct scheduler names in first-appearance order.
    pub fn schedulers(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.scheduler) {
                seen.push(p.scheduler);
            }
        }
        seen
    }

    /// The point for (scheduler, x), if present.
    pub fn get(&self, scheduler: &str, x: &str) -> Option<&PointResult> {
        self.points
            .iter()
            .find(|p| p.scheduler == scheduler && p.x_label == x)
    }
}

/// One cached cell: what [`PointResult`] needs per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CellResult {
    pub(crate) row: FigureRow,
    pub(crate) join_ratio: f64,
    pub(crate) generated: u64,
}

/// FNV-1a over `bytes`, from an arbitrary offset basis (two different
/// bases give two independent 64-bit digests — 128 bits of key).
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// 128-bit FNV-1a digest as 32 hex chars (cache keys *and* the cell
/// files' trailing content checksum).
fn key_of_bytes(encoded: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(encoded, 0xcbf2_9ce4_8422_2325),
        fnv1a(encoded, 0x9ae1_6a3b_2f90_404f),
    )
}

/// The cache key of one cell: a 128-bit FNV-1a digest of the
/// experiment's canonical byte encoding. Stable across processes,
/// hosts and runs — the canonical bytes contain every input that can
/// affect the simulation (and the encoding schema version), nothing
/// else.
pub fn cell_key(experiment: &Experiment) -> String {
    key_of_bytes(&experiment.encode())
}

/// What [`cache_fetch`] found for one key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum CacheFetch {
    /// Schema and checksum verified; the value is trustworthy.
    Hit(CellResult),
    /// No cell (no file, an unreadable file, or a cell written by a
    /// different — older or newer — cache schema version).
    Miss,
    /// Bytes exist but are damaged: truncated, torn, bit-flipped, or
    /// not a cache cell at all. Must be quarantined, never recomputed
    /// as if it were a plain miss.
    Corrupt,
}

/// Classifies the cached cell under `dir/key` without side effects.
pub(crate) fn cache_fetch(dir: &Path, key: &str) -> CacheFetch {
    // Read errors of any kind are a miss, not corruption: "corrupt"
    // means bytes were present and wrong. An unreadable cell heals
    // itself when the recomputed value is renamed over it.
    let Ok(text) = std::fs::read_to_string(dir.join(key)) else {
        return CacheFetch::Miss;
    };
    parse_cell(&text)
}

/// Parses one cell file body (schema line, human line, values line,
/// checksum line).
fn parse_cell(text: &str) -> CacheFetch {
    let lines: Vec<&str> = text.lines().collect();
    let Some(&schema) = lines.first() else {
        return CacheFetch::Corrupt; // empty file
    };
    if schema != CACHE_SCHEMA {
        return if schema.starts_with(CACHE_SCHEMA_FAMILY) {
            CacheFetch::Miss // a different cache generation — expected
        } else {
            CacheFetch::Corrupt
        };
    }
    if lines.len() != 4 {
        return CacheFetch::Corrupt; // truncated or trailing garbage
    }
    let body = format!("{}\n{}\n{}\n", lines[0], lines[1], lines[2]);
    let Some(digest) = lines[3].strip_prefix("fnv128 ") else {
        return CacheFetch::Corrupt;
    };
    if digest != key_of_bytes(body.as_bytes()) {
        return CacheFetch::Corrupt; // bit flip somewhere in the body
    }
    fn next_f64(values: &mut std::str::SplitWhitespace<'_>) -> Option<f64> {
        let bits = u64::from_str_radix(values.next()?, 16).ok()?;
        Some(f64::from_bits(bits))
    }
    let parsed = (|| {
        let mut values = lines[2].split_whitespace();
        let row = FigureRow {
            pdr_percent: next_f64(&mut values)?,
            delay_ms: next_f64(&mut values)?,
            loss_per_min: next_f64(&mut values)?,
            duty_cycle_percent: next_f64(&mut values)?,
            queue_loss: next_f64(&mut values)?,
            received_per_min: next_f64(&mut values)?,
        };
        let join_ratio = next_f64(&mut values)?;
        let generated = u64::from_str_radix(values.next()?, 16).ok()?;
        Some(CellResult {
            row,
            join_ratio,
            generated,
        })
    })();
    match parsed {
        Some(cell) => CacheFetch::Hit(cell),
        // Checksum verified but the values don't parse: still damage
        // (a checksum collision or a writer bug), never a silent miss.
        None => CacheFetch::Corrupt,
    }
}

/// Moves a damaged cell out of the way, to `dir/corrupt/key`, so it is
/// preserved for inspection and can never be fetched again. Returns the
/// quarantine path.
pub(crate) fn quarantine(dir: &Path, key: &str) -> std::io::Result<PathBuf> {
    let qdir = dir.join(QUARANTINE_SUBDIR);
    std::fs::create_dir_all(&qdir)?;
    let dst = qdir.join(key);
    std::fs::rename(dir.join(key), &dst)?;
    Ok(dst)
}

/// Writes a finished cell through a per-process temp file + rename so
/// concurrent workers filling the same directory can never expose a
/// half-written cell. The body ends in a 128-bit FNV content checksum
/// that [`cache_fetch`] verifies. IO errors are returned (and counted
/// by callers into [`SweepResults::store_errors`]) — the cache is an
/// optimization for figure runs, but queue workers treat a failed store
/// as a failed cell, because the cache is their only output channel.
pub(crate) fn cache_store(
    dir: &Path,
    key: &str,
    experiment: &Experiment,
    c: &CellResult,
) -> std::io::Result<()> {
    let r = &c.row;
    let body = format!(
        "{CACHE_SCHEMA}\n{} {} seed {}\n{:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:x}\n",
        experiment.scenario.name(),
        experiment.scheduler.name(),
        experiment.run.seed,
        r.pdr_percent.to_bits(),
        r.delay_ms.to_bits(),
        r.loss_per_min.to_bits(),
        r.duty_cycle_percent.to_bits(),
        r.queue_loss.to_bits(),
        r.received_per_min.to_bits(),
        c.join_ratio.to_bits(),
        c.generated,
    );
    let text = format!("{body}fnv128 {}\n", key_of_bytes(body.as_bytes()));
    let tmp = dir.join(format!("{key}.tmp-{}", std::process::id()));
    let write = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(text.as_bytes()))
        .and_then(|()| std::fs::rename(&tmp, dir.join(key)));
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Simulates one cell.
pub(crate) fn run_cell(experiment: &Experiment) -> CellResult {
    let report = experiment.run();
    CellResult {
        row: report.row,
        join_ratio: report.join_ratio,
        generated: report.generated,
    }
}

/// True if `experiment`'s cell is already present (and verified) in the
/// cache under `dir`. Never simulates, never mutates the cache.
pub fn probe_cached(dir: &Path, experiment: &Experiment) -> bool {
    matches!(cache_fetch(dir, &cell_key(experiment)), CacheFetch::Hit(_))
}

/// Guarantees `experiment`'s cell exists in the cache under `dir`,
/// simulating and storing it on a miss. Returns `true` when the cell
/// was already cached — the `sweep_worker` shard-mode primitive. A
/// corrupt cell is quarantined (with a warning) and recomputed; a
/// failed store is warned about but does not abort the shard.
///
/// # Panics
///
/// Panics if `dir` cannot be created.
pub fn ensure_cached(dir: &Path, experiment: &Experiment) -> bool {
    std::fs::create_dir_all(dir).expect("cache dir must be creatable");
    let key = cell_key(experiment);
    match cache_fetch(dir, &key) {
        CacheFetch::Hit(_) => return true,
        CacheFetch::Corrupt => {
            let _ = quarantine(dir, &key);
            eprintln!("sweep cache: quarantined corrupt cell {key}");
        }
        CacheFetch::Miss => {}
    }
    let cell = run_cell(experiment);
    if let Err(e) = cache_store(dir, &key, experiment, &cell) {
        eprintln!("sweep cache: failed to store cell {key}: {e}");
    }
    false
}

/// Renders a sweep's cells as shard-file lines without simulating
/// anything: one line per distinct cell —
/// `<key> <hit|miss> <hex-encoded experiment>` — against
/// `config.cache_dir` (no cache dir ⇒ everything is a miss). Cells
/// shared between points (e.g. a clean column reused across figures)
/// are emitted once.
pub fn render_shard_list(points: &[SweepPoint], config: &SweepConfig) -> String {
    let mut out = String::new();
    let mut seen = std::collections::BTreeSet::new();
    for point in points {
        for &seed in &config.seeds {
            let exp = point.experiment.with_seed(seed);
            let key = cell_key(&exp);
            if !seen.insert(key.clone()) {
                continue;
            }
            let hit = config
                .cache_dir
                .as_deref()
                .is_some_and(|dir| matches!(cache_fetch(dir, &key), CacheFetch::Hit(_)));
            let status = if hit { "hit" } else { "miss" };
            out.push_str(&format!("{key} {status} {}\n", exp.encode_hex()));
        }
    }
    out
}

/// Runs every `(point, seed)` cell, in parallel, and averages per
/// point. With [`SweepConfig::cache_dir`] set, cells whose experiment
/// is unchanged are served from the persistent cache instead of
/// simulated; corrupt cells are quarantined and recomputed (counted
/// separately from misses), and failed write-backs are counted. With
/// [`SweepConfig::cache_only`] additionally set, absent cells are
/// *skipped* and counted per point instead of simulated — rendering a
/// figure from a partially-warm cache never panics.
///
/// # Panics
///
/// Panics if `points` or `config.seeds` is empty, or if a worker thread
/// panics (experiment bugs should abort the harness loudly).
pub fn run_sweep(x_axis: &str, points: Vec<SweepPoint>, config: &SweepConfig) -> SweepResults {
    assert!(!points.is_empty(), "sweep needs at least one point");
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");

    let cache_dir = config.cache_dir.as_deref();
    if let Some(dir) = cache_dir {
        // Best effort: an unwritable cache degrades to plain reruns
        // (store errors are counted below).
        let _ = std::fs::create_dir_all(dir);
    }

    // Flatten into (point index, seed) jobs.
    let jobs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|i| config.seeds.iter().map(move |&s| (i, s)))
        .collect();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(jobs.len())
    } else {
        config.threads.min(jobs.len())
    };

    // Per-point accumulator of (seed, cell result).
    type SeedRuns = Vec<(u64, CellResult)>;
    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let corrupt = AtomicUsize::new(0);
    let store_errors = AtomicUsize::new(0);
    let first_store_error: Mutex<Option<String>> = Mutex::new(None);
    let missing: Vec<AtomicUsize> = (0..points.len()).map(|_| AtomicUsize::new(0)).collect();
    let results: Vec<Mutex<SeedRuns>> = (0..points.len()).map(|_| Mutex::new(Vec::new())).collect();

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (i, seed) = jobs[j];
                let experiment = points[i].experiment.with_seed(seed);
                let key = cache_dir.map(|_| cell_key(&experiment));
                let (fetched, was_corrupt) = match (cache_dir, &key) {
                    (Some(dir), Some(k)) => match cache_fetch(dir, k) {
                        CacheFetch::Hit(cell) => (Some(cell), false),
                        CacheFetch::Miss => (None, false),
                        CacheFetch::Corrupt => {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                            let _ = quarantine(dir, k);
                            (None, true)
                        }
                    },
                    _ => (None, false),
                };
                let cell = match fetched {
                    Some(cell) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        cell
                    }
                    None if config.cache_only => {
                        // Render-only: report the gap instead of paying
                        // for (or panicking over) the simulation.
                        missing[i].fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    None => {
                        if !was_corrupt {
                            misses.fetch_add(1, Ordering::Relaxed);
                        }
                        let cell = run_cell(&experiment);
                        if let (Some(dir), Some(k)) = (cache_dir, &key) {
                            if let Err(e) = cache_store(dir, k, &experiment, &cell) {
                                store_errors.fetch_add(1, Ordering::Relaxed);
                                let mut slot =
                                    first_store_error.lock().expect("no poisoned error slot");
                                slot.get_or_insert_with(|| format!("cell {k}: {e}"));
                            }
                        }
                        cell
                    }
                };
                results[i]
                    .lock()
                    .expect("no poisoned result lock")
                    .push((seed, cell));
            });
        }
    })
    .expect("sweep worker panicked");

    let point_results: Vec<PointResult> = points
        .iter()
        .zip(results)
        .zip(&missing)
        .map(|((point, cell), missed)| {
            let mut runs = cell.into_inner().expect("no poisoned result lock");
            runs.sort_by_key(|(seed, _)| *seed); // deterministic order
            let rows: Vec<FigureRow> = runs.iter().map(|(_, c)| c.row).collect();
            let mean = if rows.is_empty() {
                FigureRow::default() // rendered as n/a, never shown
            } else {
                FigureRow::mean(rows.iter())
            };
            let n = runs.len().max(1) as f64;
            PointResult {
                x_label: point.x_label.clone(),
                scheduler: point.experiment.scheduler.name(),
                mean,
                join_ratio: runs.iter().map(|(_, c)| c.join_ratio).sum::<f64>() / n,
                generated: runs.iter().map(|(_, c)| c.generated as f64).sum::<f64>() / n,
                rows,
                missing: missed.load(Ordering::Relaxed),
            }
        })
        .collect();

    SweepResults {
        x_axis: x_axis.to_string(),
        missing_cells: point_results.iter().map(|p| p.missing).sum(),
        points: point_results,
        cache_hits: hits.into_inner(),
        cache_misses: misses.into_inner(),
        corrupt_cells: corrupt.into_inner(),
        store_errors: store_errors.into_inner(),
        first_store_error: first_store_error.into_inner().expect("no poisoned slot"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_workload::{
        Experiment, NoiseBurst, Overlay, RunSpec, ScenarioSpec, SchedulerKind, ENCODING_VERSION,
    };

    fn tiny_experiment(ppm: f64) -> Experiment {
        Experiment::new(ScenarioSpec::star(2), SchedulerKind::minimal(8)).with_run(RunSpec {
            traffic_ppm: ppm,
            warmup_secs: 20,
            measure_secs: 30,
            seed: 0,
            ..RunSpec::default()
        })
    }

    fn tiny_points() -> Vec<SweepPoint> {
        vec![
            SweepPoint {
                x_label: "10".into(),
                experiment: tiny_experiment(10.0),
            },
            SweepPoint {
                x_label: "20".into(),
                experiment: tiny_experiment(20.0),
            },
        ]
    }

    #[test]
    fn sweep_runs_and_averages() {
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 2,
            ..SweepConfig::default()
        };
        let results = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.x_labels(), vec!["10", "20"]);
        assert_eq!(results.schedulers(), vec!["minimal"]);
        for p in &results.points {
            assert_eq!(p.rows.len(), 2, "one row per seed");
            assert!(p.generated > 0.0);
            assert!(p.join_ratio > 0.0);
            assert_eq!(p.missing, 0);
        }
        assert!(results.get("minimal", "10").is_some());
        assert!(results.get("minimal", "99").is_none());
        assert_eq!(results.corrupt_cells, 0);
        assert_eq!(results.store_errors, 0);
        assert_eq!(results.missing_cells, 0);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let one = SweepConfig {
            seeds: vec![7],
            threads: 1,
            ..SweepConfig::default()
        };
        let many = SweepConfig {
            seeds: vec![7],
            threads: 4,
            ..SweepConfig::default()
        };
        let a = run_sweep("x", tiny_points(), &one);
        let b = run_sweep("x", tiny_points(), &many);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.mean, pb.mean, "thread count must not affect results");
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_rejected() {
        let _ = run_sweep("x", vec![], &SweepConfig::default());
    }

    /// A throwaway cache directory, unique per test, emptied on entry.
    fn scratch_cache(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gtt-sweep-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_identical_sweep_is_served_from_cache() {
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 2,
            ..SweepConfig::default()
        }
        .cached(scratch_cache("identical"));
        let first = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
        assert_eq!(first.cache_misses, 4, "2 points x 2 seeds");
        let second = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(second.cache_hits, 4, "warm cache must serve every cell");
        assert_eq!(second.cache_misses, 0);
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.mean, b.mean, "cached rows must average identically");
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.join_ratio, b.join_ratio);
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn changed_inputs_invalidate_exactly_their_cells() {
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 1,
            ..SweepConfig::default()
        }
        .cached(scratch_cache("invalidate"));
        let _ = run_sweep("traffic", tiny_points(), &cfg);
        // Change one point's traffic rate: only that cell re-runs.
        let mut points = tiny_points();
        points[1].experiment.run.traffic_ppm = 25.0;
        let second = run_sweep("traffic", points, &cfg);
        assert_eq!(second.cache_hits, 1, "unchanged point still cached");
        assert_eq!(second.cache_misses, 1, "changed point re-ran");
        // An overlay is part of the key too.
        let mut points = tiny_points();
        points[0]
            .experiment
            .overlays
            .push(Overlay::Noise(NoiseBurst::wifi_like()));
        let third = run_sweep("traffic", points, &cfg);
        assert_eq!(third.cache_misses, 1, "noisy variant is a distinct cell");
    }

    /// Pins the key derivation across runs, processes and hosts: the
    /// canonical encoding has no ambient inputs, so this literal can
    /// only change when the encoding (or its schema version) does —
    /// which is exactly when every cached cell *should* be invalidated.
    /// (The *cache file* schema — `CACHE_SCHEMA` — is deliberately not
    /// part of the key: bumping it makes old cells miss via the header
    /// check without re-keying anything.)
    #[test]
    fn cell_keys_are_stable_across_runs() {
        let exp = tiny_experiment(10.0).with_seed(1);
        assert_eq!(cell_key(&exp), cell_key(&exp.clone()));
        // Schema v2 (City topologies) — the v1 literal was
        // 15eaf8ff5efae94710c8f412083bbde5.
        assert_eq!(cell_key(&exp), "419329df2103b9e4b44e479e36d916ee");
    }

    /// An encoding-schema bump must change every key: old cells become
    /// unreachable instead of silently served across a layout change.
    #[test]
    fn schema_version_bump_invalidates_cached_cells() {
        let dir = scratch_cache("schema-bump");
        let exp = tiny_experiment(10.0).with_seed(1);
        assert!(!ensure_cached(&dir, &exp), "cold cache computes");
        assert!(ensure_cached(&dir, &exp), "warm cache hits");
        let bumped_key = key_of_bytes(&exp.encode_with_version(ENCODING_VERSION + 1));
        assert_ne!(
            bumped_key,
            cell_key(&exp),
            "a version bump must re-key every cell"
        );
        assert_eq!(
            cache_fetch(&dir, &bumped_key),
            CacheFetch::Miss,
            "the bumped key must miss the old cell"
        );
        // The file-format schema line is the second guard: a cell
        // written by a different CACHE_SCHEMA is a *miss* (not corrupt,
        // not a parse): stale generations are expected, not damage.
        let key = cell_key(&exp);
        let stale = std::fs::read_to_string(dir.join(&key))
            .unwrap()
            .replace(CACHE_SCHEMA, "gtt-sweep-cache v0");
        std::fs::write(dir.join(&key), stale).unwrap();
        assert!(!probe_cached(&dir, &exp), "foreign schema line must miss");
        assert_eq!(cache_fetch(&dir, &key), CacheFetch::Miss);
    }

    /// The concrete v1 → v2 transition (City topologies): cells written
    /// by a v1 binary key under the v1 encoding and can never be served
    /// to this build — the version is part of the encoded bytes the key
    /// hashes, so no delete/migration step is needed.
    #[test]
    fn v1_cells_are_unreachable_after_the_city_schema_bump() {
        let dir = scratch_cache("schema-bump-v1");
        let exp = tiny_experiment(10.0).with_seed(1);
        let v1_key = key_of_bytes(&exp.encode_with_version(1));
        assert_ne!(v1_key, cell_key(&exp), "v1 keys differ from v2 keys");
        // Simulate a leftover v1 cell under its own key: the current
        // build never derives that key, so it stays cold.
        assert!(!ensure_cached(&dir, &exp), "cold cache computes");
        assert_eq!(
            cache_fetch(&dir, &v1_key),
            CacheFetch::Miss,
            "nothing is ever served from the v1 key space"
        );
    }

    /// A truncated cell must be *corrupt* — quarantined and counted —
    /// never served, and never silently treated as a plain miss.
    #[test]
    fn truncated_cell_is_quarantined_not_a_silent_miss() {
        let dir = scratch_cache("truncated");
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 1,
            ..SweepConfig::default()
        }
        .cached(dir.clone());
        let first = run_sweep("traffic", tiny_points(), &cfg);
        // Truncate one cell mid-file (schema line intact, body cut).
        let key = cell_key(&tiny_points()[0].experiment.with_seed(1));
        let text = std::fs::read_to_string(dir.join(&key)).unwrap();
        std::fs::write(dir.join(&key), &text[..CACHE_SCHEMA.len() + 6]).unwrap();
        assert_eq!(cache_fetch(&dir, &key), CacheFetch::Corrupt);
        assert!(!probe_cached(
            &dir,
            &tiny_points()[0].experiment.with_seed(1)
        ));

        let second = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(second.corrupt_cells, 1, "damage is counted");
        assert_eq!(second.cache_misses, 0, "damage is not a plain miss");
        assert_eq!(second.cache_hits, 1, "the intact cell still serves");
        assert!(
            dir.join(QUARANTINE_SUBDIR).join(&key).exists(),
            "damaged bytes are preserved for inspection"
        );
        // The recomputed cell is identical and the cache is whole again.
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.rows, b.rows, "recomputed cell is byte-identical");
        }
        let third = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(third.cache_hits, 2);
        assert_eq!(third.corrupt_cells, 0);
    }

    /// A bit flip in the values line fails the content checksum.
    #[test]
    fn bit_flipped_cell_fails_the_checksum() {
        let dir = scratch_cache("bitflip");
        let exp = tiny_experiment(10.0).with_seed(1);
        assert!(!ensure_cached(&dir, &exp));
        let key = cell_key(&exp);
        let mut bytes = std::fs::read(dir.join(&key)).unwrap();
        // Flip one bit in the values line (third line).
        let third_line_start = {
            let text = String::from_utf8(bytes.clone()).unwrap();
            let mut idx = 0;
            for (i, line) in text.split_inclusive('\n').enumerate() {
                if i == 2 {
                    break;
                }
                idx += line.len();
            }
            idx
        };
        bytes[third_line_start] ^= 0x01;
        std::fs::write(dir.join(&key), &bytes).unwrap();
        assert_eq!(cache_fetch(&dir, &key), CacheFetch::Corrupt);
        // ensure_cached quarantines + recomputes instead of serving it.
        assert!(!ensure_cached(&dir, &exp), "corrupt cell is recomputed");
        assert!(dir.join(QUARANTINE_SUBDIR).join(&key).exists());
        assert!(ensure_cached(&dir, &exp), "cache is whole again");
    }

    /// Cache-only rendering from a partially-warm cache: present cells
    /// are served, absent cells are counted per point — no simulation,
    /// no panic.
    #[test]
    fn cache_only_reports_missing_cells_instead_of_simulating() {
        let dir = scratch_cache("cache-only");
        let warm = SweepConfig {
            seeds: vec![1, 2],
            threads: 1,
            ..SweepConfig::default()
        }
        .cached(dir.clone());
        // Warm exactly one of the two points.
        let _ = run_sweep("traffic", vec![tiny_points().remove(0)], &warm);

        let render = SweepConfig {
            cache_only: true,
            ..warm.clone()
        };
        let results = run_sweep("traffic", tiny_points(), &render);
        assert_eq!(results.cache_hits, 2, "warm point served");
        assert_eq!(results.cache_misses, 0, "nothing simulated");
        assert_eq!(results.missing_cells, 2, "cold point reported");
        assert_eq!(results.points[0].missing, 0);
        assert_eq!(results.points[0].rows.len(), 2);
        assert_eq!(results.points[1].missing, 2);
        assert!(results.points[1].rows.is_empty(), "no fabricated rows");
        assert!(results.points[1].pdr_ci95().is_nan());
    }

    /// Failed cache write-backs are counted and the first error is
    /// surfaced — never silently swallowed. The sweep itself still
    /// completes from the fresh simulations.
    #[test]
    fn store_errors_are_counted_and_surfaced() {
        let blocker = std::env::temp_dir().join("gtt-sweep-store-error-blocker");
        let _ = std::fs::remove_dir_all(&blocker);
        let _ = std::fs::remove_file(&blocker);
        std::fs::write(&blocker, b"not a directory").unwrap();
        // The cache dir's parent is a plain file: every create fails.
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 1,
            ..SweepConfig::default()
        }
        .cached(blocker.join("cache"));
        let results = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(results.store_errors, 2, "both write-backs failed");
        assert!(results.first_store_error.is_some());
        assert_eq!(results.points.len(), 2, "figure still rendered");
        assert!(results.points.iter().all(|p| p.rows.len() == 1));
    }

    #[test]
    fn shard_list_reflects_cache_state_and_round_trips() {
        let dir = scratch_cache("shard-list");
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 1,
            ..SweepConfig::default()
        }
        .cached(dir.clone());
        let listing = render_shard_list(&tiny_points(), &cfg);
        assert_eq!(listing.lines().count(), 4, "2 points × 2 seeds, no dupes");
        // Every line decodes back to its experiment and matches its key.
        for line in listing.lines() {
            let mut fields = line.split_whitespace();
            let key = fields.next().unwrap();
            assert_eq!(fields.next(), Some("miss"), "cold cache lists misses");
            let exp = Experiment::decode_hex(fields.next().unwrap()).expect("hex decodes");
            assert_eq!(cell_key(&exp), key);
        }
        // Fill one cell: exactly that line flips to hit.
        let filled = tiny_points()[0].experiment.with_seed(2);
        ensure_cached(&dir, &filled);
        let relisted = render_shard_list(&tiny_points(), &cfg);
        assert_eq!(relisted.lines().filter(|l| l.contains(" hit ")).count(), 1);
        // Duplicate cells across points are emitted once.
        let mut dup = tiny_points();
        dup.push(dup[0].clone());
        assert_eq!(render_shard_list(&dup, &cfg).lines().count(), 4);
    }
}
