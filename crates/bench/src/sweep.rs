//! Parallel sweep execution with a persistent per-`(point, seed)`
//! result cache.
//!
//! Every cell of a sweep matrix is a pure function of its inputs —
//! scenario, scheduler configuration, run spec, noise overlay and seed —
//! so re-running a figure only needs to simulate the cells those inputs
//! changed for. With [`SweepConfig::cache_dir`] set, each finished cell
//! is written to one small file keyed by a hash of all inputs (values
//! stored as exact `f64` bit patterns, so cached and fresh runs average
//! to byte-identical rows), and later sweeps serve unchanged cells from
//! disk. The serialization is hand-rolled hex-on-text because the
//! vendored `serde` stand-in is marker-only (see `crates/compat`).

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::thread;
use gtt_metrics::{FigureRow, Summary};
use gtt_workload::{run_with_noise, NoiseBurst, RunSpec, Scenario, SchedulerKind};

/// Bump when the cached quantities or the simulator's *observable
/// behavior* change — every old cell then misses. The key hashes the
/// experiment's inputs, not the simulator's code, so a behavior-changing
/// commit without a schema bump would silently serve pre-change rows;
/// `--no-cache` (or deleting `target/sweep-cache`) forces fresh runs,
/// and CI's figure smoke always passes `--no-cache` for this reason.
const CACHE_SCHEMA: &str = "gtt-sweep-cache v1";

/// One (x-value, scheduler) point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sweep coordinate ("30", "75", … — the figure's x axis).
    pub x_label: String,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Topology.
    pub scenario: Scenario,
    /// Traffic + timing (seed field is overwritten per repetition).
    pub spec: RunSpec,
    /// Optional interference-burst overlay driven over the measurement
    /// window (the noise figure sweeps its period and depth).
    pub noise: Option<NoiseBurst>,
}

/// Sweep-wide settings.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = one per available core, capped at the
    /// number of runs).
    pub threads: usize,
    /// Directory of the persistent per-`(point, seed)` result cache
    /// (`None` disables caching). The figure binaries default to
    /// `target/sweep-cache`.
    pub cache_dir: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seeds: vec![1, 2, 3, 4, 5],
            threads: 0,
            cache_dir: None,
        }
    }
}

impl SweepConfig {
    /// A fast configuration for smoke tests (2 seeds).
    pub fn quick() -> Self {
        SweepConfig {
            seeds: vec![1, 2],
            threads: 0,
            cache_dir: None,
        }
    }

    /// Enables the persistent result cache under `dir`.
    pub fn cached(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The figure binaries' shared configuration: `--quick` selects the
    /// 2-seed smoke set, and the persistent cache under
    /// `target/sweep-cache` is on unless `--no-cache` is given.
    pub fn from_args() -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let no_cache = std::env::args().any(|a| a == "--no-cache");
        let config = if quick {
            SweepConfig::quick()
        } else {
            SweepConfig::default()
        };
        if no_cache {
            config
        } else {
            config.cached("target/sweep-cache")
        }
    }
}

/// Result of one sweep point, averaged over seeds.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The sweep coordinate.
    pub x_label: String,
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Seed-averaged six-series row.
    pub mean: FigureRow,
    /// Per-seed rows (for dispersion).
    pub rows: Vec<FigureRow>,
    /// Mean join ratio across seeds (sanity signal).
    pub join_ratio: f64,
    /// Mean packets generated.
    pub generated: f64,
}

impl PointResult {
    /// 95% confidence half-width of the PDR across seeds.
    pub fn pdr_ci95(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.pdr_percent)
            .collect::<Summary>()
            .ci95_half_width()
    }
}

/// All results of a figure sweep.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Human-readable name of the x axis ("traffic (ppm/node)", …).
    pub x_axis: String,
    /// Results in input order.
    pub points: Vec<PointResult>,
    /// `(point, seed)` cells served from the persistent cache.
    pub cache_hits: usize,
    /// Cells that had to be simulated (and were written back when
    /// caching is enabled).
    pub cache_misses: usize,
}

impl SweepResults {
    /// The distinct x labels in first-appearance order.
    pub fn x_labels(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.x_label) {
                seen.push(p.x_label.clone());
            }
        }
        seen
    }

    /// The distinct scheduler names in first-appearance order.
    pub fn schedulers(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.scheduler) {
                seen.push(p.scheduler);
            }
        }
        seen
    }

    /// The point for (scheduler, x), if present.
    pub fn get(&self, scheduler: &str, x: &str) -> Option<&PointResult> {
        self.points
            .iter()
            .find(|p| p.scheduler == scheduler && p.x_label == x)
    }
}

/// One cached cell: what [`PointResult`] needs per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellResult {
    row: FigureRow,
    join_ratio: f64,
    generated: u64,
}

/// FNV-1a over `bytes`, from an arbitrary offset basis (two different
/// bases give two independent 64-bit digests — 128 bits of key).
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The cache key of a `(point, seed)` cell: every input that can affect
/// the simulation, serialized via `Debug` (the topology debug form
/// includes positions, range, link model and PRR overrides) and hashed.
fn cell_key(point: &SweepPoint, seed: u64) -> String {
    let spec = RunSpec { seed, ..point.spec };
    let desc = format!(
        "{CACHE_SCHEMA}|{:?}|{:?}|{:?}|{:?}|{:?}",
        point.scenario.topology, point.scenario.roots, point.scheduler, spec, point.noise,
    );
    format!(
        "{:016x}{:016x}",
        fnv1a(desc.as_bytes(), 0xcbf2_9ce4_8422_2325),
        fnv1a(desc.as_bytes(), 0x9ae1_6a3b_2f90_404f),
    )
}

/// Loads a cached cell, or `None` on any mismatch (treated as a miss).
fn cache_load(dir: &std::path::Path, key: &str) -> Option<CellResult> {
    let text = std::fs::read_to_string(dir.join(key)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != CACHE_SCHEMA {
        return None;
    }
    let _human = lines.next()?; // descriptive line, not parsed
    let mut values = lines.next()?.split_whitespace();
    let mut next_f64 = || -> Option<f64> {
        let bits = u64::from_str_radix(values.next()?, 16).ok()?;
        Some(f64::from_bits(bits))
    };
    let row = FigureRow {
        pdr_percent: next_f64()?,
        delay_ms: next_f64()?,
        loss_per_min: next_f64()?,
        duty_cycle_percent: next_f64()?,
        queue_loss: next_f64()?,
        received_per_min: next_f64()?,
    };
    let join_ratio = next_f64()?;
    let generated = u64::from_str_radix(values.next()?, 16).ok()?;
    Some(CellResult {
        row,
        join_ratio,
        generated,
    })
}

/// Writes a finished cell; errors are ignored (the cache is an
/// optimization, never a correctness dependency).
fn cache_store(dir: &std::path::Path, key: &str, point: &SweepPoint, seed: u64, c: &CellResult) {
    let r = &c.row;
    let body = format!(
        "{CACHE_SCHEMA}\n{} {} seed {}\n{:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:x}\n",
        point.scenario.name,
        point.scheduler.name(),
        seed,
        r.pdr_percent.to_bits(),
        r.delay_ms.to_bits(),
        r.loss_per_min.to_bits(),
        r.duty_cycle_percent.to_bits(),
        r.queue_loss.to_bits(),
        r.received_per_min.to_bits(),
        c.join_ratio.to_bits(),
        c.generated,
    );
    let _ = std::fs::File::create(dir.join(key)).and_then(|mut f| f.write_all(body.as_bytes()));
}

/// Runs every `(point, seed)` combination, in parallel, and averages per
/// point. With [`SweepConfig::cache_dir`] set, cells whose inputs are
/// unchanged are served from the persistent cache instead of simulated.
///
/// # Panics
///
/// Panics if `points` or `config.seeds` is empty, or if a worker thread
/// panics (experiment bugs should abort the harness loudly).
pub fn run_sweep(x_axis: &str, points: Vec<SweepPoint>, config: &SweepConfig) -> SweepResults {
    assert!(!points.is_empty(), "sweep needs at least one point");
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");

    let cache_dir = config.cache_dir.as_deref();
    if let Some(dir) = cache_dir {
        // Best effort: an unwritable cache degrades to plain reruns.
        let _ = std::fs::create_dir_all(dir);
    }

    // Flatten into (point index, seed) jobs.
    let jobs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|i| config.seeds.iter().map(move |&s| (i, s)))
        .collect();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(jobs.len())
    } else {
        config.threads.min(jobs.len())
    };

    // Per-point accumulator of (seed, cell result).
    type SeedRuns = Vec<(u64, CellResult)>;
    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<SeedRuns>> = (0..points.len())
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (i, seed) = jobs[j];
                let point = &points[i];
                let key = cache_dir.map(|_| cell_key(point, seed));
                let cached = match (cache_dir, &key) {
                    (Some(dir), Some(k)) => cache_load(dir, k),
                    _ => None,
                };
                let cell = match cached {
                    Some(cell) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        cell
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                        let spec = RunSpec { seed, ..point.spec };
                        let report = run_with_noise(
                            &point.scenario,
                            &point.scheduler,
                            &spec,
                            point.noise.as_ref(),
                        );
                        let cell = CellResult {
                            row: report.row,
                            join_ratio: report.join_ratio,
                            generated: report.generated,
                        };
                        if let (Some(dir), Some(k)) = (cache_dir, &key) {
                            cache_store(dir, k, point, seed, &cell);
                        }
                        cell
                    }
                };
                results[i]
                    .lock()
                    .expect("no poisoned result lock")
                    .push((seed, cell));
            });
        }
    })
    .expect("sweep worker panicked");

    let point_results = points
        .iter()
        .zip(results)
        .map(|(point, cell)| {
            let mut runs = cell.into_inner().expect("no poisoned result lock");
            runs.sort_by_key(|(seed, _)| *seed); // deterministic order
            let rows: Vec<FigureRow> = runs.iter().map(|(_, c)| c.row).collect();
            PointResult {
                x_label: point.x_label.clone(),
                scheduler: point.scheduler.name(),
                mean: FigureRow::mean(rows.iter()),
                join_ratio: runs.iter().map(|(_, c)| c.join_ratio).sum::<f64>() / runs.len() as f64,
                generated: runs.iter().map(|(_, c)| c.generated as f64).sum::<f64>()
                    / runs.len() as f64,
                rows,
            }
        })
        .collect();

    SweepResults {
        x_axis: x_axis.to_string(),
        points: point_results,
        cache_hits: hits.into_inner(),
        cache_misses: misses.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points() -> Vec<SweepPoint> {
        let scenario = Scenario::star(2);
        vec![
            SweepPoint {
                x_label: "10".into(),
                scheduler: SchedulerKind::minimal(8),
                scenario: scenario.clone(),
                spec: RunSpec {
                    traffic_ppm: 10.0,
                    warmup_secs: 20,
                    measure_secs: 30,
                    seed: 0,
                },
                noise: None,
            },
            SweepPoint {
                x_label: "20".into(),
                scheduler: SchedulerKind::minimal(8),
                scenario,
                spec: RunSpec {
                    traffic_ppm: 20.0,
                    warmup_secs: 20,
                    measure_secs: 30,
                    seed: 0,
                },
                noise: None,
            },
        ]
    }

    #[test]
    fn sweep_runs_and_averages() {
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 2,
            cache_dir: None,
        };
        let results = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.x_labels(), vec!["10", "20"]);
        assert_eq!(results.schedulers(), vec!["minimal"]);
        for p in &results.points {
            assert_eq!(p.rows.len(), 2, "one row per seed");
            assert!(p.generated > 0.0);
            assert!(p.join_ratio > 0.0);
        }
        assert!(results.get("minimal", "10").is_some());
        assert!(results.get("minimal", "99").is_none());
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let one = SweepConfig {
            seeds: vec![7],
            threads: 1,
            cache_dir: None,
        };
        let many = SweepConfig {
            seeds: vec![7],
            threads: 4,
            cache_dir: None,
        };
        let a = run_sweep("x", tiny_points(), &one);
        let b = run_sweep("x", tiny_points(), &many);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.mean, pb.mean, "thread count must not affect results");
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_rejected() {
        let _ = run_sweep("x", vec![], &SweepConfig::default());
    }

    /// A throwaway cache directory, unique per test, emptied on entry.
    fn scratch_cache(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gtt-sweep-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_identical_sweep_is_served_from_cache() {
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 2,
            cache_dir: None,
        }
        .cached(scratch_cache("identical"));
        let first = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
        assert_eq!(first.cache_misses, 4, "2 points x 2 seeds");
        let second = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(second.cache_hits, 4, "warm cache must serve every cell");
        assert_eq!(second.cache_misses, 0);
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.mean, b.mean, "cached rows must average identically");
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.join_ratio, b.join_ratio);
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn changed_inputs_invalidate_exactly_their_cells() {
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 1,
            cache_dir: None,
        }
        .cached(scratch_cache("invalidate"));
        let _ = run_sweep("traffic", tiny_points(), &cfg);
        // Change one point's traffic rate: only that cell re-runs.
        let mut points = tiny_points();
        points[1].spec.traffic_ppm = 25.0;
        let second = run_sweep("traffic", points, &cfg);
        assert_eq!(second.cache_hits, 1, "unchanged point still cached");
        assert_eq!(second.cache_misses, 1, "changed point re-ran");
        // A noise overlay is part of the key too.
        let mut points = tiny_points();
        points[0].noise = Some(NoiseBurst::wifi_like());
        let third = run_sweep("traffic", points, &cfg);
        assert_eq!(third.cache_misses, 1, "noisy variant is a distinct cell");
    }
}
