//! Parallel sweep execution.

use crossbeam::thread;
use gtt_metrics::{FigureRow, Summary};
use gtt_workload::{run, RunSpec, Scenario, SchedulerKind};

/// One (x-value, scheduler) point of a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sweep coordinate ("30", "75", … — the figure's x axis).
    pub x_label: String,
    /// Scheduler under test.
    pub scheduler: SchedulerKind,
    /// Topology.
    pub scenario: Scenario,
    /// Traffic + timing (seed field is overwritten per repetition).
    pub spec: RunSpec,
}

/// Sweep-wide settings.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = one per available core, capped at the
    /// number of runs).
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seeds: vec![1, 2, 3, 4, 5],
            threads: 0,
        }
    }
}

impl SweepConfig {
    /// A fast configuration for smoke tests (2 seeds).
    pub fn quick() -> Self {
        SweepConfig {
            seeds: vec![1, 2],
            threads: 0,
        }
    }
}

/// Result of one sweep point, averaged over seeds.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The sweep coordinate.
    pub x_label: String,
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Seed-averaged six-series row.
    pub mean: FigureRow,
    /// Per-seed rows (for dispersion).
    pub rows: Vec<FigureRow>,
    /// Mean join ratio across seeds (sanity signal).
    pub join_ratio: f64,
    /// Mean packets generated.
    pub generated: f64,
}

impl PointResult {
    /// 95% confidence half-width of the PDR across seeds.
    pub fn pdr_ci95(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.pdr_percent)
            .collect::<Summary>()
            .ci95_half_width()
    }
}

/// All results of a figure sweep.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Human-readable name of the x axis ("traffic (ppm/node)", …).
    pub x_axis: String,
    /// Results in input order.
    pub points: Vec<PointResult>,
}

impl SweepResults {
    /// The distinct x labels in first-appearance order.
    pub fn x_labels(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.x_label) {
                seen.push(p.x_label.clone());
            }
        }
        seen
    }

    /// The distinct scheduler names in first-appearance order.
    pub fn schedulers(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.scheduler) {
                seen.push(p.scheduler);
            }
        }
        seen
    }

    /// The point for (scheduler, x), if present.
    pub fn get(&self, scheduler: &str, x: &str) -> Option<&PointResult> {
        self.points
            .iter()
            .find(|p| p.scheduler == scheduler && p.x_label == x)
    }
}

/// Runs every `(point, seed)` combination, in parallel, and averages per
/// point.
///
/// # Panics
///
/// Panics if `points` or `config.seeds` is empty, or if a worker thread
/// panics (experiment bugs should abort the harness loudly).
pub fn run_sweep(x_axis: &str, points: Vec<SweepPoint>, config: &SweepConfig) -> SweepResults {
    assert!(!points.is_empty(), "sweep needs at least one point");
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");

    // Flatten into (point index, seed) jobs.
    let jobs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|i| config.seeds.iter().map(move |&s| (i, s)))
        .collect();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(jobs.len())
    } else {
        config.threads.min(jobs.len())
    };

    // Per-point accumulator of (seed, row, join ratio, generated).
    type SeedRuns = Vec<(u64, FigureRow, f64, u64)>;
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<SeedRuns>> = (0..points.len())
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (i, seed) = jobs[j];
                let point = &points[i];
                let spec = RunSpec { seed, ..point.spec };
                let report = run(&point.scenario, &point.scheduler, &spec);
                results[i].lock().expect("no poisoned result lock").push((
                    seed,
                    report.row,
                    report.join_ratio,
                    report.generated,
                ));
            });
        }
    })
    .expect("sweep worker panicked");

    let point_results = points
        .iter()
        .zip(results)
        .map(|(point, cell)| {
            let mut runs = cell.into_inner().expect("no poisoned result lock");
            runs.sort_by_key(|(seed, ..)| *seed); // deterministic order
            let rows: Vec<FigureRow> = runs.iter().map(|(_, r, ..)| *r).collect();
            PointResult {
                x_label: point.x_label.clone(),
                scheduler: point.scheduler.name(),
                mean: FigureRow::mean(rows.iter()),
                join_ratio: runs.iter().map(|(_, _, j, _)| j).sum::<f64>() / runs.len() as f64,
                generated: runs.iter().map(|(_, _, _, g)| *g as f64).sum::<f64>()
                    / runs.len() as f64,
                rows,
            }
        })
        .collect();

    SweepResults {
        x_axis: x_axis.to_string(),
        points: point_results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points() -> Vec<SweepPoint> {
        let scenario = Scenario::star(2);
        vec![
            SweepPoint {
                x_label: "10".into(),
                scheduler: SchedulerKind::minimal(8),
                scenario: scenario.clone(),
                spec: RunSpec {
                    traffic_ppm: 10.0,
                    warmup_secs: 20,
                    measure_secs: 30,
                    seed: 0,
                },
            },
            SweepPoint {
                x_label: "20".into(),
                scheduler: SchedulerKind::minimal(8),
                scenario,
                spec: RunSpec {
                    traffic_ppm: 20.0,
                    warmup_secs: 20,
                    measure_secs: 30,
                    seed: 0,
                },
            },
        ]
    }

    #[test]
    fn sweep_runs_and_averages() {
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 2,
        };
        let results = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.x_labels(), vec!["10", "20"]);
        assert_eq!(results.schedulers(), vec!["minimal"]);
        for p in &results.points {
            assert_eq!(p.rows.len(), 2, "one row per seed");
            assert!(p.generated > 0.0);
            assert!(p.join_ratio > 0.0);
        }
        assert!(results.get("minimal", "10").is_some());
        assert!(results.get("minimal", "99").is_none());
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let one = SweepConfig {
            seeds: vec![7],
            threads: 1,
        };
        let many = SweepConfig {
            seeds: vec![7],
            threads: 4,
        };
        let a = run_sweep("x", tiny_points(), &one);
        let b = run_sweep("x", tiny_points(), &many);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.mean, pb.mean, "thread count must not affect results");
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_rejected() {
        let _ = run_sweep("x", vec![], &SweepConfig::default());
    }
}
