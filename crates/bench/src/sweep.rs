//! Parallel sweep execution with a persistent per-cell result cache and
//! multi-process sharding support.
//!
//! Every cell of a sweep matrix is a pure function of one
//! [`Experiment`] value (scenario spec, scheduler configuration, run
//! spec incl. seed, overlay timeline), so re-running a figure only
//! needs to simulate the cells whose experiment changed. With
//! [`SweepConfig::cache_dir`] set, each finished cell is written to one
//! small file keyed by [`cell_key`] — a 128-bit FNV digest of the
//! experiment's *canonical byte encoding*
//! ([`Experiment::encode`]), which embeds the encoding schema version,
//! so a schema bump invalidates every old key by construction. Values
//! are stored as exact `f64` bit patterns, so cached and fresh runs
//! average to byte-identical rows. The serialization is hand-rolled
//! hex-on-text because the vendored `serde` stand-in is marker-only
//! (see `crates/compat`).
//!
//! The same keys and encodings power cross-process sharding: figure
//! binaries dump their cells as one hex-encoded experiment per line
//! (`--list`, rendered by [`render_shard_list`]), any number of
//! `sweep_worker` processes fill the shared cache directory from
//! disjoint slices of those lines ([`ensure_cached`]), and the final
//! figure run is then 100% cache hits.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::thread;
use gtt_metrics::{FigureRow, Summary};
use gtt_workload::Experiment;

/// Bump when the cached *quantities* or the simulator's observable
/// behavior change — every old cell file then fails this header check
/// and is recomputed. (Key collisions across schema versions are
/// impossible for *input* changes: the cache key hashes the canonical
/// experiment encoding, whose own [`gtt_workload::ENCODING_VERSION`]
/// covers layout changes. This constant covers the other half — same
/// inputs, different simulator.) `--no-cache` (or deleting
/// `target/sweep-cache`) forces fresh runs, and CI's figure smoke
/// always passes `--no-cache` for this reason.
// v3: mean delay is now an integer-nanosecond streaming sum (ulp-level
// delay_ms drift vs the old per-packet f64 summation).
const CACHE_SCHEMA: &str = "gtt-sweep-cache v3";

/// One (x-value, experiment) point of a sweep. The per-seed cells are
/// the point's experiment re-seeded from [`SweepConfig::seeds`].
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The sweep coordinate ("30", "75", … — the figure's x axis).
    pub x_label: String,
    /// The experiment (its `run.seed` is overwritten per repetition).
    pub experiment: Experiment,
}

/// Sweep-wide settings.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Worker threads (`0` = one per available core, capped at the
    /// number of runs).
    pub threads: usize,
    /// Directory of the persistent per-cell result cache (`None`
    /// disables caching). The figure binaries default to
    /// `target/sweep-cache`.
    pub cache_dir: Option<PathBuf>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seeds: vec![1, 2, 3, 4, 5],
            threads: 0,
            cache_dir: None,
        }
    }
}

impl SweepConfig {
    /// A fast configuration for smoke tests (2 seeds).
    pub fn quick() -> Self {
        SweepConfig {
            seeds: vec![1, 2],
            threads: 0,
            cache_dir: None,
        }
    }

    /// Enables the persistent result cache under `dir`.
    pub fn cached(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// The figure binaries' shared configuration: `--quick` selects the
    /// 2-seed smoke set, `--jobs N` pins the worker-thread count
    /// (default: one per available core), and the persistent cache lives
    /// under `target/sweep-cache` (`--cache-dir PATH` relocates it,
    /// `--no-cache` disables it).
    ///
    /// # Panics
    ///
    /// Panics when `--cache-dir` is given without a path (a silently
    /// defaulted directory would make a sharding flow re-simulate
    /// everything and report confusing misses), or when `--jobs` is
    /// given without a positive integer.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let no_cache = args.iter().any(|a| a == "--no-cache");
        let cache_dir = match args.iter().position(|a| a == "--cache-dir") {
            Some(i) => match args.get(i + 1) {
                Some(path) if !path.starts_with("--") => path.clone(),
                _ => panic!("--cache-dir needs a path"),
            },
            None => "target/sweep-cache".into(),
        };
        let mut config = if quick {
            SweepConfig::quick()
        } else {
            SweepConfig::default()
        };
        config.threads = jobs_from(&args);
        if no_cache {
            config
        } else {
            config.cached(cache_dir)
        }
    }

    /// True when `--list` was given: print each cell's canonical key,
    /// cache status and encoded experiment instead of simulating (the
    /// dry-run that feeds `sweep_worker` shard files).
    pub fn list_requested() -> bool {
        std::env::args().any(|a| a == "--list")
    }
}

/// Parses `--jobs N` from an argv slice: `0` (auto — one worker per
/// available core) when the flag is absent. Shared by every binary that
/// fans simulation out over threads (`fig*`, `bench_engine`,
/// `sweep_worker`).
///
/// # Panics
///
/// Panics when `--jobs` is present without a positive integer — a
/// silently defaulted job count would hide a typo in a benchmark
/// command line.
pub fn jobs_from(args: &[String]) -> usize {
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => panic!("--jobs needs a positive integer"),
        },
        None => 0,
    }
}

/// Result of one sweep point, averaged over seeds.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The sweep coordinate.
    pub x_label: String,
    /// Scheduler name.
    pub scheduler: &'static str,
    /// Seed-averaged six-series row.
    pub mean: FigureRow,
    /// Per-seed rows (for dispersion).
    pub rows: Vec<FigureRow>,
    /// Mean join ratio across seeds (sanity signal).
    pub join_ratio: f64,
    /// Mean packets generated.
    pub generated: f64,
}

impl PointResult {
    /// 95% confidence half-width of the PDR across seeds.
    pub fn pdr_ci95(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| r.pdr_percent)
            .collect::<Summary>()
            .ci95_half_width()
    }
}

/// All results of a figure sweep.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Human-readable name of the x axis ("traffic (ppm/node)", …).
    pub x_axis: String,
    /// Results in input order.
    pub points: Vec<PointResult>,
    /// Cells served from the persistent cache.
    pub cache_hits: usize,
    /// Cells that had to be simulated (and were written back when
    /// caching is enabled).
    pub cache_misses: usize,
}

impl SweepResults {
    /// The distinct x labels in first-appearance order.
    pub fn x_labels(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.x_label) {
                seen.push(p.x_label.clone());
            }
        }
        seen
    }

    /// The distinct scheduler names in first-appearance order.
    pub fn schedulers(&self) -> Vec<&'static str> {
        let mut seen = Vec::new();
        for p in &self.points {
            if !seen.contains(&p.scheduler) {
                seen.push(p.scheduler);
            }
        }
        seen
    }

    /// The point for (scheduler, x), if present.
    pub fn get(&self, scheduler: &str, x: &str) -> Option<&PointResult> {
        self.points
            .iter()
            .find(|p| p.scheduler == scheduler && p.x_label == x)
    }
}

/// One cached cell: what [`PointResult`] needs per seed.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CellResult {
    row: FigureRow,
    join_ratio: f64,
    generated: u64,
}

/// FNV-1a over `bytes`, from an arbitrary offset basis (two different
/// bases give two independent 64-bit digests — 128 bits of key).
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The cache key of an encoded experiment.
fn key_of_bytes(encoded: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a(encoded, 0xcbf2_9ce4_8422_2325),
        fnv1a(encoded, 0x9ae1_6a3b_2f90_404f),
    )
}

/// The cache key of one cell: a 128-bit FNV-1a digest of the
/// experiment's canonical byte encoding. Stable across processes,
/// hosts and runs — the canonical bytes contain every input that can
/// affect the simulation (and the encoding schema version), nothing
/// else.
pub fn cell_key(experiment: &Experiment) -> String {
    key_of_bytes(&experiment.encode())
}

/// Loads a cached cell, or `None` on any mismatch (treated as a miss).
fn cache_load(dir: &Path, key: &str) -> Option<CellResult> {
    let text = std::fs::read_to_string(dir.join(key)).ok()?;
    let mut lines = text.lines();
    if lines.next()? != CACHE_SCHEMA {
        return None;
    }
    let _human = lines.next()?; // descriptive line, not parsed
    let mut values = lines.next()?.split_whitespace();
    let mut next_f64 = || -> Option<f64> {
        let bits = u64::from_str_radix(values.next()?, 16).ok()?;
        Some(f64::from_bits(bits))
    };
    let row = FigureRow {
        pdr_percent: next_f64()?,
        delay_ms: next_f64()?,
        loss_per_min: next_f64()?,
        duty_cycle_percent: next_f64()?,
        queue_loss: next_f64()?,
        received_per_min: next_f64()?,
    };
    let join_ratio = next_f64()?;
    let generated = u64::from_str_radix(values.next()?, 16).ok()?;
    Some(CellResult {
        row,
        join_ratio,
        generated,
    })
}

/// Writes a finished cell; errors are ignored (the cache is an
/// optimization, never a correctness dependency). The write goes
/// through a per-process temp file + rename so concurrent
/// `sweep_worker` processes filling the same directory can never
/// expose a half-written cell.
fn cache_store(dir: &Path, key: &str, experiment: &Experiment, c: &CellResult) {
    let r = &c.row;
    let body = format!(
        "{CACHE_SCHEMA}\n{} {} seed {}\n{:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:x}\n",
        experiment.scenario.name(),
        experiment.scheduler.name(),
        experiment.run.seed,
        r.pdr_percent.to_bits(),
        r.delay_ms.to_bits(),
        r.loss_per_min.to_bits(),
        r.duty_cycle_percent.to_bits(),
        r.queue_loss.to_bits(),
        r.received_per_min.to_bits(),
        c.join_ratio.to_bits(),
        c.generated,
    );
    let tmp = dir.join(format!("{key}.tmp-{}", std::process::id()));
    let write = std::fs::File::create(&tmp)
        .and_then(|mut f| f.write_all(body.as_bytes()))
        .and_then(|()| std::fs::rename(&tmp, dir.join(key)));
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Simulates one cell.
fn run_cell(experiment: &Experiment) -> CellResult {
    let report = experiment.run();
    CellResult {
        row: report.row,
        join_ratio: report.join_ratio,
        generated: report.generated,
    }
}

/// True if `experiment`'s cell is already present (and readable) in the
/// cache under `dir`. Never simulates.
pub fn probe_cached(dir: &Path, experiment: &Experiment) -> bool {
    cache_load(dir, &cell_key(experiment)).is_some()
}

/// Guarantees `experiment`'s cell exists in the cache under `dir`,
/// simulating and storing it on a miss. Returns `true` when the cell
/// was already cached — the `sweep_worker` primitive.
///
/// # Panics
///
/// Panics if `dir` cannot be created.
pub fn ensure_cached(dir: &Path, experiment: &Experiment) -> bool {
    std::fs::create_dir_all(dir).expect("cache dir must be creatable");
    let key = cell_key(experiment);
    if cache_load(dir, &key).is_some() {
        return true;
    }
    let cell = run_cell(experiment);
    cache_store(dir, &key, experiment, &cell);
    false
}

/// Renders a sweep's cells as shard-file lines without simulating
/// anything: one line per distinct cell —
/// `<key> <hit|miss> <hex-encoded experiment>` — against
/// `config.cache_dir` (no cache dir ⇒ everything is a miss). Cells
/// shared between points (e.g. a clean column reused across figures)
/// are emitted once.
pub fn render_shard_list(points: &[SweepPoint], config: &SweepConfig) -> String {
    let mut out = String::new();
    let mut seen = std::collections::BTreeSet::new();
    for point in points {
        for &seed in &config.seeds {
            let exp = point.experiment.with_seed(seed);
            let key = cell_key(&exp);
            if !seen.insert(key.clone()) {
                continue;
            }
            let hit = config
                .cache_dir
                .as_deref()
                .is_some_and(|dir| cache_load(dir, &key).is_some());
            let status = if hit { "hit" } else { "miss" };
            out.push_str(&format!("{key} {status} {}\n", exp.encode_hex()));
        }
    }
    out
}

/// Runs every `(point, seed)` cell, in parallel, and averages per
/// point. With [`SweepConfig::cache_dir`] set, cells whose experiment
/// is unchanged are served from the persistent cache instead of
/// simulated.
///
/// # Panics
///
/// Panics if `points` or `config.seeds` is empty, or if a worker thread
/// panics (experiment bugs should abort the harness loudly).
pub fn run_sweep(x_axis: &str, points: Vec<SweepPoint>, config: &SweepConfig) -> SweepResults {
    assert!(!points.is_empty(), "sweep needs at least one point");
    assert!(!config.seeds.is_empty(), "sweep needs at least one seed");

    let cache_dir = config.cache_dir.as_deref();
    if let Some(dir) = cache_dir {
        // Best effort: an unwritable cache degrades to plain reruns.
        let _ = std::fs::create_dir_all(dir);
    }

    // Flatten into (point index, seed) jobs.
    let jobs: Vec<(usize, u64)> = (0..points.len())
        .flat_map(|i| config.seeds.iter().map(move |&s| (i, s)))
        .collect();
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(jobs.len())
    } else {
        config.threads.min(jobs.len())
    };

    // Per-point accumulator of (seed, cell result).
    type SeedRuns = Vec<(u64, CellResult)>;
    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<SeedRuns>> = (0..points.len())
        .map(|_| std::sync::Mutex::new(Vec::new()))
        .collect();

    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (i, seed) = jobs[j];
                let experiment = points[i].experiment.with_seed(seed);
                let key = cache_dir.map(|_| cell_key(&experiment));
                let cached = match (cache_dir, &key) {
                    (Some(dir), Some(k)) => cache_load(dir, k),
                    _ => None,
                };
                let cell = match cached {
                    Some(cell) => {
                        hits.fetch_add(1, Ordering::Relaxed);
                        cell
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                        let cell = run_cell(&experiment);
                        if let (Some(dir), Some(k)) = (cache_dir, &key) {
                            cache_store(dir, k, &experiment, &cell);
                        }
                        cell
                    }
                };
                results[i]
                    .lock()
                    .expect("no poisoned result lock")
                    .push((seed, cell));
            });
        }
    })
    .expect("sweep worker panicked");

    let point_results = points
        .iter()
        .zip(results)
        .map(|(point, cell)| {
            let mut runs = cell.into_inner().expect("no poisoned result lock");
            runs.sort_by_key(|(seed, _)| *seed); // deterministic order
            let rows: Vec<FigureRow> = runs.iter().map(|(_, c)| c.row).collect();
            PointResult {
                x_label: point.x_label.clone(),
                scheduler: point.experiment.scheduler.name(),
                mean: FigureRow::mean(rows.iter()),
                join_ratio: runs.iter().map(|(_, c)| c.join_ratio).sum::<f64>() / runs.len() as f64,
                generated: runs.iter().map(|(_, c)| c.generated as f64).sum::<f64>()
                    / runs.len() as f64,
                rows,
            }
        })
        .collect();

    SweepResults {
        x_axis: x_axis.to_string(),
        points: point_results,
        cache_hits: hits.into_inner(),
        cache_misses: misses.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_workload::{
        Experiment, NoiseBurst, Overlay, RunSpec, ScenarioSpec, SchedulerKind, ENCODING_VERSION,
    };

    fn tiny_experiment(ppm: f64) -> Experiment {
        Experiment::new(ScenarioSpec::star(2), SchedulerKind::minimal(8)).with_run(RunSpec {
            traffic_ppm: ppm,
            warmup_secs: 20,
            measure_secs: 30,
            seed: 0,
            ..RunSpec::default()
        })
    }

    fn tiny_points() -> Vec<SweepPoint> {
        vec![
            SweepPoint {
                x_label: "10".into(),
                experiment: tiny_experiment(10.0),
            },
            SweepPoint {
                x_label: "20".into(),
                experiment: tiny_experiment(20.0),
            },
        ]
    }

    #[test]
    fn sweep_runs_and_averages() {
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 2,
            cache_dir: None,
        };
        let results = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(results.points.len(), 2);
        assert_eq!(results.x_labels(), vec!["10", "20"]);
        assert_eq!(results.schedulers(), vec!["minimal"]);
        for p in &results.points {
            assert_eq!(p.rows.len(), 2, "one row per seed");
            assert!(p.generated > 0.0);
            assert!(p.join_ratio > 0.0);
        }
        assert!(results.get("minimal", "10").is_some());
        assert!(results.get("minimal", "99").is_none());
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let one = SweepConfig {
            seeds: vec![7],
            threads: 1,
            cache_dir: None,
        };
        let many = SweepConfig {
            seeds: vec![7],
            threads: 4,
            cache_dir: None,
        };
        let a = run_sweep("x", tiny_points(), &one);
        let b = run_sweep("x", tiny_points(), &many);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.mean, pb.mean, "thread count must not affect results");
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_sweep_rejected() {
        let _ = run_sweep("x", vec![], &SweepConfig::default());
    }

    /// A throwaway cache directory, unique per test, emptied on entry.
    fn scratch_cache(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("gtt-sweep-cache-test-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn second_identical_sweep_is_served_from_cache() {
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 2,
            cache_dir: None,
        }
        .cached(scratch_cache("identical"));
        let first = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
        assert_eq!(first.cache_misses, 4, "2 points x 2 seeds");
        let second = run_sweep("traffic", tiny_points(), &cfg);
        assert_eq!(second.cache_hits, 4, "warm cache must serve every cell");
        assert_eq!(second.cache_misses, 0);
        for (a, b) in first.points.iter().zip(&second.points) {
            assert_eq!(a.mean, b.mean, "cached rows must average identically");
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.join_ratio, b.join_ratio);
            assert_eq!(a.generated, b.generated);
        }
    }

    #[test]
    fn changed_inputs_invalidate_exactly_their_cells() {
        let cfg = SweepConfig {
            seeds: vec![1],
            threads: 1,
            cache_dir: None,
        }
        .cached(scratch_cache("invalidate"));
        let _ = run_sweep("traffic", tiny_points(), &cfg);
        // Change one point's traffic rate: only that cell re-runs.
        let mut points = tiny_points();
        points[1].experiment.run.traffic_ppm = 25.0;
        let second = run_sweep("traffic", points, &cfg);
        assert_eq!(second.cache_hits, 1, "unchanged point still cached");
        assert_eq!(second.cache_misses, 1, "changed point re-ran");
        // An overlay is part of the key too.
        let mut points = tiny_points();
        points[0]
            .experiment
            .overlays
            .push(Overlay::Noise(NoiseBurst::wifi_like()));
        let third = run_sweep("traffic", points, &cfg);
        assert_eq!(third.cache_misses, 1, "noisy variant is a distinct cell");
    }

    /// Pins the key derivation across runs, processes and hosts: the
    /// canonical encoding has no ambient inputs, so this literal can
    /// only change when the encoding (or its schema version) does —
    /// which is exactly when every cached cell *should* be invalidated.
    #[test]
    fn cell_keys_are_stable_across_runs() {
        let exp = tiny_experiment(10.0).with_seed(1);
        assert_eq!(cell_key(&exp), cell_key(&exp.clone()));
        // Schema v2 (City topologies) — the v1 literal was
        // 15eaf8ff5efae94710c8f412083bbde5.
        assert_eq!(cell_key(&exp), "419329df2103b9e4b44e479e36d916ee");
    }

    /// An encoding-schema bump must change every key: old cells become
    /// unreachable instead of silently served across a layout change.
    #[test]
    fn schema_version_bump_invalidates_cached_cells() {
        let dir = scratch_cache("schema-bump");
        let exp = tiny_experiment(10.0).with_seed(1);
        assert!(!ensure_cached(&dir, &exp), "cold cache computes");
        assert!(ensure_cached(&dir, &exp), "warm cache hits");
        let bumped_key = key_of_bytes(&exp.encode_with_version(ENCODING_VERSION + 1));
        assert_ne!(
            bumped_key,
            cell_key(&exp),
            "a version bump must re-key every cell"
        );
        assert!(
            cache_load(&dir, &bumped_key).is_none(),
            "the bumped key must miss the old cell"
        );
        // The file-format schema line is the second guard: a cell
        // written by a different CACHE_SCHEMA is a miss, not a parse.
        let key = cell_key(&exp);
        let stale = std::fs::read_to_string(dir.join(&key))
            .unwrap()
            .replace(CACHE_SCHEMA, "gtt-sweep-cache v0");
        std::fs::write(dir.join(&key), stale).unwrap();
        assert!(!probe_cached(&dir, &exp), "foreign schema line must miss");
    }

    /// The concrete v1 → v2 transition (City topologies): cells written
    /// by a v1 binary key under the v1 encoding and can never be served
    /// to this build — the version is part of the encoded bytes the key
    /// hashes, so no delete/migration step is needed.
    #[test]
    fn v1_cells_are_unreachable_after_the_city_schema_bump() {
        let dir = scratch_cache("schema-bump-v1");
        let exp = tiny_experiment(10.0).with_seed(1);
        let v1_key = key_of_bytes(&exp.encode_with_version(1));
        assert_ne!(v1_key, cell_key(&exp), "v1 keys differ from v2 keys");
        // Simulate a leftover v1 cell under its own key: the current
        // build never derives that key, so it stays cold.
        assert!(!ensure_cached(&dir, &exp), "cold cache computes");
        assert!(
            cache_load(&dir, &v1_key).is_none(),
            "nothing is ever served from the v1 key space"
        );
    }

    #[test]
    fn shard_list_reflects_cache_state_and_round_trips() {
        let dir = scratch_cache("shard-list");
        let cfg = SweepConfig {
            seeds: vec![1, 2],
            threads: 1,
            cache_dir: None,
        }
        .cached(dir.clone());
        let listing = render_shard_list(&tiny_points(), &cfg);
        assert_eq!(listing.lines().count(), 4, "2 points × 2 seeds, no dupes");
        // Every line decodes back to its experiment and matches its key.
        for line in listing.lines() {
            let mut fields = line.split_whitespace();
            let key = fields.next().unwrap();
            assert_eq!(fields.next(), Some("miss"), "cold cache lists misses");
            let exp = Experiment::decode_hex(fields.next().unwrap()).expect("hex decodes");
            assert_eq!(cell_key(&exp), key);
        }
        // Fill one cell: exactly that line flips to hit.
        let filled = tiny_points()[0].experiment.with_seed(2);
        ensure_cached(&dir, &filled);
        let relisted = render_shard_list(&tiny_points(), &cfg);
        assert_eq!(relisted.lines().filter(|l| l.contains(" hit ")).count(), 1);
        // Duplicate cells across points are emitted once.
        let mut dup = tiny_points();
        dup.push(dup[0].clone());
        assert_eq!(render_shard_list(&dup, &cfg).lines().count(), 4);
    }
}
