//! One verbose run with a per-node breakdown — the debugging lens used
//! while reproducing the paper (kept because it is genuinely useful).
//!
//! Usage: `diagnose [ppm] [gt|orch|min]`

use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn main() {
    let ppm: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30.0);
    let sched_name = std::env::args().nth(2).unwrap_or_else(|| "gt".into());
    let sched = if sched_name.starts_with("orch") {
        SchedulerKind::orchestra_default()
    } else if sched_name.starts_with("min") {
        SchedulerKind::minimal(32)
    } else {
        SchedulerKind::gt_tsch_default()
    };
    let exp = Experiment::new(ScenarioSpec::two_dodag(7), sched.clone()).with_run(RunSpec {
        traffic_ppm: ppm,
        warmup_secs: 120,
        measure_secs: 300,
        seed: 3,
        ..RunSpec::default()
    });
    let mut net = exp.build_network();
    let r = exp.run_on(&mut net);
    println!(
        "{} @ {} ppm: PDR={:.1}% delay={:.0}ms loss/min={:.1} duty={:.1}% qloss={:.1} recv={:.0}",
        sched.name(),
        ppm,
        r.row.pdr_percent,
        r.row.delay_ms,
        r.row.loss_per_min,
        r.row.duty_cycle_percent,
        r.row.queue_loss,
        r.row.received_per_min
    );
    println!(
        "generated={} delivered={} hops={:.2}",
        r.generated, r.delivered, r.mean_hops
    );
    println!(
        "{:>4} {:>5} {:>8} {:>6} {:>6} {:>7} {:>7} {:>7} {:>6} {:>7} {:>7} {:>8}",
        "node",
        "root",
        "parent",
        "rank",
        "cells",
        "qloss",
        "retry",
        "routed",
        "coll",
        "utx",
        "uack",
        "duty%"
    );
    for n in &r.per_node {
        println!(
            "{:>4} {:>5} {:>8} {:>6} {:>6} {:>7} {:>7} {:>7} {:>6} {:>7} {:>7} {:>8.1}",
            n.id.to_string(),
            n.is_root,
            n.parent.map(|p| p.to_string()).unwrap_or("-".into()),
            n.rank.raw(),
            n.scheduled_cells,
            n.queue_loss,
            n.retry_drops,
            n.routing_drops,
            n.collisions_heard,
            n.counters.unicast_tx,
            n.counters.unicast_acked,
            n.duty_cycle * 100.0
        );
    }
    for id in [0u16, 2, 5] {
        let node = net.node(gtt_net::NodeId::new(id));
        println!(
            "--- n{id} (6P done={} fail={}): {}",
            node.sixtop.completed_transactions(),
            node.sixtop.failed_transactions(),
            node.scheduler.debug_summary()
        );
        for (h, f) in node.mac.schedule().iter() {
            for c in f.cells() {
                println!("  {h} {c}");
            }
        }
    }
}
