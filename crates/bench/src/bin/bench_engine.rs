//! Measures the event-driven engine core against the `naive-step`
//! oracle and emits `BENCH_engine.json`.
//!
//! Usage: `bench_engine [--quick] [--out PATH] [--only SUBSTR] [--stats]
//! [--jobs N]`
//!
//! * `--quick` — shorter simulated window (CI smoke budget). Also skips
//!   the `city_10k` metrics row (below).
//! * `--out PATH` — where to write the JSON (default `BENCH_engine.json`
//!   in the current directory).
//! * `--only SUBSTR` — run only the cases whose `name/scheduler/ppm`
//!   label contains `SUBSTR` (profiling aid; gates are skipped).
//! * `--stats` — per-run activity diagnostics (awake and tx per slot).
//! * `--jobs N` — measure up to N cases concurrently. Reporting-only
//!   mode: concurrent cases contend for cores, so wall-clock timings
//!   lose fidelity and the regression gates are skipped (the JSON is
//!   still written). Use `--jobs 1` (the default) for gated runs.
//!
//! Built with the `parallel` feature, multi-island cases additionally
//! report the island-parallel stepping leg (`parallel_slots_per_sec`,
//! `parallel_speedup` vs the sequential event core). These rows are
//! never gated: the gating host is single-vCPU, where scoped threads
//! can only add overhead — the honest number there is ≤ 1×.
//!
//! Every case is one declarative [`Experiment`]; the same value builds
//! the event-core and the oracle network (via
//! [`Experiment::network_builder`] + `naive_stepping`), and overlay
//! cases drive both cores through the identical overlay timeline. For
//! each case the same seed is simulated once per core; reported
//! `slots_per_sec` is simulated-slots / wall-seconds and `speedup` is
//! the ratio event / naive. The sparse-traffic 120-node grid is the
//! slot-skipping acceptance case (target ≥ 5×) and the Orchestra
//! 120-node star is the multi-slotframe passive-listen acceptance case
//! (target ≥ 1.6×, vs the ~1.05× the always-wake core managed on
//! Orchestra schedules); the minimal-schedule dense star is included
//! honestly as the regime where slot skipping cannot win big (a shared
//! cell in every slot keeps every node listening). The mobility and
//! duty-cycle overlay rows are reporting-only (no gate): they track how
//! the overlay timeline costs scale, not an optimization target.
//!
//! Full runs additionally measure the `city_10k` metrics row: 60 s of
//! the 100 × 100 city at 30 ppm on the event core alone (the naive
//! oracle is infeasible at 10k nodes), reporting slots/s plus the
//! packet-tracker footprint. Unlike the wall-clock speedup gates, its
//! gate — ≤ 12 bytes per tracked packet — is host-independent: the
//! footprint is computed from vector capacities, not timings.

use std::io::Write as _;
use std::time::Instant;

use gtt_net::{NodeId, Position};
use gtt_sim::SimDuration;
use gtt_workload::{
    DutyCycleBudget, Experiment, Overlay, RunSpec, ScenarioSpec, SchedulerKind, StepMobility,
};

/// Wall-clock floor for the `city-1k-mobility` row, as a fraction of
/// the static `city-1k` event rate measured in the same matrix. The
/// incremental `set_position` makes 300 inter-cluster hops nearly free
/// (~0.99 retention measured), while the old O(n²)-per-hop rebuild
/// costs whole seconds at 1 000 nodes and drops retention below ~0.3 —
/// and because both rows run on the same host, the ratio gate holds on
/// slow CI runners where an absolute slots/s floor would not.
const CITY_MOBILITY_RETENTION: f64 = 0.5;

/// Tracker-memory gate for the `city_10k` row: amortized bytes per
/// tracked packet (8-byte generation time + 1 delivered bit per packet
/// plus lane headers). Host-independent — measured from capacities.
const CITY_10K_BYTES_PER_PACKET: f64 = 12.0;

/// Simulated window of the `city_10k` row. Fixed (not tied to
/// `sim_secs`): 60 s at 30 ppm is enough traffic to amortize the
/// per-lane headers, and 10 000 nodes cost real wall-clock per second.
const CITY_10K_SIM_SECS: u64 = 60;
const CITY_10K_TRAFFIC_PPM: f64 = 30.0;

/// The `city_10k` metrics row: slots/s on the event core plus the
/// packet-tracker footprint the memory gate checks.
struct City10k {
    nodes: usize,
    sim_slots: u64,
    event_slots_per_sec: f64,
    footprint: gtt_metrics::TrackerFootprint,
}

/// Measures the city-10k row (one run, event core only: at 10k nodes
/// the naive oracle would take longer than the rest of the matrix
/// combined, and the gated quantity is memory, not a speedup).
fn city_10k_row() -> City10k {
    let exp = Experiment::new(
        ScenarioSpec::city(100, 100),
        SchedulerKind::gt_tsch_default(),
    )
    .with_run(RunSpec {
        traffic_ppm: CITY_10K_TRAFFIC_PPM,
        warmup_secs: 0,
        measure_secs: CITY_10K_SIM_SECS,
        seed: 1,
        low_power: true,
    });
    let nodes = exp.scenario.build().topology.len();
    let mut net = exp.network_builder().build();
    let start = Instant::now();
    let _ = exp.run_on(&mut net);
    let secs = start.elapsed().as_secs_f64();
    City10k {
        nodes,
        sim_slots: net.asn().raw(),
        event_slots_per_sec: net.asn().raw() as f64 / secs,
        footprint: net.tracker().footprint(),
    }
}

struct Case {
    /// Row label (usually the scenario name; overlay rows tag it).
    label: &'static str,
    experiment: Experiment,
}

struct Measurement {
    name: String,
    scheduler: &'static str,
    traffic_ppm: f64,
    low_power: bool,
    nodes: usize,
    sim_slots: u64,
    event_slots_per_sec: f64,
    naive_slots_per_sec: f64,
    speedup: f64,
    /// Island-parallel leg (`parallel` feature, multi-island cases
    /// only): slots/s and speedup vs the sequential event core.
    parallel: Option<(f64, f64)>,
}

/// A case experiment: seed 1, no warm-up — the measured window *is* the
/// simulated time (`measure_secs` is patched per run length).
fn case(
    scenario: ScenarioSpec,
    scheduler: SchedulerKind,
    traffic_ppm: f64,
    low_power: bool,
) -> Experiment {
    Experiment::new(scenario, scheduler).with_run(RunSpec {
        traffic_ppm,
        warmup_secs: 0,
        measure_secs: 0, // patched in time_run
        seed: 1,
        low_power,
    })
}

/// Wall-seconds to simulate `sim` of the case on one core.
fn time_run(case: &Case, sim: SimDuration, naive: bool) -> f64 {
    let mut exp = case.experiment.clone();
    exp.run.measure_secs = sim.as_micros() / 1_000_000;
    let mut builder = exp.network_builder();
    if naive {
        builder = builder.naive_stepping();
    }
    let mut net = builder.build();
    let start = Instant::now();
    if exp.overlays.is_empty() {
        net.run_for(sim);
    } else {
        // Overlay rows go through the shared timeline driver, so the
        // measured time includes the overlay machinery itself.
        let _ = exp.run_on(&mut net);
    }
    let secs = start.elapsed().as_secs_f64();
    if std::env::args().any(|a| a == "--stats") {
        let (mut awake, mut slots, mut txs, mut idle) = (0u64, 0u64, 0u64, 0u64);
        for node in net.nodes() {
            let c = node.mac.counters();
            awake += c.tx_slots + c.rx_busy_slots + c.rx_idle_slots;
            txs += c.tx_slots;
            idle += c.rx_idle_slots;
            slots += c.slots;
        }
        let total_slots = slots / net.nodes().len() as u64;
        eprintln!(
            "    [{}] {} awake {:.3} tx/slot {:.3} idle/slot {:.2} ns/slot {:.0}",
            if naive { "naive" } else { "event" },
            case.label,
            awake as f64 / slots.max(1) as f64,
            txs as f64 / total_slots.max(1) as f64,
            idle as f64 / total_slots.max(1) as f64,
            secs * 1e9 / total_slots.max(1) as f64,
        );
    }
    secs
}

/// Wall-seconds for the island-parallel leg: the same sequential event
/// core per island, scoped threads across islands.
#[cfg(feature = "parallel")]
fn time_run_parallel(case: &Case, sim: SimDuration) -> f64 {
    let mut exp = case.experiment.clone();
    exp.run.measure_secs = sim.as_micros() / 1_000_000;
    let mut net = exp.network_builder().parallel_stepping().build();
    let start = Instant::now();
    if exp.overlays.is_empty() {
        net.run_for(sim);
    } else {
        let _ = exp.run_on(&mut net);
    }
    start.elapsed().as_secs_f64()
}

/// Best-of-three island-parallel timing for multi-island cases, as
/// (slots/s, speedup vs the sequential event core). `None` on
/// single-island cases (the parallel path falls straight back to the
/// sequential core — the row would just duplicate `event_slots_per_sec`)
/// and in builds without the `parallel` feature.
#[cfg(feature = "parallel")]
fn parallel_leg(
    case: &Case,
    sim: SimDuration,
    sim_slots: u64,
    event_secs: f64,
) -> Option<(f64, f64)> {
    let islands = case
        .experiment
        .scenario
        .build()
        .topology
        .audibility_islands();
    if islands.len() < 2 {
        return None;
    }
    let mut secs = f64::INFINITY;
    for _ in 0..3 {
        secs = secs.min(time_run_parallel(case, sim));
    }
    Some((sim_slots as f64 / secs, event_secs / secs))
}

#[cfg(not(feature = "parallel"))]
fn parallel_leg(_: &Case, _: SimDuration, _: u64, _: f64) -> Option<(f64, f64)> {
    None
}

fn measure(case: &Case, sim: SimDuration, slot: SimDuration) -> Measurement {
    let sim_slots = sim.as_micros() / slot.as_micros();
    // Best of three per core, with the event and naive repetitions
    // *interleaved*: the first pass faults in code paths, min-of-N
    // filters out scheduler noise from the shared host, and pairing the
    // legs in time keeps a noisy few minutes from skewing one core's
    // numbers but not the other's (the ratio is the product).
    let (mut event_secs, mut naive_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        event_secs = event_secs.min(time_run(case, sim, false));
        naive_secs = naive_secs.min(time_run(case, sim, true));
    }
    Measurement {
        name: case.label.to_string(),
        scheduler: case.experiment.scheduler.name(),
        traffic_ppm: case.experiment.run.traffic_ppm,
        low_power: case.experiment.run.low_power,
        nodes: case.experiment.scenario.build().topology.len(),
        sim_slots,
        event_slots_per_sec: sim_slots as f64 / event_secs,
        naive_slots_per_sec: sim_slots as f64 / naive_secs,
        speedup: naive_secs / event_secs,
        parallel: parallel_leg(case, sim, sim_slots, event_secs),
    }
}

fn json(measurements: &[Measurement], sim_secs: u64, city_10k: Option<&City10k>) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"engine_slots_per_sec\",\n");
    out.push_str(&format!("  \"sim_secs\": {sim_secs},\n"));
    out.push_str("  \"slot_ms\": 15,\n");
    out.push_str("  \"scenarios\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let parallel = match m.parallel {
            Some((sps, speedup)) => format!(
                ", \"parallel_slots_per_sec\": {sps:.0}, \"parallel_speedup\": {speedup:.2}"
            ),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"scheduler\": \"{}\", \"nodes\": {}, \
             \"traffic_ppm\": {}, \"low_power\": {}, \"sim_slots\": {}, \
             \"event_slots_per_sec\": {:.0}, \"naive_slots_per_sec\": {:.0}, \
             \"speedup\": {:.2}{}}}{}\n",
            m.name,
            m.scheduler,
            m.nodes,
            m.traffic_ppm,
            m.low_power,
            m.sim_slots,
            m.event_slots_per_sec,
            m.naive_slots_per_sec,
            m.speedup,
            parallel,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]");
    if let Some(c) = city_10k {
        out.push_str(&format!(
            ",\n  \"city_10k\": {{\"nodes\": {}, \"sim_secs\": {CITY_10K_SIM_SECS}, \
             \"traffic_ppm\": {CITY_10K_TRAFFIC_PPM}, \"sim_slots\": {}, \
             \"event_slots_per_sec\": {:.0}, \"tracker_bytes\": {}, \
             \"tracker_lanes\": {}, \"tracked_packets\": {}, \
             \"bytes_per_tracked_packet\": {:.2}}}",
            c.nodes,
            c.sim_slots,
            c.event_slots_per_sec,
            c.footprint.bytes,
            c.footprint.lanes,
            c.footprint.tracked,
            c.footprint.bytes_per_tracked()
        ));
    }
    out.push_str("\n}\n");
    out
}

/// A walking tour across the 120-node grid: every 30 s one corner node
/// relocates to the far side (out of its old neighborhood entirely),
/// exercising repeated audibility rebuilds + RPL reconvergence.
fn grid_walk() -> StepMobility {
    let mut m = StepMobility::new();
    // Grid is 12 × 10 at 30 m spacing; node 119 is the far corner.
    let spots = [
        Position::new(0.0, 300.0),
        Position::new(330.0, 0.0),
        Position::new(150.0, 135.0),
        Position::new(0.0, 0.0),
    ];
    for (k, &to) in spots.iter().enumerate() {
        m = m.hop(
            SimDuration::from_secs(30 * (k as u64 + 1)),
            NodeId::new(119),
            to,
        );
    }
    m
}

/// One inter-cluster hop per simulated second across the whole window:
/// four courier leaves (the last node of clusters 0–3) cycle through the
/// ten cluster discs of `city(10, 100)`, re-partitioning the audibility
/// islands on every hop. Hops beyond the simulated window never fire,
/// so the same overlay serves `--quick` and full runs.
fn city_walk() -> StepMobility {
    let mut m = StepMobility::new();
    for s in 1..=300u64 {
        let courier = NodeId::new(((s % 4) * 100 + 99) as u16);
        // Visit cluster (s mod 10), landing 60 m into its disc (cluster
        // origins sit on a 4-wide grid at 1 km spacing).
        let cluster = s % 10;
        let to = Position::new(
            (cluster % 4) as f64 * 1_000.0 + 60.0,
            (cluster / 4) as f64 * 1_000.0 + 60.0,
        );
        m = m.hop(SimDuration::from_secs(s), courier, to);
    }
    m
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    // A flag value may not itself look like a flag: `--out --quick` is
    // a forgotten value, not a file named --quick.
    let value_of = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Some(v.clone()),
            _ => {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            }
        }
    };
    let out_path = value_of("--out").unwrap_or_else(|| "BENCH_engine.json".to_string());
    let only = value_of("--only");
    // For a timing harness the safe default is sequential: 0 (auto)
    // means 1 here, not one-per-core.
    let jobs = gtt_bench::jobs_from(&args).max(1);

    let sim_secs = if quick { 60 } else { 300 };
    let sim = SimDuration::from_secs(sim_secs);
    let slot = SchedulerKind::gt_tsch_default()
        .engine_config()
        .mac
        .slot_duration;

    let cases = [
        // The acceptance case: 120-node grid in the steady-state
        // low-power regime (EB 16 s as deployed TSCH networks run it,
        // one telemetry reading per minute).
        Case {
            label: "large-grid-120",
            experiment: case(
                ScenarioSpec::large_grid(),
                SchedulerKind::gt_tsch_default(),
                1.0,
                true,
            ),
        },
        // The same grid at the paper's experiment cadences (EB every
        // 2 s): an order of magnitude chattier, reported honestly as the
        // regime where slot skipping wins less.
        Case {
            label: "large-grid-120",
            experiment: case(
                ScenarioSpec::large_grid(),
                SchedulerKind::gt_tsch_default(),
                6.0,
                false,
            ),
        },
        Case {
            label: "large-grid-120",
            experiment: case(
                ScenarioSpec::large_grid(),
                SchedulerKind::orchestra_default(),
                6.0,
                false,
            ),
        },
        // The multi-slotframe acceptance case: 120 Orchestra nodes in a
        // single-hop star. Every node's three-frame schedule listens in
        // ~1 slot in 5, almost always to silence — the Rx-wake-bound
        // regime the cyclic-union passive-listen index targets.
        Case {
            label: "large-star-120",
            experiment: case(
                ScenarioSpec::large_star(),
                SchedulerKind::orchestra_default(),
                6.0,
                false,
            ),
        },
        // Same star in the steady-state low-power regime: sparse traffic
        // plus the deadline-driven control plane (no periodic RPL wake).
        Case {
            label: "large-star-120",
            experiment: case(
                ScenarioSpec::large_star(),
                SchedulerKind::orchestra_default(),
                1.0,
                true,
            ),
        },
        Case {
            label: "large-star-120",
            experiment: case(
                ScenarioSpec::large_star(),
                SchedulerKind::minimal(16),
                6.0,
                false,
            ),
        },
        // Dense broadcast-heavy slots: 119 minimal-schedule leaves all
        // listening on the shared cell, a handful of EB/control
        // transmitters per busy slot — the case the per-channel listener
        // index and the medium's single-transmitter fast path target.
        Case {
            label: "bcast-star-120",
            experiment: case(
                ScenarioSpec::large_star(),
                SchedulerKind::minimal(8),
                1.0,
                false,
            ),
        },
        Case {
            label: "two-dodag-7",
            experiment: case(
                ScenarioSpec::two_dodag(7),
                SchedulerKind::gt_tsch_default(),
                30.0,
                false,
            ),
        },
        // The city-scale row: 10 clustered DODAGs × 100 nodes in the
        // steady-state low-power regime. Ten radio-disjoint islands, so
        // the island-parallel leg reports real multi-thread numbers on
        // multi-core hosts.
        Case {
            label: "city-1k",
            experiment: case(
                ScenarioSpec::city(10, 100),
                SchedulerKind::gt_tsch_default(),
                1.0,
                true,
            ),
        },
        // Overlay rows (reporting-only, no gate — see module docs): the
        // sparse grid with a node walking across it every 30 s, and the
        // same grid under a tight duty budget checked every 10 s.
        Case {
            label: "mobility-grid-120",
            experiment: case(
                ScenarioSpec::large_grid(),
                SchedulerKind::gt_tsch_default(),
                6.0,
                false,
            )
            .with_overlay(Overlay::Mobility(grid_walk())),
        },
        // Mobility-heavy city row: couriers hop between clusters once
        // per simulated second, so this row prices incremental
        // `set_position` plus per-window island re-partitioning at 1 000
        // nodes. Wall-clock gated on retention vs the static city row:
        // before the spatial index every hop was an O(n²) adjacency
        // rebuild and this row could not hold the floor.
        Case {
            label: "city-1k-mobility",
            experiment: case(
                ScenarioSpec::city(10, 100),
                SchedulerKind::gt_tsch_default(),
                1.0,
                true,
            )
            .with_overlay(Overlay::Mobility(city_walk())),
        },
        Case {
            label: "duty-grid-120",
            experiment: case(
                ScenarioSpec::large_grid(),
                SchedulerKind::gt_tsch_default(),
                6.0,
                false,
            )
            .with_overlay(Overlay::DutyCycle(DutyCycleBudget {
                window: SimDuration::from_secs(60),
                check: SimDuration::from_secs(10),
                max_duty_percent: 1.0,
            })),
        },
    ];

    eprintln!("bench_engine: {sim_secs} s simulated per core per scenario…");
    let selected: Vec<&Case> = cases
        .iter()
        .filter(|case| match &only {
            None => true,
            Some(filter) => format!(
                "{}/{}/{}",
                case.label,
                case.experiment.scheduler.name(),
                case.experiment.run.traffic_ppm
            )
            .contains(filter.as_str()),
        })
        .collect();
    let report = |m: &Measurement| {
        let parallel = match m.parallel {
            Some((sps, speedup)) => format!("  parallel {sps:>9.0} slots/s ({speedup:.2}x)"),
            None => String::new(),
        };
        eprintln!(
            "  {:<17} {:<10} {:>4} nodes  event {:>9.0} slots/s  naive {:>9.0} slots/s  speedup {:>5.2}x{}",
            m.name,
            m.scheduler,
            m.nodes,
            m.event_slots_per_sec,
            m.naive_slots_per_sec,
            m.speedup,
            parallel
        );
    };
    let measurements: Vec<Measurement> = if jobs > 1 {
        // Reporting-only: concurrent cases contend for cores, so the
        // wall-clock timings (and thus the gates) are not trustworthy.
        eprintln!("  --jobs {jobs}: cases measured concurrently, timing gates skipped");
        let slots: Vec<std::sync::Mutex<Option<Measurement>>> = selected
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..jobs.min(selected.len()) {
                scope.spawn(|_| loop {
                    let j = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if j >= selected.len() {
                        break;
                    }
                    let m = measure(selected[j], sim, slot);
                    report(&m);
                    *slots[j].lock().expect("no poisoned case slot") = Some(m);
                });
            }
        })
        .expect("bench case thread panicked");
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("no poisoned case slot")
                    .expect("every case measured")
            })
            .collect()
    } else {
        selected
            .iter()
            .map(|case| {
                let m = measure(case, sim, slot);
                report(&m);
                m
            })
            .collect()
    };

    if only.is_some() {
        // Profiling mode: no JSON, no gates.
        return;
    }

    let headline = &measurements[0];
    println!(
        "sparse 120-node grid speedup: {:.2}x (target >= 5x)",
        headline.speedup
    );
    // The multi-slotframe acceptance row is the *Rx-wake-bound* star:
    // sparse low-power traffic, where Orchestra's listen slots vastly
    // outnumber audible transmissions. The always-wake core managed only
    // ~1.05x on Orchestra runs, so 1.6x here certifies a >1.5x further
    // gain. The chatty 6-ppm star (~1.8 transmissions per slot,
    // activity-bound) gates at 1.8x below, the output-sensitive
    // resolution acceptance threshold.
    let orchestra_star = measurements
        .iter()
        .find(|m| m.scheduler == "orchestra" && m.name == "large-star-120" && m.low_power)
        .expect("orchestra low-power star case must be in the matrix");
    println!(
        "orchestra 120-node low-power star speedup: {:.2}x (target >= 1.6x; \
         the always-wake core measured ~1.05x on orchestra runs)",
        orchestra_star.speedup
    );
    // The activity-bound row the output-sensitive slot resolution
    // targets: ~1.8 transmissions/slot kept the pre-grouping engine at
    // ~1.4x; per-channel resolution, zero-alloc slot buffers and
    // closed-form backoff settling lift it past 1.8x.
    let chatty_star = measurements
        .iter()
        .find(|m| m.scheduler == "orchestra" && m.name == "large-star-120" && !m.low_power)
        .expect("orchestra chatty star case must be in the matrix");
    println!(
        "orchestra 120-node chatty star speedup: {:.2}x (target >= 1.8x; \
         was activity-bound at ~1.4x before output-sensitive resolution)",
        chatty_star.speedup
    );
    // The dense broadcast-heavy row: many common-cell listeners, few
    // transmitters — the per-channel listener index's home turf.
    let bcast_star = measurements
        .iter()
        .find(|m| m.name == "bcast-star-120")
        .expect("broadcast-heavy star case must be in the matrix");
    println!(
        "broadcast-heavy 120-node star speedup: {:.2}x (target >= 2.5x)",
        bcast_star.speedup
    );
    // The city mobility row gates on wall-clock retention vs the static
    // city row: the claim under test is that a hop costs O(k log k)
    // bucket-local work, so 300 inter-cluster hops across a 1 000-node
    // city must not meaningfully slow the event core down.
    let city_static = measurements
        .iter()
        .find(|m| m.name == "city-1k")
        .expect("static city case must be in the matrix");
    let city_mob = measurements
        .iter()
        .find(|m| m.name == "city-1k-mobility")
        .expect("city mobility case must be in the matrix");
    let retention = city_mob.event_slots_per_sec / city_static.event_slots_per_sec;
    println!(
        "city-1k mobility retention: {retention:.2} of the static rate \
         ({:.0} vs {:.0} slots/s, floor >= {CITY_MOBILITY_RETENTION})",
        city_mob.event_slots_per_sec, city_static.event_slots_per_sec
    );

    // The city-10k metrics row: full runs only — 10k nodes for 60 s is
    // beyond the --quick CI budget (the `city --mem-smoke` CI step gates
    // the same quantity there).
    let city_10k = if quick {
        None
    } else {
        eprintln!("bench_engine: city-10k metrics row ({CITY_10K_SIM_SECS} s, event core)…");
        let c = city_10k_row();
        eprintln!(
            "  {:<17} {:<10} {:>4} nodes  event {:>9.0} slots/s  tracker {} B / {} packets ({:.2} B/packet, {} lanes)",
            "city-10k",
            "gt-tsch",
            c.nodes,
            c.event_slots_per_sec,
            c.footprint.bytes,
            c.footprint.tracked,
            c.footprint.bytes_per_tracked(),
            c.footprint.lanes
        );
        Some(c)
    };

    let body = json(&measurements, sim_secs, city_10k.as_ref());
    let mut file = std::fs::File::create(&out_path)
        .unwrap_or_else(|e| panic!("cannot create {out_path}: {e}"));
    file.write_all(body.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    let mut failed = false;
    if headline.speedup < 5.0 {
        eprintln!("WARNING: sparse-grid speedup below the 5x target");
        failed = true;
    }
    if orchestra_star.speedup < 1.6 {
        eprintln!("WARNING: orchestra-star speedup below the 1.6x target");
        failed = true;
    }
    if chatty_star.speedup < 1.8 {
        eprintln!("WARNING: chatty orchestra-star speedup below the 1.8x target");
        failed = true;
    }
    if bcast_star.speedup < 2.5 {
        eprintln!("WARNING: broadcast-heavy star speedup below the 2.5x target");
        failed = true;
    }
    if retention < CITY_MOBILITY_RETENTION {
        eprintln!("WARNING: city mobility retention below the {CITY_MOBILITY_RETENTION} floor");
        failed = true;
    }
    if let Some(c) = &city_10k {
        if c.footprint.bytes_per_tracked() > CITY_10K_BYTES_PER_PACKET {
            eprintln!(
                "WARNING: city-10k tracker footprint {:.2} B/packet above the \
                 {CITY_10K_BYTES_PER_PACKET} B budget",
                c.footprint.bytes_per_tracked()
            );
            failed = true;
        }
    }
    // Only full sequential runs gate: --quick (60 s sim, used by the CI
    // smoke job) is there for the wall-clock budget, a short window on a
    // noisy shared runner is no basis for failing the pipeline, and
    // --jobs > 1 runs contend for cores (reporting-only by design).
    if failed && !quick && jobs == 1 {
        std::process::exit(1);
    }
}
