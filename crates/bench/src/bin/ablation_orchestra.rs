//! Ablation: Orchestra's receiver-based vs sender-based unicast cells.
//!
//! The paper evaluates the receiver-based mode (all children share the
//! parent's Rx slot — the §VIII bottleneck). Sender-based cells give
//! every sender its own slot at the cost of the receiver listening in
//! every sender's slot; this ablation quantifies that trade-off on the
//! Fig. 8 network.

use gtt_bench::{render_figure_tables, SweepConfig, SweepPoint};
use gtt_orchestra::OrchestraConfig;
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    let mut points = Vec::new();
    for &ppm in &[30.0, 75.0, 120.0, 165.0] {
        for sender_based in [false, true] {
            points.push(SweepPoint {
                x_label: format!("{ppm:.0}"),
                experiment: Experiment::new(
                    ScenarioSpec::two_dodag(7),
                    SchedulerKind::Orchestra(OrchestraConfig {
                        sender_based,
                        ..OrchestraConfig::paper_default()
                    }),
                )
                .with_run(RunSpec {
                    traffic_ppm: ppm,
                    warmup_secs: 120,
                    measure_secs: 300,
                    seed: 0,
                    ..RunSpec::default()
                }),
            });
        }
    }
    eprintln!(
        "running orchestra RB-vs-SB ablation ({} seeds/point)…",
        config.seeds.len()
    );
    let mut results = gtt_bench::sweep::run_sweep("ppm/node", points, &config);
    // Points alternate RB / SB per x; rename the second of each pair.
    let mut seen = std::collections::BTreeSet::new();
    for p in &mut results.points {
        if !seen.insert(p.x_label.clone()) {
            p.scheduler = "orchestra-sb";
        }
    }
    print!("{}", render_figure_tables("O", &results));
}
