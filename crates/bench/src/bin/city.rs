//! City-scale smoke benchmark: proves the 10k-node regime is open.
//!
//! Usage: `city [--quick] [--move-bench] [--mem-smoke]`
//!
//! * Default / `--quick` — runs the `city-1k` (10 × 100) and `city-10k`
//!   (100 × 100) scenarios on the event core and prints wall time,
//!   slots/s, a PDR sanity line and the metrics-tracker footprint per
//!   run. `--quick` simulates 60 s per scenario (the CI smoke budget);
//!   the default is 300 s.
//! * `--move-bench` — times incremental [`Topology::set_position`] on
//!   the 10k-node city against the pre-spatial-index baseline (a full
//!   O(n²) audibility recompute per move, which is what every hop used
//!   to cost) and prints the per-move speedup.
//! * `--mem-smoke` — the memory gate: runs the 10k city for 60 s at
//!   30 ppm (enough traffic that per-lane headers amortize) and **fails**
//!   (exit 1) unless the tracker footprint stays at or under
//!   12 bytes per tracked packet *and* under a fixed 6 MB budget —
//!   proving metrics memory is O(live + bitset), not O(packets ever).
//!
//! Outside `--mem-smoke`, exit is always 0: smoke modes are
//! reporting-only, the budget gate is the CI step timeout wrapped around
//! the binary.

use std::time::Instant;

use gtt_metrics::TrackerFootprint;
use gtt_net::{NodeId, Position, Topology};
use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

/// Tracker-footprint budget enforced by `--mem-smoke`: amortized bytes
/// per tracked packet (host-independent, from vector capacities).
const MEM_GATE_BYTES_PER_PACKET: f64 = 12.0;
/// Absolute tracker budget for the 60 s / 30 ppm / 10k-node gate run:
/// ~300k tracked packets at ≤ 12 B each plus slack for lane headers.
const MEM_GATE_TOTAL_BYTES: usize = 6 << 20;

/// Simulates `sim_secs` of a city scenario on the event core and
/// reports wall time plus the measured-window PDR as a sanity check
/// that the network actually converged and delivered traffic. Returns
/// the metrics-tracker footprint for the `--mem-smoke` gate.
fn smoke(
    dodags: usize,
    nodes_per_dodag: usize,
    sim_secs: u64,
    traffic_ppm: f64,
) -> TrackerFootprint {
    let exp = Experiment::new(
        ScenarioSpec::city(dodags, nodes_per_dodag),
        SchedulerKind::gt_tsch_default(),
    )
    .with_run(RunSpec {
        traffic_ppm,
        warmup_secs: 0,
        measure_secs: sim_secs,
        seed: 1,
        low_power: true,
    });
    let mut net = exp.network_builder().build();
    let start = Instant::now();
    let report = exp.run_on(&mut net);
    let secs = start.elapsed().as_secs_f64();
    let slots = net.asn().raw();
    let fp = net.tracker().footprint();
    println!(
        "  {:<12} {:>6} nodes  {sim_secs:>4} s sim  {secs:>7.2} s wall  {:>8.0} slots/s  pdr {:.3}",
        exp.scenario.name(),
        dodags * nodes_per_dodag,
        slots as f64 / secs,
        report.row.pdr_percent
    );
    println!(
        "  {:<12} tracker: {} B over {} packets ({:.2} B/packet, {} lanes, {} live slots)",
        "",
        fp.bytes,
        fp.tracked,
        fp.bytes_per_tracked(),
        fp.lanes,
        fp.live
    );
    fp
}

/// The pre-PR cost of one hop: recompute the full pairwise audibility
/// relation. (The old `set_position` rebuilt both adjacency tables this
/// way; counting audible pairs without materializing the rows slightly
/// *under*-prices it, which keeps the reported speedup honest.)
fn brute_force_rebuild(topo: &Topology) -> usize {
    let mut audible_pairs = 0;
    for a in topo.node_ids() {
        for b in topo.node_ids() {
            if topo.audible(a, b) {
                audible_pairs += 1;
            }
        }
    }
    audible_pairs
}

/// Times incremental moves vs the O(n²) baseline on the 10k city.
fn move_bench() {
    let scenario = ScenarioSpec::city(100, 100).build();
    let mut topo = scenario.topology;
    let n = topo.len();
    // A courier leaf hopping between cluster discs (origins on a
    // 10-wide grid at 1 km spacing) — the worst case for the index,
    // since every hop crosses buckets and changes island membership.
    let courier = NodeId::new(99);
    let spots = [
        Position::new(1_060.0, 60.0),
        Position::new(60.0, 1_060.0),
        Position::new(5_060.0, 5_060.0),
        Position::new(60.0, 60.0),
    ];
    let incr_moves = 1_000;
    let start = Instant::now();
    for k in 0..incr_moves {
        topo.set_position(courier, spots[k % spots.len()]);
    }
    let incr_per_move = start.elapsed().as_secs_f64() / incr_moves as f64;

    let brute_reps = 5;
    let start = Instant::now();
    let mut sink = 0;
    for _ in 0..brute_reps {
        sink += std::hint::black_box(brute_force_rebuild(&topo));
    }
    let brute_per_move = start.elapsed().as_secs_f64() / brute_reps as f64;
    std::hint::black_box(sink);

    println!(
        "  set_position at n={n}: {:.1} µs/move incremental vs {:.0} µs/move \
         brute-force rebuild — {:.0}x",
        incr_per_move * 1e6,
        brute_per_move * 1e6,
        brute_per_move / incr_per_move
    );
}

/// The CI memory gate: 10k nodes, 60 s, 30 ppm, hard footprint budgets.
fn mem_smoke() -> bool {
    println!("city memory smoke (10k nodes, 60 s sim, 30 ppm, tracker footprint gate):");
    let fp = smoke(100, 100, 60, 30.0);
    let mut ok = true;
    if fp.bytes_per_tracked() > MEM_GATE_BYTES_PER_PACKET {
        println!(
            "  GATE FAIL: {:.2} B/tracked packet > {MEM_GATE_BYTES_PER_PACKET} budget",
            fp.bytes_per_tracked()
        );
        ok = false;
    }
    if fp.bytes > MEM_GATE_TOTAL_BYTES {
        println!(
            "  GATE FAIL: tracker footprint {} B > {MEM_GATE_TOTAL_BYTES} B budget",
            fp.bytes
        );
        ok = false;
    }
    if ok {
        println!(
            "  gate ok: {:.2} B/packet <= {MEM_GATE_BYTES_PER_PACKET}, {} B <= {MEM_GATE_TOTAL_BYTES} B",
            fp.bytes_per_tracked(),
            fp.bytes
        );
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--move-bench") {
        println!("city move bench (10k nodes, incremental vs pre-index per-hop cost):");
        move_bench();
        return;
    }
    if args.iter().any(|a| a == "--mem-smoke") {
        if !mem_smoke() {
            std::process::exit(1);
        }
        return;
    }
    let sim_secs = if args.iter().any(|a| a == "--quick") {
        60
    } else {
        300
    };
    println!("city smoke ({sim_secs} s simulated per scenario, event core):");
    smoke(10, 100, sim_secs, 1.0);
    smoke(100, 100, sim_secs, 1.0);
}
