//! Structural validator for the pcap traces the figure binaries emit.
//!
//! Usage: `pcapcheck FILE…` — reads each capture and checks the whole
//! chain the CI trace-smoke step cares about: classic pcap global
//! header (magic, version 2.4, linktype 195 = IEEE 802.15.4 with FCS),
//! record framing (`incl_len == orig_len ≤ 65535`, no trailing bytes),
//! monotone timestamps, and every frame body parsing as a well-formed
//! GT-TSCH wire frame with a valid FCS. Prints one summary line per
//! file and exits 0 only if every file validates.

use std::process::exit;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: pcapcheck FILE…");
        exit(2);
    }
    let mut failed = false;
    for file in &files {
        let bytes = match std::fs::read(file) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match gtt_frame::pcap::validate(&bytes) {
            Ok(summary) => println!(
                "{file}: ok — {} packets, {} frame bytes",
                summary.packets, summary.frame_bytes
            ),
            Err(e) => {
                eprintln!("{file}: invalid: {e}");
                failed = true;
            }
        }
    }
    exit(if failed { 1 } else { 0 });
}
