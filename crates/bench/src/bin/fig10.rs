//! Regenerates the paper's Fig. 10 (all six sub-figures).
//!
//! Usage: `fig10 [--quick]` — `--quick` averages 2 seeds instead of 5.

use gtt_bench::{fig10, render_figure_tables, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    eprintln!("running fig10 sweep ({} seeds/point)…", config.seeds.len());
    let results = fig10(&config);
    print!("{}", render_figure_tables("10", &results));
}
