//! Regenerates the paper's Fig. 10 (all six sub-figures).
//!
//! Usage: `fig10 [--quick] [--no-cache]` — `--quick` averages 2 seeds
//! instead of 5; `(point, seed)` cells are served from / written to the
//! persistent sweep cache under `target/sweep-cache` unless
//! `--no-cache` is given.

use gtt_bench::{fig10, render_figure_tables, SweepConfig};

fn main() {
    let config = SweepConfig::from_args();
    eprintln!("running fig10 sweep ({} seeds/point)…", config.seeds.len());
    let results = fig10(&config);
    print!("{}", render_figure_tables("10", &results));
    eprintln!(
        "sweep cache: {} hits, {} misses",
        results.cache_hits, results.cache_misses
    );
}
