//! Ablation of the payoff weights α/β/γ (paper §VII-D) at 120 ppm.

use gtt_bench::{ablation_weights, render_figure_tables, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    eprintln!(
        "running weight ablation ({} seeds/point)…",
        config.seeds.len()
    );
    let results = ablation_weights(&config);
    print!("{}", render_figure_tables("W", &results));
}
