//! The interference-robustness figure: GT-TSCH vs Orchestra under
//! periodic wideband noise bursts, sweeping burst depth and period.
//!
//! Usage: `fig_noise [--quick] [--no-cache] [--cache-dir DIR] [--list]`
//! — `--quick` averages 2 seeds instead of 5; cells are served from /
//! the persistent sweep cache (default `target/sweep-cache`) unless
//! `--no-cache` is given. `--list` prints one
//! `<key> <hit|miss> <encoded experiment>` line per cell of *both*
//! sweeps (shared cells once) without simulating — the dry-run that
//! feeds `sweep_worker` shard files.

use gtt_bench::{
    fig_noise_depth, fig_noise_depth_points, fig_noise_period, fig_noise_period_points,
    render_figure_tables, render_shard_list, SweepConfig,
};

fn main() {
    let config = SweepConfig::from_args();
    if SweepConfig::list_requested() {
        let mut points = fig_noise_depth_points();
        points.extend(fig_noise_period_points());
        print!("{}", render_shard_list(&points, &config));
        return;
    }
    eprintln!("running noise sweeps ({} seeds/point)…", config.seeds.len());
    let depth = fig_noise_depth(&config);
    print!("{}", render_figure_tables("noise-depth", &depth));
    let period = fig_noise_period(&config);
    print!("{}", render_figure_tables("noise-period", &period));
    eprintln!(
        "sweep cache: {} hits, {} misses",
        depth.cache_hits + period.cache_hits,
        depth.cache_misses + period.cache_misses
    );
}
