//! The interference-robustness figure: GT-TSCH vs Orchestra under
//! periodic wideband noise bursts, sweeping burst depth and period.
//!
//! Usage: `fig_noise [--quick] [--no-cache]` — `--quick` averages 2
//! seeds instead of 5; results are served from / written to the
//! persistent sweep cache under `target/sweep-cache` unless
//! `--no-cache` is given.

use gtt_bench::{fig_noise_depth, fig_noise_period, render_figure_tables, SweepConfig};

fn main() {
    let config = SweepConfig::from_args();
    eprintln!("running noise sweeps ({} seeds/point)…", config.seeds.len());
    let depth = fig_noise_depth(&config);
    print!("{}", render_figure_tables("noise-depth", &depth));
    let period = fig_noise_period(&config);
    print!("{}", render_figure_tables("noise-period", &period));
    eprintln!(
        "sweep cache: {} hits, {} misses",
        depth.cache_hits + period.cache_hits,
        depth.cache_misses + period.cache_misses
    );
}
