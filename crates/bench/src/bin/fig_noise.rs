//! The interference-robustness figure: GT-TSCH vs Orchestra under
//! periodic wideband noise bursts, sweeping burst depth and period.
//!
//! Usage: `fig_noise [--quick] [--no-cache | --cache-only] [--cache-dir
//! DIR] [--jobs N] [--list | --enqueue QUEUE_DIR]` — `--quick` averages
//! 2 seeds instead of 5; cells are served from / into the persistent
//! sweep cache (default `target/sweep-cache`) unless `--no-cache` is
//! given. `--list` prints one `<key> <hit|miss> <encoded experiment>`
//! line per cell of *both* sweeps (shared cells once) without
//! simulating; `--enqueue` adds uncached cells to a fault-tolerant
//! work-stealing queue (`sweep_worker --queue`); `--cache-only` renders
//! from whatever the cache holds, reporting absent cells per point as
//! `n/a`. See `--help`.

use gtt_bench::{fig_noise_sweeps, figure_main};

fn main() {
    figure_main("fig_noise", fig_noise_sweeps());
}
