//! Regenerates the paper's Fig. 9 (all six sub-figures).
//!
//! Usage: `fig9 [--quick] [--no-cache | --cache-only] [--cache-dir DIR]
//! [--jobs N] [--list | --enqueue QUEUE_DIR]` — `--quick` averages 2
//! seeds instead of 5; cells are served from / into the persistent
//! sweep cache (default `target/sweep-cache`) unless `--no-cache` is
//! given. `--list` prints one `<key> <hit|miss> <encoded experiment>`
//! line per cell without simulating (the dry-run that feeds
//! `sweep_worker` shard files); `--enqueue` adds uncached cells to a
//! fault-tolerant work-stealing queue (`sweep_worker --queue`);
//! `--cache-only` renders from whatever the cache holds, reporting
//! absent cells per point as `n/a`. See `--help`.

use gtt_bench::{fig9_sweeps, figure_main};

fn main() {
    figure_main("fig9", fig9_sweeps());
}
