//! Regenerates the paper's Fig. 9 (all six sub-figures).
//!
//! Usage: `fig9 [--quick]` — `--quick` averages 2 seeds instead of 5.

use gtt_bench::{fig9, render_figure_tables, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    eprintln!("running fig9 sweep ({} seeds/point)…", config.seeds.len());
    let results = fig9(&config);
    print!("{}", render_figure_tables("9", &results));
}
