//! Multi-process sweep worker: fills the shared sweep cache from shard
//! files — or steals cells from a fault-tolerant on-disk queue.
//!
//! Usage:
//!
//! ```text
//! sweep_worker [--cache-dir DIR] [--jobs N] SHARD_FILE...
//! sweep_worker [--cache-dir DIR] [--jobs N] --queue QUEUE_DIR
//!              [--heartbeat-ms MS] [--lease-timeout-ms MS] [--retries N]
//! ```
//!
//! **Shard mode** (static partitioning, PR 5/6 behavior, byte-for-byte
//! unchanged): a shard file holds one cell per line — blank lines and
//! `#` comments are skipped, and the *last* whitespace-separated token
//! of each line is the hex-armored canonical encoding of one
//! [`Experiment`] (so the `<key> <hit|miss> <hex>` lines of a figure
//! binary's `--list` output are valid shard lines as-is, and so are the
//! `failed/` entries a queue parks). For every cell the worker checks
//! the cache (default `target/sweep-cache`), simulates on a miss, and
//! writes the result back atomically.
//!
//! **Queue mode** (`--queue`): the worker claims cells from a shared
//! queue directory populated by a figure binary's `--enqueue`,
//! heartbeats its leases, steals cells whose owner died (stale
//! heartbeat → requeue with retry budget), and parks cells that keep
//! failing in `failed/`. Any number of workers — processes or hosts
//! sharing the directory — drain the same queue; killing one loses no
//! cells. See `crates/bench/src/queue.rs` and ARCHITECTURE.md ("Sweep
//! fabric") for the lease lifecycle.
//!
//! Sharding a sweep across processes is plain text surgery:
//!
//! ```text
//! fig8 --quick --list > cells.list
//! awk 'NR % 2 == 1' cells.list > shard-a
//! awk 'NR % 2 == 0' cells.list > shard-b
//! sweep_worker shard-a & sweep_worker shard-b & wait
//! fig8 --quick        # 100% cache hits, byte-identical tables
//! ```
//!
//! and the crash-tolerant equivalent needs no splitting at all:
//!
//! ```text
//! fig8 --quick --enqueue Q
//! sweep_worker --queue Q & sweep_worker --queue Q & wait
//! fig8 --quick        # 100% cache hits, byte-identical tables
//! ```
//!
//! Workers never coordinate beyond the queue's atomic renames:
//! overlapping work at worst duplicates a deterministic computation
//! (identical bytes, last atomic rename wins) and never poisons the
//! cache. Exit status: 0 on a clean drain, 1 if any cell ended in
//! `failed/` or leaked, 2 on a command-line error.
//!
//! [`Experiment`]: gtt_workload::Experiment

use std::path::PathBuf;
use std::process::exit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use gtt_bench::{ensure_cached, run_queue_worker, QueueWorkerConfig};
use gtt_workload::Experiment;

const USAGE: &str = "usage: sweep_worker [--cache-dir DIR] [--jobs N] SHARD_FILE...\n\
       sweep_worker [--cache-dir DIR] [--jobs N] --queue QUEUE_DIR\n\
                    [--heartbeat-ms MS] [--lease-timeout-ms MS] [--retries N]";

const HELP: &str = "\nFills the shared sweep cache with simulated cells.\n\n\
Options:\n  \
--cache-dir DIR        sweep cache location (default target/sweep-cache)\n  \
--jobs N               worker threads (default: one per core)\n  \
--queue QUEUE_DIR      work-stealing mode: claim cells from this queue\n                         \
directory (see `fig8 --enqueue`) instead of shard files\n  \
--heartbeat-ms MS      queue mode: lease re-stamp interval (default 500)\n  \
--lease-timeout-ms MS  queue mode: how long a frozen heartbeat must be\n                         \
observed before the lease is stolen (default 10000)\n  \
--retries N            queue mode: requeues per cell before it is parked\n                         \
in failed/ (default 3)\n  \
--help                 this text\n";

fn bad_usage(message: &str) -> ! {
    eprintln!("error: {message}\n{USAGE}");
    exit(2);
}

struct Args {
    cache_dir: PathBuf,
    jobs: usize,
    queue: Option<PathBuf>,
    heartbeat: Duration,
    lease_timeout: Duration,
    retries: u32,
    shard_files: Vec<PathBuf>,
}

fn parse_args() -> Args {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parsed = Args {
        cache_dir: PathBuf::from("target/sweep-cache"),
        jobs: 0,
        queue: None,
        heartbeat: Duration::from_millis(500),
        lease_timeout: Duration::from_millis(10_000),
        retries: 3,
        shard_files: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        // A flag value may not itself look like a flag: `--cache-dir
        // --jobs` is a forgotten value, not a directory named --jobs.
        let value_of = |i: &mut usize, flag: &str| -> String {
            *i += 1;
            match args.get(*i) {
                Some(v) if !v.starts_with("--") => v.clone(),
                _ => bad_usage(&format!("{flag} needs a value")),
            }
        };
        let millis_of = |i: &mut usize, flag: &str| -> Duration {
            match value_of(i, flag).parse::<u64>() {
                Ok(ms) if ms > 0 => Duration::from_millis(ms),
                _ => bad_usage(&format!("{flag} needs a positive millisecond count")),
            }
        };
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}\n{HELP}");
                exit(0);
            }
            "--cache-dir" => parsed.cache_dir = PathBuf::from(value_of(&mut i, "--cache-dir")),
            "--queue" => parsed.queue = Some(PathBuf::from(value_of(&mut i, "--queue"))),
            "--jobs" => match value_of(&mut i, "--jobs").parse::<usize>() {
                Ok(n) if n > 0 => parsed.jobs = n,
                _ => bad_usage("--jobs needs a positive integer"),
            },
            "--heartbeat-ms" => parsed.heartbeat = millis_of(&mut i, "--heartbeat-ms"),
            "--lease-timeout-ms" => parsed.lease_timeout = millis_of(&mut i, "--lease-timeout-ms"),
            "--retries" => match value_of(&mut i, "--retries").parse::<u32>() {
                Ok(n) => parsed.retries = n,
                Err(_) => bad_usage("--retries needs a non-negative integer"),
            },
            flag if flag.starts_with("--") => bad_usage(&format!("unknown flag {flag}")),
            file => parsed.shard_files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    match (&parsed.queue, parsed.shard_files.is_empty()) {
        (Some(_), false) => bad_usage("--queue and shard files are mutually exclusive"),
        (None, true) => bad_usage("need shard files or --queue QUEUE_DIR"),
        _ => parsed,
    }
}

fn main() {
    let args = parse_args();
    if let Some(queue) = &args.queue {
        run_queue_mode(&args, queue.clone());
    } else {
        run_shard_mode(&args);
    }
}

/// Queue mode: drain the work-stealing queue, then report and gate the
/// exit status on the queue-wide failure/leak counts.
fn run_queue_mode(args: &Args, queue: PathBuf) -> ! {
    let mut config = QueueWorkerConfig::new(queue, &args.cache_dir);
    config.jobs = args.jobs;
    config.heartbeat = args.heartbeat;
    config.lease_timeout = args.lease_timeout;
    config.retry_budget = args.retries;
    let worker_id = config.worker_id.clone();
    let stats = run_queue_worker(&config).unwrap_or_else(|e| {
        eprintln!("sweep_worker[{worker_id}]: queue IO error: {e}");
        exit(1);
    });
    println!(
        "sweep_worker[{worker_id}]: {} done ({} computed, {} cache hits), \
         {} requeued, {} failed, {} corrupt, {} lost",
        stats.completed,
        stats.computed,
        stats.cache_hits,
        stats.requeued,
        stats.failed_total,
        stats.corrupt,
        stats.lost
    );
    if stats.store_errors > 0 {
        eprintln!(
            "sweep_worker[{worker_id}]: {} cache store errors (cells were requeued)",
            stats.store_errors
        );
    }
    exit(i32::from(stats.failed_total + stats.lost > 0));
}

/// Shard mode: decode every line up front (a torn line aborts before
/// any simulation time is spent), then drain the cells over threads.
fn run_shard_mode(args: &Args) {
    let mut cells: Vec<Experiment> = Vec::new();
    for file in &args.shard_files {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("error: cannot read shard file {}: {e}", file.display());
            exit(2);
        });
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let hex = line.split_whitespace().next_back().expect("non-empty line");
            cells.push(Experiment::decode_hex(hex).unwrap_or_else(|e| {
                panic!(
                    "{}:{}: bad experiment encoding: {e}",
                    file.display(),
                    lineno + 1
                )
            }));
        }
    }

    let threads = if args.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        args.jobs
    }
    .min(cells.len().max(1));

    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let computed = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= cells.len() {
                    break;
                }
                let experiment = &cells[j];
                if ensure_cached(&args.cache_dir, experiment) {
                    hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    computed.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "  computed {} {} seed {}",
                        experiment.scenario.name(),
                        experiment.scheduler.name(),
                        experiment.run.seed
                    );
                }
            });
        }
    })
    .expect("sweep_worker thread panicked");

    let (hits, computed) = (hits.into_inner(), computed.into_inner());
    println!(
        "sweep_worker: {} cells into {} ({} already cached, {} computed)",
        hits + computed,
        args.cache_dir.display(),
        hits,
        computed
    );
}
