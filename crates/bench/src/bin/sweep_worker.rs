//! Multi-process sweep sharder: fills the shared sweep cache from
//! shard files of canonically-encoded experiments.
//!
//! Usage: `sweep_worker [--cache-dir DIR] [--jobs N] SHARD_FILE...`
//!
//! A shard file holds one cell per line — blank lines and `#` comments
//! are skipped, and the *last* whitespace-separated token of each line
//! is the hex-armored canonical encoding of one [`Experiment`] (so the
//! `<key> <hit|miss> <hex>` lines of a figure binary's `--list` output
//! are valid shard lines as-is). For every cell the worker checks the
//! cache (default `target/sweep-cache`), simulates on a miss, and
//! writes the result back atomically. Cells are drained by `--jobs N`
//! in-process threads (default: one per available core) — the cache
//! writes are atomic temp+rename, so in-process and cross-process
//! parallelism compose freely.
//!
//! Sharding a sweep across processes (or hosts sharing the directory)
//! is therefore plain text surgery:
//!
//! ```text
//! fig8 --quick --list > cells.list
//! awk 'NR % 2 == 1' cells.list > shard-a
//! awk 'NR % 2 == 0' cells.list > shard-b
//! sweep_worker shard-a & sweep_worker shard-b & wait
//! fig8 --quick        # 100% cache hits, byte-identical tables
//! ```
//!
//! Workers never coordinate: disjoint shards never write the same key,
//! overlapping shards at worst duplicate work (last atomic rename
//! wins, both compute the identical bytes), and a torn line fails
//! decoding loudly rather than poisoning the cache.
//!
//! [`Experiment`]: gtt_workload::Experiment

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use gtt_bench::{ensure_cached, jobs_from};
use gtt_workload::Experiment;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = jobs_from(&args);
    let mut cache_dir = PathBuf::from("target/sweep-cache");
    let mut shard_files = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                i += 1;
                cache_dir = match args.get(i) {
                    Some(path) if !path.starts_with("--") => PathBuf::from(path),
                    _ => panic!("--cache-dir needs a path"),
                };
            }
            "--jobs" => i += 1, // value parsed by jobs_from
            flag if flag.starts_with("--") => panic!("unknown flag {flag}"),
            file => shard_files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    assert!(
        !shard_files.is_empty(),
        "usage: sweep_worker [--cache-dir DIR] [--jobs N] SHARD_FILE..."
    );

    // Decode every shard line up front so a torn line aborts before any
    // simulation time is spent.
    let mut cells: Vec<Experiment> = Vec::new();
    for file in &shard_files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("cannot read shard file {}: {e}", file.display()));
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let hex = line.split_whitespace().next_back().expect("non-empty line");
            cells.push(Experiment::decode_hex(hex).unwrap_or_else(|e| {
                panic!(
                    "{}:{}: bad experiment encoding: {e}",
                    file.display(),
                    lineno + 1
                )
            }));
        }
    }

    let threads = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        jobs
    }
    .min(cells.len().max(1));

    let next = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let computed = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= cells.len() {
                    break;
                }
                let experiment = &cells[j];
                if ensure_cached(&cache_dir, experiment) {
                    hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    computed.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "  computed {} {} seed {}",
                        experiment.scenario.name(),
                        experiment.scheduler.name(),
                        experiment.run.seed
                    );
                }
            });
        }
    })
    .expect("sweep_worker thread panicked");

    let (hits, computed) = (hits.into_inner(), computed.into_inner());
    println!(
        "sweep_worker: {} cells into {} ({} already cached, {} computed)",
        hits + computed,
        cache_dir.display(),
        hits,
        computed
    );
}
