//! Regenerates the paper's Fig. 8 (all six sub-figures).
//!
//! Usage: `fig8 [--quick] [--no-cache] [--cache-dir DIR] [--list]` —
//! `--quick` averages 2 seeds instead of 5; cells are served from / the
//! persistent sweep cache (default `target/sweep-cache`) unless
//! `--no-cache` is given. `--list` prints one
//! `<key> <hit|miss> <encoded experiment>` line per cell without
//! simulating — the dry-run that feeds `sweep_worker` shard files.

use gtt_bench::{fig8, fig8_points, render_figure_tables, render_shard_list, SweepConfig};

fn main() {
    let config = SweepConfig::from_args();
    if SweepConfig::list_requested() {
        print!("{}", render_shard_list(&fig8_points(), &config));
        return;
    }
    eprintln!("running fig8 sweep ({} seeds/point)…", config.seeds.len());
    let results = fig8(&config);
    print!("{}", render_figure_tables("8", &results));
    eprintln!(
        "sweep cache: {} hits, {} misses",
        results.cache_hits, results.cache_misses
    );
}
