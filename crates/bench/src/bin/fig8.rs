//! Regenerates the paper's Fig. 8 (all six sub-figures).
//!
//! Usage: `fig8 [--quick]` — `--quick` averages 2 seeds instead of 5.

use gtt_bench::{fig8, render_figure_tables, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    eprintln!("running fig8 sweep ({} seeds/point)…", config.seeds.len());
    let results = fig8(&config);
    print!("{}", render_figure_tables("8", &results));
}
