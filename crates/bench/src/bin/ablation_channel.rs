//! Ablation of Algorithm 1's channel allocation vs. hash-based channels
//! (paper §III strategies).

use gtt_bench::{ablation_channel, render_figure_tables, SweepConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let config = if quick {
        SweepConfig::quick()
    } else {
        SweepConfig::default()
    };
    eprintln!(
        "running channel ablation ({} seeds/point)…",
        config.seeds.len()
    );
    let results = ablation_channel(&config);
    print!("{}", render_figure_tables("C", &results));
}
