//! The figure sweeps of the paper's evaluation (§VIII).
//!
//! Every function returns the raw [`SweepResults`] so both the binaries
//! (printing tables) and the integration tests (asserting the paper's
//! qualitative claims) share one code path.

use gt_tsch::{GameWeights, GtTschConfig};
use gtt_orchestra::OrchestraConfig;
use gtt_sim::SimDuration;
use gtt_workload::{NoiseBurst, RunSpec, Scenario, SchedulerKind};

use crate::sweep::{run_sweep, SweepConfig, SweepPoint, SweepResults};

/// Warm-up before measurement (network formation + schedule
/// convergence), seconds.
const WARMUP_SECS: u64 = 120;
/// Measurement window, seconds (the paper measures steady state; five
/// minutes keeps rate metrics stable).
const MEASURE_SECS: u64 = 300;

fn spec(ppm: f64) -> RunSpec {
    RunSpec {
        traffic_ppm: ppm,
        warmup_secs: WARMUP_SECS,
        measure_secs: MEASURE_SECS,
        seed: 0,
    }
}

/// **Fig. 8** — performance vs. traffic load (30/75/120/165 ppm per
/// node) on the two-DODAG, 14-node network.
pub fn fig8(config: &SweepConfig) -> SweepResults {
    let scenario = Scenario::two_dodag(7);
    let mut points = Vec::new();
    for &ppm in &[30.0, 75.0, 120.0, 165.0] {
        for sched in [
            SchedulerKind::gt_tsch_default(),
            SchedulerKind::orchestra_default(),
        ] {
            points.push(SweepPoint {
                x_label: format!("{ppm:.0}"),
                scheduler: sched,
                scenario: scenario.clone(),
                spec: spec(ppm),
                noise: None,
            });
        }
    }
    run_sweep("ppm/node", points, config)
}

/// **Fig. 9** — performance vs. DODAG size (6–9 nodes per DODAG, two
/// DODAGs) at 120 ppm per node.
pub fn fig9(config: &SweepConfig) -> SweepResults {
    let mut points = Vec::new();
    for n in [6usize, 7, 8, 9] {
        let scenario = Scenario::two_dodag(n);
        for sched in [
            SchedulerKind::gt_tsch_default(),
            SchedulerKind::orchestra_default(),
        ] {
            points.push(SweepPoint {
                x_label: n.to_string(),
                scheduler: sched,
                scenario: scenario.clone(),
                spec: spec(120.0),
                noise: None,
            });
        }
    }
    run_sweep("nodes/DODAG", points, config)
}

/// **Fig. 10** — performance vs. unicast slotframe length: Orchestra at
/// 8/12/16/20 slots, GT-TSCH with its single slotframe at 4× that
/// (§VIII: "we set the size of the GT-TSCH's slotframe equal to four
/// times of the unicast slotframe size of Orchestra"), 120 ppm.
pub fn fig10(config: &SweepConfig) -> SweepResults {
    let scenario = Scenario::two_dodag(7);
    let mut points = Vec::new();
    for len in [8u16, 12, 16, 20] {
        points.push(SweepPoint {
            x_label: len.to_string(),
            scheduler: SchedulerKind::GtTsch(GtTschConfig::with_slotframe_len(len * 4)),
            scenario: scenario.clone(),
            spec: spec(120.0),
            noise: None,
        });
        points.push(SweepPoint {
            x_label: len.to_string(),
            scheduler: SchedulerKind::Orchestra(OrchestraConfig::with_unicast_len(len)),
            scenario: scenario.clone(),
            spec: spec(120.0),
            noise: None,
        });
    }
    run_sweep("unicast slotframe", points, config)
}

/// **Noise figure** — interference-burst depth sweep: GT-TSCH vs
/// Orchestra on the Fig. 8 network under periodic wideband noise
/// windows of increasing severity (`prr_factor` = fraction of nominal
/// PRR surviving a burst; 2 s bursts every 10 s, the Wi-Fi-beacon-like
/// duty cycle of [`NoiseBurst::wifi_like`]). The first consumer of the
/// cached sweep runner: the clean `1.0` column is byte-shared with any
/// other figure that ran the same points.
pub fn fig_noise_depth(config: &SweepConfig) -> SweepResults {
    let scenario = Scenario::two_dodag(7);
    let mut points = Vec::new();
    for &prr_factor in &[1.0, 0.5, 0.2, 0.05] {
        for sched in [
            SchedulerKind::gt_tsch_default(),
            SchedulerKind::orchestra_default(),
        ] {
            points.push(SweepPoint {
                x_label: format!("{prr_factor:.2}"),
                scheduler: sched,
                scenario: scenario.clone(),
                spec: spec(120.0),
                // `prr_factor == 1.0` would be a no-op overlay; keep the
                // clean column literally noise-free so it shares cache
                // cells with non-noise sweeps of the same points.
                noise: (prr_factor < 1.0).then_some(NoiseBurst {
                    quiet: SimDuration::from_secs(8),
                    burst: SimDuration::from_secs(2),
                    prr_factor,
                }),
            });
        }
    }
    run_sweep("burst PRR factor", points, config)
}

/// **Noise figure** — interference-burst period sweep: fixed 20% PRR
/// bursts of 2 s arriving every `quiet + 2` seconds, from rare to
/// near-continuous.
pub fn fig_noise_period(config: &SweepConfig) -> SweepResults {
    let scenario = Scenario::two_dodag(7);
    let mut points = Vec::new();
    for &quiet_secs in &[18u64, 8, 3, 1] {
        for sched in [
            SchedulerKind::gt_tsch_default(),
            SchedulerKind::orchestra_default(),
        ] {
            points.push(SweepPoint {
                x_label: format!("{}s", quiet_secs + 2),
                scheduler: sched,
                scenario: scenario.clone(),
                spec: spec(120.0),
                noise: Some(NoiseBurst {
                    quiet: SimDuration::from_secs(quiet_secs),
                    burst: SimDuration::from_secs(2),
                    prr_factor: 0.2,
                }),
            });
        }
    }
    run_sweep("burst period", points, config)
}

/// **Ablation (§VII-D)** — the α/β/γ preference weights of the payoff
/// function, on the Fig. 8 network at 120 ppm. Includes γ=0 (no queue
/// cost) and β=0 (no link cost) corners the paper discusses.
pub fn ablation_weights(config: &SweepConfig) -> SweepResults {
    let scenario = Scenario::two_dodag(7);
    let variants: [(&str, GameWeights); 4] = [
        (
            "paper",
            GameWeights {
                alpha: 1.0,
                beta: 0.5,
                gamma: 1.0,
            },
        ),
        (
            "no-queue",
            GameWeights {
                alpha: 1.0,
                beta: 0.5,
                gamma: 0.0,
            },
        ),
        (
            "no-link",
            GameWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 1.0,
            },
        ),
        (
            "link-heavy",
            GameWeights {
                alpha: 1.0,
                beta: 2.0,
                gamma: 0.5,
            },
        ),
    ];
    let mut points = Vec::new();
    for (label, weights) in variants {
        let cfg = GtTschConfig {
            weights,
            ..GtTschConfig::paper_default()
        };
        points.push(SweepPoint {
            x_label: label.to_string(),
            scheduler: SchedulerKind::GtTsch(cfg),
            scenario: scenario.clone(),
            spec: spec(120.0),
            noise: None,
        });
    }
    run_sweep("weights", points, config)
}

/// **Ablation (§III)** — Algorithm 1's coordinated channel allocation
/// vs. the hash-based strawman, on the Fig. 8 network across loads.
pub fn ablation_channel(config: &SweepConfig) -> SweepResults {
    let scenario = Scenario::two_dodag(7);
    let mut points = Vec::new();
    for &ppm in &[75.0, 165.0] {
        points.push(SweepPoint {
            x_label: format!("{ppm:.0}"),
            scheduler: SchedulerKind::GtTsch(GtTschConfig::paper_default()),
            scenario: scenario.clone(),
            spec: spec(ppm),
            noise: None,
        });
        points.push(SweepPoint {
            x_label: format!("{ppm:.0}"),
            scheduler: SchedulerKind::GtTsch(GtTschConfig {
                hash_channels: true,
                ..GtTschConfig::paper_default()
            }),
            scenario: scenario.clone(),
            spec: spec(ppm),
            noise: None,
        });
    }
    // Distinguish the two variants by name for the table.
    let mut results = run_sweep("ppm/node", points, config);
    let mut algo1_seen = std::collections::BTreeSet::new();
    for p in &mut results.points {
        // Points alternate algorithm-1 / hash per x; rename the second.
        if !algo1_seen.insert(p.x_label.clone()) {
            p.scheduler = "gt-tsch-hash";
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One fast end-to-end pass of the fig8 machinery (1 seed, light
    /// load only) — the full run is exercised by the `fig8` binary.
    #[test]
    fn fig8_machinery_smoke() {
        let scenario = Scenario::two_dodag(6);
        let points = vec![SweepPoint {
            x_label: "30".into(),
            scheduler: SchedulerKind::gt_tsch_default(),
            scenario,
            spec: RunSpec {
                traffic_ppm: 30.0,
                warmup_secs: 60,
                measure_secs: 60,
                seed: 0,
            },
            noise: None,
        }];
        let results = run_sweep(
            "ppm/node",
            points,
            &SweepConfig {
                seeds: vec![1],
                threads: 1,
                cache_dir: None,
            },
        );
        let p = &results.points[0];
        assert_eq!(p.scheduler, "gt-tsch");
        assert!(p.join_ratio > 0.9, "network must form");
        assert!(p.mean.pdr_percent > 80.0, "PDR {}", p.mean.pdr_percent);
    }
}
