//! The figure sweeps of the paper's evaluation (§VIII).
//!
//! Every sweep exists twice: a `*_points()` constructor returning the
//! declarative [`SweepPoint`] list (what `--list` renders into
//! `sweep_worker` shard files) and a runner returning the raw
//! [`SweepResults`], so the binaries (printing tables), the sharding
//! dry-run and the integration tests all share one description of each
//! figure.

use gt_tsch::{GameWeights, GtTschConfig};
use gtt_orchestra::OrchestraConfig;
use gtt_sim::SimDuration;
use gtt_workload::{Experiment, NoiseBurst, Overlay, RunSpec, ScenarioSpec, SchedulerKind};

use crate::cli::FigureSweep;
use crate::sweep::{run_sweep, SweepConfig, SweepPoint, SweepResults};

/// Warm-up before measurement (network formation + schedule
/// convergence), seconds.
const WARMUP_SECS: u64 = 120;
/// Measurement window, seconds (the paper measures steady state; five
/// minutes keeps rate metrics stable).
const MEASURE_SECS: u64 = 300;

fn spec(ppm: f64) -> RunSpec {
    RunSpec {
        traffic_ppm: ppm,
        warmup_secs: WARMUP_SECS,
        measure_secs: MEASURE_SECS,
        seed: 0,
        low_power: false,
    }
}

/// Both compared schedulers in table order.
fn contenders() -> [SchedulerKind; 2] {
    [
        SchedulerKind::gt_tsch_default(),
        SchedulerKind::orchestra_default(),
    ]
}

/// **Fig. 8** points — performance vs. traffic load (30/75/120/165 ppm
/// per node) on the two-DODAG, 14-node network.
pub fn fig8_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &ppm in &[30.0, 75.0, 120.0, 165.0] {
        for sched in contenders() {
            points.push(SweepPoint {
                x_label: format!("{ppm:.0}"),
                experiment: Experiment::new(ScenarioSpec::two_dodag(7), sched).with_run(spec(ppm)),
            });
        }
    }
    points
}

/// Runs the **Fig. 8** sweep.
pub fn fig8(config: &SweepConfig) -> SweepResults {
    run_sweep("ppm/node", fig8_points(), config)
}

/// The `fig8` binary's sweeps (for [`crate::figure_main`]).
pub fn fig8_sweeps() -> Vec<FigureSweep> {
    vec![FigureSweep {
        table: "8",
        x_axis: "ppm/node",
        points: fig8_points(),
    }]
}

/// **Fig. 9** points — performance vs. DODAG size (6–9 nodes per DODAG,
/// two DODAGs) at 120 ppm per node.
pub fn fig9_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for n in [6usize, 7, 8, 9] {
        for sched in contenders() {
            points.push(SweepPoint {
                x_label: n.to_string(),
                experiment: Experiment::new(ScenarioSpec::two_dodag(n), sched)
                    .with_run(spec(120.0)),
            });
        }
    }
    points
}

/// Runs the **Fig. 9** sweep.
pub fn fig9(config: &SweepConfig) -> SweepResults {
    run_sweep("nodes/DODAG", fig9_points(), config)
}

/// The `fig9` binary's sweeps (for [`crate::figure_main`]).
pub fn fig9_sweeps() -> Vec<FigureSweep> {
    vec![FigureSweep {
        table: "9",
        x_axis: "nodes/DODAG",
        points: fig9_points(),
    }]
}

/// **Fig. 10** points — performance vs. unicast slotframe length:
/// Orchestra at 8/12/16/20 slots, GT-TSCH with its single slotframe at
/// 4× that (§VIII: "we set the size of the GT-TSCH's slotframe equal to
/// four times of the unicast slotframe size of Orchestra"), 120 ppm.
pub fn fig10_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for len in [8u16, 12, 16, 20] {
        points.push(SweepPoint {
            x_label: len.to_string(),
            experiment: Experiment::new(
                ScenarioSpec::two_dodag(7),
                SchedulerKind::GtTsch(GtTschConfig::with_slotframe_len(len * 4)),
            )
            .with_run(spec(120.0)),
        });
        points.push(SweepPoint {
            x_label: len.to_string(),
            experiment: Experiment::new(
                ScenarioSpec::two_dodag(7),
                SchedulerKind::Orchestra(OrchestraConfig::with_unicast_len(len)),
            )
            .with_run(spec(120.0)),
        });
    }
    points
}

/// Runs the **Fig. 10** sweep.
pub fn fig10(config: &SweepConfig) -> SweepResults {
    run_sweep("unicast slotframe", fig10_points(), config)
}

/// The `fig10` binary's sweeps (for [`crate::figure_main`]).
pub fn fig10_sweeps() -> Vec<FigureSweep> {
    vec![FigureSweep {
        table: "10",
        x_axis: "unicast slotframe",
        points: fig10_points(),
    }]
}

/// **Noise figure** points — interference-burst depth sweep: GT-TSCH vs
/// Orchestra on the Fig. 8 network under periodic wideband noise
/// windows of increasing severity (`prr_factor` = fraction of nominal
/// PRR surviving a burst; 2 s bursts every 10 s, the Wi-Fi-beacon-like
/// duty cycle of [`NoiseBurst::wifi_like`]).
pub fn fig_noise_depth_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &prr_factor in &[1.0, 0.5, 0.2, 0.05] {
        for sched in contenders() {
            // `prr_factor == 1.0` would be a no-op overlay; keep the
            // clean column literally overlay-free so its canonical
            // encoding (and cache cells) are byte-shared with non-noise
            // sweeps of the same points (fig8's 120 ppm column).
            let overlays = (prr_factor < 1.0)
                .then_some(Overlay::Noise(NoiseBurst {
                    quiet: SimDuration::from_secs(8),
                    burst: SimDuration::from_secs(2),
                    prr_factor,
                }))
                .into_iter()
                .collect();
            points.push(SweepPoint {
                x_label: format!("{prr_factor:.2}"),
                experiment: Experiment {
                    scenario: ScenarioSpec::two_dodag(7),
                    scheduler: sched,
                    run: spec(120.0),
                    overlays,
                    trace: None,
                },
            });
        }
    }
    points
}

/// Runs the noise **depth** sweep.
pub fn fig_noise_depth(config: &SweepConfig) -> SweepResults {
    run_sweep("burst PRR factor", fig_noise_depth_points(), config)
}

/// **Noise figure** points — interference-burst period sweep: fixed 20%
/// PRR bursts of 2 s arriving every `quiet + 2` seconds, from rare to
/// near-continuous.
pub fn fig_noise_period_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &quiet_secs in &[18u64, 8, 3, 1] {
        for sched in contenders() {
            points.push(SweepPoint {
                x_label: format!("{}s", quiet_secs + 2),
                experiment: Experiment::new(ScenarioSpec::two_dodag(7), sched)
                    .with_run(spec(120.0))
                    .with_overlay(Overlay::Noise(NoiseBurst {
                        quiet: SimDuration::from_secs(quiet_secs),
                        burst: SimDuration::from_secs(2),
                        prr_factor: 0.2,
                    })),
            });
        }
    }
    points
}

/// Runs the noise **period** sweep.
pub fn fig_noise_period(config: &SweepConfig) -> SweepResults {
    run_sweep("burst period", fig_noise_period_points(), config)
}

/// The `fig_noise` binary's two sweeps (for [`crate::figure_main`]).
pub fn fig_noise_sweeps() -> Vec<FigureSweep> {
    vec![
        FigureSweep {
            table: "noise-depth",
            x_axis: "burst PRR factor",
            points: fig_noise_depth_points(),
        },
        FigureSweep {
            table: "noise-period",
            x_axis: "burst period",
            points: fig_noise_period_points(),
        },
    ]
}

/// **Ablation (§VII-D)** points — the α/β/γ preference weights of the
/// payoff function, on the Fig. 8 network at 120 ppm. Includes γ=0 (no
/// queue cost) and β=0 (no link cost) corners the paper discusses.
pub fn ablation_weights_points() -> Vec<SweepPoint> {
    let variants: [(&str, GameWeights); 4] = [
        (
            "paper",
            GameWeights {
                alpha: 1.0,
                beta: 0.5,
                gamma: 1.0,
            },
        ),
        (
            "no-queue",
            GameWeights {
                alpha: 1.0,
                beta: 0.5,
                gamma: 0.0,
            },
        ),
        (
            "no-link",
            GameWeights {
                alpha: 1.0,
                beta: 0.0,
                gamma: 1.0,
            },
        ),
        (
            "link-heavy",
            GameWeights {
                alpha: 1.0,
                beta: 2.0,
                gamma: 0.5,
            },
        ),
    ];
    let mut points = Vec::new();
    for (label, weights) in variants {
        let cfg = GtTschConfig {
            weights,
            ..GtTschConfig::paper_default()
        };
        points.push(SweepPoint {
            x_label: label.to_string(),
            experiment: Experiment::new(ScenarioSpec::two_dodag(7), SchedulerKind::GtTsch(cfg))
                .with_run(spec(120.0)),
        });
    }
    points
}

/// Runs the weight ablation.
pub fn ablation_weights(config: &SweepConfig) -> SweepResults {
    run_sweep("weights", ablation_weights_points(), config)
}

/// **Ablation (§III)** points — Algorithm 1's coordinated channel
/// allocation vs. the hash-based strawman, on the Fig. 8 network across
/// loads.
pub fn ablation_channel_points() -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &ppm in &[75.0, 165.0] {
        points.push(SweepPoint {
            x_label: format!("{ppm:.0}"),
            experiment: Experiment::new(
                ScenarioSpec::two_dodag(7),
                SchedulerKind::GtTsch(GtTschConfig::paper_default()),
            )
            .with_run(spec(ppm)),
        });
        points.push(SweepPoint {
            x_label: format!("{ppm:.0}"),
            experiment: Experiment::new(
                ScenarioSpec::two_dodag(7),
                SchedulerKind::GtTsch(GtTschConfig {
                    hash_channels: true,
                    ..GtTschConfig::paper_default()
                }),
            )
            .with_run(spec(ppm)),
        });
    }
    points
}

/// Runs the channel ablation.
pub fn ablation_channel(config: &SweepConfig) -> SweepResults {
    // Distinguish the two variants by name for the table.
    let mut results = run_sweep("ppm/node", ablation_channel_points(), config);
    let mut algo1_seen = std::collections::BTreeSet::new();
    for p in &mut results.points {
        // Points alternate algorithm-1 / hash per x; rename the second.
        if !algo1_seen.insert(p.x_label.clone()) {
            p.scheduler = "gt-tsch-hash";
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::cell_key;

    /// One fast end-to-end pass of the fig8 machinery (1 seed, light
    /// load only) — the full run is exercised by the `fig8` binary.
    #[test]
    fn fig8_machinery_smoke() {
        let points = vec![SweepPoint {
            x_label: "30".into(),
            experiment: Experiment::new(
                ScenarioSpec::two_dodag(6),
                SchedulerKind::gt_tsch_default(),
            )
            .with_run(RunSpec {
                traffic_ppm: 30.0,
                warmup_secs: 60,
                measure_secs: 60,
                seed: 0,
                ..RunSpec::default()
            }),
        }];
        let results = run_sweep(
            "ppm/node",
            points,
            &SweepConfig {
                seeds: vec![1],
                threads: 1,
                ..SweepConfig::default()
            },
        );
        let p = &results.points[0];
        assert_eq!(p.scheduler, "gt-tsch");
        assert!(p.join_ratio > 0.9, "network must form");
        assert!(p.mean.pdr_percent > 80.0, "PDR {}", p.mean.pdr_percent);
    }

    /// The clean noise-depth column is the same *cell* as fig8's
    /// 120 ppm points — declarative specs make the sharing exact.
    #[test]
    fn clean_noise_column_byte_shares_fig8_cells() {
        let fig8_at_120: Vec<String> = fig8_points()
            .iter()
            .filter(|p| p.x_label == "120")
            .map(|p| cell_key(&p.experiment.with_seed(1)))
            .collect();
        let clean_noise: Vec<String> = fig_noise_depth_points()
            .iter()
            .filter(|p| p.x_label == "1.00")
            .map(|p| cell_key(&p.experiment.with_seed(1)))
            .collect();
        assert_eq!(fig8_at_120, clean_noise);
    }
}
