//! # gtt-bench — the experiment harness
//!
//! Regenerates every figure of the GT-TSCH paper's evaluation (§VIII):
//!
//! | Binary | Paper figure | Sweep |
//! |---|---|---|
//! | `fig8`  | Fig. 8a–f  | traffic 30/75/120/165 ppm per node |
//! | `fig9`  | Fig. 9a–f  | DODAG size 6/7/8/9 nodes (× 2 DODAGs) |
//! | `fig10` | Fig. 10a–f | Orchestra unicast slotframe 8/12/16/20, GT-TSCH at 4× |
//! | `fig_noise` | — (robustness) | interference-burst depth and period |
//! | `ablation_weights` | §VII-D discussion | α/β/γ settings of the payoff |
//! | `ablation_channel` | §III strategies | Algorithm 1 vs hash-based channels |
//! | `diagnose` | — | one verbose run with per-node breakdown |
//! | `sweep_worker` | — | fills the sweep cache from shard files or a work-stealing queue |
//!
//! Each figure binary prints the paper's six series (PDR, end-to-end
//! delay, packet loss, radio duty cycle, queue loss, received
//! packets/minute) as one table per sub-figure, averaged over seeds,
//! ready to paste into `EXPERIMENTS.md` — or, with `--list`, dumps its
//! cells as canonical-key / cache-status / encoded-experiment lines for
//! cross-process sharding via `sweep_worker`, or, with `--enqueue`,
//! feeds them to the fault-tolerant queue fabric of [`queue`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod queue;
pub mod sweep;
pub mod table;

pub use cli::{figure_main, jobs_from, FigureSweep};
pub use figures::{
    ablation_channel, ablation_channel_points, ablation_weights, ablation_weights_points, fig10,
    fig10_points, fig10_sweeps, fig8, fig8_points, fig8_sweeps, fig9, fig9_points, fig9_sweeps,
    fig_noise_depth, fig_noise_depth_points, fig_noise_period, fig_noise_period_points,
    fig_noise_sweeps,
};
pub use queue::{
    enqueue_points, run_queue_worker, EnqueueSummary, QueueCell, QueueDir, QueueWorkerConfig,
    QueueWorkerStats, Requeue, StaleTracker,
};
pub use sweep::{
    cell_key, ensure_cached, probe_cached, render_shard_list, PointResult, SweepConfig, SweepPoint,
    SweepResults,
};
pub use table::render_figure_tables;
