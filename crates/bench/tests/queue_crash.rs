//! Crash-recovery integration test of the work-stealing sweep fabric.
//!
//! Two real `sweep_worker --queue` processes drain a queue built from
//! fig8's cells; one is SIGKILLed while it holds a lease mid-compute.
//! The survivor must detect the frozen heartbeat, requeue the stale
//! lease, and finish the figure with **zero lost cells** — and the
//! table rendered from the queue-filled cache must be byte-identical to
//! an in-process `--no-cache` baseline.

use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gtt_bench::{cell_key, sweep::run_sweep};
use gtt_bench::{
    enqueue_points, fig8_points, render_figure_tables, QueueDir, SweepConfig, SweepPoint,
};

/// Two of fig8's cells (both schedulers at 30 ppm), with the
/// measurement window stretched so each cell takes on the order of a
/// second in a debug build — wide enough to reliably SIGKILL the victim
/// *while it is computing*, short enough to keep the test quick.
fn crash_points() -> Vec<SweepPoint> {
    fig8_points()
        .into_iter()
        .take(2)
        .map(|mut p| {
            p.experiment.run.warmup_secs = 30;
            p.experiment.run.measure_secs = 1500;
            p
        })
        .collect()
}

fn worker_command(queue: &Path, cache: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep_worker"));
    cmd.args(["--queue"])
        .arg(queue)
        .arg("--cache-dir")
        .arg(cache)
        .args([
            "--jobs",
            "1",
            "--heartbeat-ms",
            "100",
            "--lease-timeout-ms",
            "1000",
        ]);
    cmd
}

/// Polls until some lease file names the given worker process, then
/// returns that lease's key. Panics after `limit`.
fn wait_for_lease_of(queue: &QueueDir, pid: u32, limit: Duration) -> String {
    let needle = format!("w{pid}-");
    let deadline = Instant::now() + limit;
    while Instant::now() < deadline {
        for key in queue.lease_keys().expect("lease listing") {
            let Some(lease) = queue.read_lease(&key) else {
                continue;
            };
            if lease.worker.starts_with(&needle) {
                return key;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("worker {pid} never claimed a lease within {limit:?}");
}

fn kill_and_reap(mut child: Child) {
    child.kill().expect("SIGKILL");
    child.wait().expect("reap");
}

#[test]
fn sigkilled_worker_loses_no_cells_and_tables_stay_byte_identical() {
    let root = std::env::temp_dir().join(format!("gtt-queue-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let queue_dir = root.join("queue");
    let cache_dir = root.join("cache");

    let points = crash_points();
    let seeds = vec![1u64];

    // Ground truth: a plain in-process, cache-free sweep.
    let no_cache = SweepConfig {
        seeds: seeds.clone(),
        threads: 1,
        ..SweepConfig::default()
    };
    let baseline = render_figure_tables("8", &run_sweep("ppm/node", points.clone(), &no_cache));

    // Enqueue the cells (cold cache: everything goes to pending).
    let queue = QueueDir::open(&queue_dir).expect("queue opens");
    let cached = SweepConfig {
        seeds: seeds.clone(),
        threads: 1,
        ..SweepConfig::default()
    }
    .cached(&cache_dir);
    let summary = enqueue_points(&queue, &points, &cached).expect("enqueue");
    assert_eq!(summary.enqueued, 2, "both cells queued");
    assert_eq!(summary.already_cached, 0);

    // Victim: claims a cell, gets SIGKILLed while computing it.
    let victim = worker_command(&queue_dir, &cache_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim");
    let victim_pid = victim.id();
    let stolen_key = wait_for_lease_of(&queue, victim_pid, Duration::from_secs(60));
    kill_and_reap(victim);
    assert!(
        queue.read_lease(&stolen_key).is_some(),
        "the dead worker's lease must survive it (that is the point)"
    );

    // Survivor: must requeue the orphan lease and finish everything.
    let survivor = worker_command(&queue_dir, &cache_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn survivor")
        .wait_with_output()
        .expect("survivor runs");
    let stdout = String::from_utf8_lossy(&survivor.stdout);
    assert!(
        survivor.status.success(),
        "survivor must exit 0, said: {stdout}"
    );
    assert!(stdout.contains("0 failed"), "no parked cells: {stdout}");
    assert!(stdout.contains("0 lost"), "no leaked cells: {stdout}");
    let requeued: usize = stdout
        .split(", ")
        .find_map(|part| part.strip_suffix(" requeued"))
        .and_then(|n| n.trim().parse().ok())
        .unwrap_or_else(|| panic!("no requeued count in: {stdout}"));
    assert!(requeued >= 1, "the stale lease was requeued: {stdout}");

    // Queue-level invariants: every cell terminal-done, nothing lost.
    assert_eq!(queue.pending_keys().expect("pending").len(), 0);
    assert_eq!(queue.lease_keys().expect("leases").len(), 0);
    assert_eq!(queue.failed_keys().expect("failed").len(), 0);
    let done = queue.done_keys().expect("done");
    assert_eq!(done.len(), 2, "both cells completed");
    for point in &points {
        assert!(done.contains(&cell_key(&point.experiment.with_seed(1))));
    }

    // The figure rendered from the queue-filled cache is byte-identical
    // to the no-cache baseline — crash, steal and retry changed
    // scheduling only, never results.
    let render = SweepConfig {
        seeds,
        threads: 1,
        cache_only: true,
        ..SweepConfig::default()
    }
    .cached(&cache_dir);
    let results = run_sweep("ppm/node", points, &render);
    assert_eq!(results.cache_hits, 2, "fully served from the cache");
    assert_eq!(results.missing_cells, 0);
    assert_eq!(results.corrupt_cells, 0);
    assert_eq!(baseline, render_figure_tables("8", &results));

    let _ = std::fs::remove_dir_all(&root);
}
