//! Property test of the sweep-queue lease state machine.
//!
//! Drives random interleavings of claim / heartbeat / crash / expire /
//! complete over one on-disk queue directory with several modeled
//! workers (any of which can crash, freezing its leases), then drains
//! whatever is left. The invariants, checked after *every* op and at
//! the end:
//!
//! - every cell is always in exactly one state (pending, leased, done
//!   or failed) — no cell is ever lost and none is duplicated;
//! - a completed cell's "result" bytes are identical no matter how many
//!   times crash/requeue interleavings made workers complete it;
//! - after the final drain, every cell is terminal (done or failed) and
//!   the two sets are disjoint.
//!
//! The model exercises exactly the [`QueueDir`] primitives the real
//! workers use (`claim`, `stamp_lease`, `requeue_stale`, `complete`);
//! crashes are modeled as a worker silently forgetting its leases, and
//! "expire" as an observer having watched a dead worker's frozen
//! heartbeat past the timeout.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use gtt_bench::{QueueDir, Requeue};
use proptest::prelude::*;

const CELLS: usize = 6;
const WORKERS: usize = 3;
const RETRY_BUDGET: u32 = 2;

/// One random op against the queue.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Worker w tries to claim cell c.
    Claim(usize, usize),
    /// Worker w re-stamps every lease it holds.
    Heartbeat(usize),
    /// Worker w finishes one held cell: writes the result, completes.
    Complete(usize),
    /// Worker w dies: its leases stay on disk with frozen heartbeats.
    Crash(usize),
    /// An observer has watched every unowned lease stay frozen past the
    /// timeout and requeues (or parks) them all.
    Expire,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..CELLS, 0..WORKERS).prop_map(|(c, w)| Op::Claim(c, w)),
        (0..WORKERS).prop_map(Op::Heartbeat),
        (0..WORKERS).prop_map(Op::Complete),
        (0..WORKERS).prop_map(Op::Crash),
        Just(Op::Expire),
    ]
}

/// Synthetic 32-hex cell key for cell index `i`.
fn key(i: usize) -> String {
    format!("{i:032x}")
}

/// The deterministic "result" of computing cell `key` — stands in for
/// the simulator's byte-identical cached cell.
fn result_bytes(key: &str) -> String {
    format!("result of {key}\n")
}

fn scratch() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gtt-queue-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The model driver: live workers' held leases + the fake result store.
struct Model {
    q: QueueDir,
    results_dir: PathBuf,
    /// Live workers' held lease keys (a crash clears the worker's set
    /// without touching the queue files — exactly what SIGKILL does).
    held: Vec<BTreeSet<String>>,
    /// Completions per key, to show double completions really happen
    /// in these interleavings (and stay byte-identical when they do).
    completions: BTreeMap<String, usize>,
}

impl Model {
    fn new(root: &Path) -> Model {
        let q = QueueDir::open(root.join("queue")).expect("queue opens");
        let results_dir = root.join("results");
        std::fs::create_dir_all(&results_dir).expect("results dir");
        for i in 0..CELLS {
            assert!(q.enqueue_hex(&key(i), "0badc0de").expect("enqueue"));
        }
        Model {
            q,
            results_dir,
            held: vec![BTreeSet::new(); WORKERS],
            completions: BTreeMap::new(),
        }
    }

    fn worker_name(w: usize) -> String {
        format!("w{w}")
    }

    /// Writes the cell's result, asserting byte-identity with any
    /// earlier completion of the same cell.
    fn deliver_result(&mut self, key: &str) -> Result<(), TestCaseError> {
        let path = self.results_dir.join(key);
        let bytes = result_bytes(key);
        if let Ok(previous) = std::fs::read_to_string(&path) {
            prop_assert_eq!(
                &previous,
                &bytes,
                "double completion must produce identical bytes"
            );
        }
        std::fs::write(&path, &bytes).expect("result write");
        *self.completions.entry(key.to_string()).or_insert(0) += 1;
        Ok(())
    }

    fn apply(&mut self, op: Op) -> Result<(), TestCaseError> {
        match op {
            Op::Claim(c, w) => {
                let k = key(c);
                if let Some(cell) = self.q.claim(&k, &Self::worker_name(w)).expect("claim") {
                    prop_assert_eq!(cell.worker, Self::worker_name(w));
                    // No two live workers may ever hold the same lease.
                    for (other, held) in self.held.iter().enumerate() {
                        prop_assert!(
                            !held.contains(&k),
                            "cell {} already held by live worker {}",
                            k,
                            other
                        );
                    }
                    self.held[w].insert(k);
                }
            }
            Op::Heartbeat(w) => {
                for k in self.held[w].clone() {
                    self.q.stamp_lease(&k).expect("stamp");
                }
            }
            Op::Complete(w) => {
                if let Some(k) = self.held[w].iter().next().cloned() {
                    self.held[w].remove(&k);
                    self.deliver_result(&k)?;
                    self.q
                        .complete(&k, &Self::worker_name(w))
                        .expect("complete");
                }
            }
            Op::Crash(w) => {
                // SIGKILL: the worker forgets everything; its lease
                // files stay behind with heartbeats frozen.
                self.held[w].clear();
            }
            Op::Expire => {
                for k in self.q.lease_keys().expect("lease list") {
                    if self.held.iter().any(|held| held.contains(&k)) {
                        continue; // a live worker owns it
                    }
                    let Some(lease) = self.q.read_lease(&k) else {
                        continue;
                    };
                    // The observer watched (worker, beat) stay frozen
                    // past the timeout.
                    let verdict = self
                        .q
                        .requeue_stale(&k, (&lease.worker, lease.beat), RETRY_BUDGET)
                        .expect("requeue");
                    prop_assert_ne!(
                        verdict,
                        Requeue::Refreshed,
                        "an unowned lease with a truly frozen beat must be taken"
                    );
                }
            }
        }
        self.check_exactly_one_state()
    }

    /// Every cell lives in exactly one of the four states.
    fn check_exactly_one_state(&self) -> Result<(), TestCaseError> {
        let states = [
            self.q.pending_keys().expect("pending"),
            self.q.lease_keys().expect("leases"),
            self.q.done_keys().expect("done"),
            self.q.failed_keys().expect("failed"),
        ];
        for i in 0..CELLS {
            let k = key(i);
            let places = states.iter().filter(|s| s.contains(&k)).count();
            prop_assert_eq!(places, 1, "cell {} is in {} states", k, places);
        }
        Ok(())
    }

    /// Drains everything left: a fresh worker claims and completes
    /// pending cells and expires crashed workers' leases until the
    /// queue is quiet (the real workers' loop, single-threaded).
    fn drain(&mut self) -> Result<(), TestCaseError> {
        // The drainer is a fresh worker slot: give it index 0 after a
        // crash wipe so `held` bookkeeping stays consistent.
        for held in &mut self.held {
            held.clear();
        }
        let mut rounds = 0;
        loop {
            rounds += 1;
            prop_assert!(rounds < 1000, "drain does not converge");
            let mut progressed = false;
            for k in self.q.pending_keys().expect("pending") {
                if self.q.claim(&k, "drainer").expect("claim").is_some() {
                    self.deliver_result(&k)?;
                    self.q.complete(&k, "drainer").expect("complete");
                    progressed = true;
                }
            }
            for k in self.q.lease_keys().expect("leases") {
                let Some(lease) = self.q.read_lease(&k) else {
                    continue;
                };
                self.q
                    .requeue_stale(&k, (&lease.worker, lease.beat), RETRY_BUDGET)
                    .expect("requeue");
                progressed = true;
            }
            if !progressed
                && self.q.pending_keys().expect("pending").is_empty()
                && self.q.lease_keys().expect("leases").is_empty()
            {
                return Ok(());
            }
        }
    }
}

proptest! {
    /// Random interleavings of claim/heartbeat/crash/expire/complete
    /// never lose a cell, never double-own a lease, and never complete
    /// a cell with divergent bytes; after the drain every cell is
    /// terminal.
    #[test]
    fn lease_state_machine_never_loses_or_forks_a_cell(
        ops in prop::collection::vec(arb_op(), 5..60),
    ) {
        let root = scratch();
        let mut model = Model::new(&root);
        for op in ops {
            model.apply(op)?;
        }
        model.drain()?;
        model.check_exactly_one_state()?;

        let done: BTreeSet<String> = model.q.done_keys().expect("done").into_iter().collect();
        let failed: BTreeSet<String> = model.q.failed_keys().expect("failed").into_iter().collect();
        prop_assert!(done.is_disjoint(&failed), "done and failed overlap");
        for i in 0..CELLS {
            let k = key(i);
            prop_assert!(
                done.contains(&k) || failed.contains(&k),
                "cell {} was lost (neither done nor failed)",
                k
            );
            // A done cell must have delivered its (byte-stable) result.
            if done.contains(&k) {
                let bytes = std::fs::read_to_string(model.results_dir.join(&k))
                    .expect("done cell has a result");
                prop_assert_eq!(bytes, result_bytes(&k));
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
