//! Scheduler selection for experiments.

use gt_tsch::{GtTschConfig, GtTschSf};
use gtt_engine::{EngineConfig, MinimalSchedule, SchedulingFunction};
use gtt_net::NodeId;
use gtt_orchestra::{OrchestraConfig, OrchestraSf};

/// Which scheduling function an experiment runs.
///
/// This is the factory the harness and examples hand to
/// [`Network::builder`](gtt_engine::Network) — cloneable and serializable
/// enough to appear in experiment specs.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerKind {
    /// The paper's contribution.
    GtTsch(GtTschConfig),
    /// The Orchestra baseline.
    Orchestra(OrchestraConfig),
    /// RFC 8180-style minimal configuration (extra comparison point).
    Minimal {
        /// Slotframe length.
        slotframe_len: u16,
    },
}

impl SchedulerKind {
    /// GT-TSCH with the paper's Table II configuration.
    pub fn gt_tsch_default() -> Self {
        SchedulerKind::GtTsch(GtTschConfig::paper_default())
    }

    /// Orchestra with the paper's comparison configuration.
    pub fn orchestra_default() -> Self {
        SchedulerKind::Orchestra(OrchestraConfig::paper_default())
    }

    /// Minimal-configuration scheduler.
    pub fn minimal(slotframe_len: u16) -> Self {
        SchedulerKind::Minimal { slotframe_len }
    }

    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::GtTsch(_) => "gt-tsch",
            SchedulerKind::Orchestra(_) => "orchestra",
            SchedulerKind::Minimal { .. } => "minimal",
        }
    }

    /// Engine configuration appropriate for this scheduler (all use the
    /// paper's Table II MAC settings; only the seed differs per run).
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig::default()
    }

    /// Builds the per-node scheduling function.
    pub fn instantiate(&self, _id: NodeId, _is_root: bool) -> Box<dyn SchedulingFunction> {
        match self {
            SchedulerKind::GtTsch(cfg) => {
                // 8 channel offsets: the Table II hopping sequence.
                Box::new(GtTschSf::new(cfg.clone(), 8))
            }
            SchedulerKind::Orchestra(cfg) => Box::new(OrchestraSf::new(cfg.clone())),
            SchedulerKind::Minimal { slotframe_len } => {
                Box::new(MinimalSchedule::new(*slotframe_len))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(SchedulerKind::gt_tsch_default().name(), "gt-tsch");
        assert_eq!(SchedulerKind::orchestra_default().name(), "orchestra");
        assert_eq!(SchedulerKind::minimal(8).name(), "minimal");
    }

    #[test]
    fn instantiate_produces_matching_sf() {
        let sf = SchedulerKind::gt_tsch_default().instantiate(NodeId::new(1), false);
        assert_eq!(sf.name(), "gt-tsch");
        let sf = SchedulerKind::orchestra_default().instantiate(NodeId::new(1), false);
        assert_eq!(sf.name(), "orchestra");
    }
}
