//! # gtt-workload — declarative experiments
//!
//! One self-describing value, [`Experiment`], is the only way figures,
//! benches, examples and cross-crate tests describe a run: a
//! [`ScenarioSpec`] (topology generator + link model), a
//! [`SchedulerKind`], a [`RunSpec`] (traffic model + timing + seed) and
//! a composable [`Overlay`] timeline (interference bursts, step
//! mobility, duty-cycle budgets). Experiments are plain data —
//! comparable, cloneable, and canonically encodable
//! ([`Experiment::encode`]) into a versioned byte form that doubles as
//! the sweep cache key and as the shard-file line format of the
//! multi-process `sweep_worker` (see `gtt-bench`).
//!
//! # Example
//!
//! ```
//! use gtt_workload::{Experiment, Overlay, NoiseBurst, RunSpec, ScenarioSpec, SchedulerKind};
//!
//! let exp = Experiment {
//!     scenario: ScenarioSpec::two_dodag(7), // the Fig. 8 topology
//!     scheduler: SchedulerKind::gt_tsch_default(),
//!     run: RunSpec {
//!         traffic_ppm: 30.0,
//!         warmup_secs: 30,
//!         measure_secs: 60,
//!         seed: 1,
//!         ..RunSpec::default()
//!     },
//!     overlays: vec![Overlay::Noise(NoiseBurst::wifi_like())],
//!     trace: None, // set via `with_trace` to capture a pcap of the run
//! };
//! // The canonical encoding round-trips exactly (cache keys and shard
//! // files are derived from it) …
//! assert_eq!(Experiment::decode(&exp.encode()).unwrap(), exp);
//! // … and `run()` drives warm-up, the overlay timeline and the
//! // measured window in one call.
//! let report = exp.run();
//! assert!(report.join_ratio > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
pub mod overlay;
pub mod scenario;
pub mod schedulers;
pub mod spec;

pub use encode::{DecodeError, ENCODING_VERSION};
pub use overlay::{DutyCycleBudget, NoiseBurst, Overlay, StepMobility, WaypointHop};
pub use scenario::Scenario;
pub use schedulers::SchedulerKind;
pub use spec::{ScenarioSpec, TopologySpec};

use gtt_engine::{EngineConfig, Network, NetworkBuilder, NetworkReport};
use gtt_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of one measured run: the traffic model (per-node CBR
/// rate), the timing of the measurement, the seed, and the engine
/// cadence preset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Application rate per non-root node (packets/minute).
    pub traffic_ppm: f64,
    /// Warm-up (network formation + schedule convergence), seconds.
    /// Overlays do not run during warm-up — the network always forms
    /// under clean conditions.
    pub warmup_secs: u64,
    /// Measurement window, seconds (the overlay timeline spans it).
    pub measure_secs: u64,
    /// Experiment seed.
    pub seed: u64,
    /// Use the steady-state low-power cadences
    /// ([`EngineConfig::low_power`]) instead of the paper's
    /// experiment-accelerating ones.
    pub low_power: bool,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            traffic_ppm: 30.0,
            warmup_secs: 120,
            measure_secs: 300,
            seed: 1,
            low_power: false,
        }
    }
}

/// A complete, self-describing experiment: everything that determines a
/// [`NetworkReport`], and nothing that doesn't.
///
/// The four fields are pure data; [`Experiment::run`] is the one driver
/// that turns them into a measured report (build network → warm up →
/// overlay-driven measurement window → report). Anything needing finer
/// control (fault-injection tests, engine benches) starts from
/// [`Experiment::network_builder`] and drives the network itself.
///
/// # Example
///
/// The minimal build-and-run flow — describe the run as data, call
/// [`Experiment::run`], read the [`NetworkReport`]:
///
/// ```
/// use gtt_workload::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};
///
/// let report = Experiment::new(ScenarioSpec::star(4), SchedulerKind::minimal(8))
///     .with_run(RunSpec {
///         warmup_secs: 20,
///         measure_secs: 20,
///         seed: 3,
///         ..RunSpec::default()
///     })
///     .run();
/// assert!(report.join_ratio > 0.9, "a 4-node star forms in 20 s");
/// assert!(report.delivered <= report.generated);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// What network the run happens on.
    pub scenario: ScenarioSpec,
    /// Which scheduling function every node runs.
    pub scheduler: SchedulerKind,
    /// Traffic model, timing, seed, engine preset.
    pub run: RunSpec,
    /// Timed environmental effects over the measurement window, applied
    /// in declaration order when simultaneous.
    pub overlays: Vec<Overlay>,
    /// Wire-level trace export: when set, [`Experiment::run`] /
    /// [`Experiment::run_on`] install a pcap frame tap for the whole
    /// run and write the capture to [`TraceSpec::path`] afterwards.
    ///
    /// Deliberately **not** part of the canonical encoding
    /// ([`Experiment::encode`]), like the parallel switch: taps never
    /// change a report (see `DETERMINISM.md`), so cached sweep cells
    /// are shared between traced and untraced runs, and
    /// [`Experiment::decode`] always yields `trace: None`.
    pub trace: Option<TraceSpec>,
}

/// Where [`Experiment::run`] writes its wire-level trace.
///
/// The capture itself — a classic pcap, linktype 195, sim-time
/// timestamps — is a deterministic pure function of the experiment;
/// only this destination is configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Output path of the pcap file (overwritten if present).
    pub path: std::path::PathBuf,
}

impl Experiment {
    /// An experiment with default [`RunSpec`] and no overlays.
    pub fn new(scenario: ScenarioSpec, scheduler: SchedulerKind) -> Self {
        Experiment {
            scenario,
            scheduler,
            run: RunSpec::default(),
            overlays: Vec::new(),
            trace: None,
        }
    }

    /// Replaces the run parameters (builder style).
    pub fn with_run(mut self, run: RunSpec) -> Self {
        self.run = run;
        self
    }

    /// Appends an overlay (builder style).
    pub fn with_overlay(mut self, overlay: Overlay) -> Self {
        self.overlays.push(overlay);
        self
    }

    /// Enables wire-level trace export to a pcap file at `path`
    /// (builder style). See [`Experiment::trace`].
    pub fn with_trace(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace = Some(TraceSpec { path: path.into() });
        self
    }

    /// The same experiment under a different seed — how sweeps expand
    /// one point into its per-seed cells.
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut exp = self.clone();
        exp.run.seed = seed;
        exp
    }

    /// The engine configuration this experiment runs under.
    pub fn engine_config(&self) -> EngineConfig {
        let base = if self.run.low_power {
            EngineConfig::low_power()
        } else {
            self.scheduler.engine_config()
        };
        EngineConfig {
            seed: self.run.seed,
            ..base
        }
    }

    /// A fully-wired [`NetworkBuilder`] for this experiment — the
    /// escape hatch for callers that need builder-level switches (the
    /// `naive-step` oracle) before building.
    pub fn network_builder(&self) -> NetworkBuilder {
        let scenario = self.scenario.build();
        let sk = self.scheduler.clone();
        Network::builder(scenario.topology, self.engine_config())
            .roots(scenario.roots)
            .traffic_ppm(self.run.traffic_ppm)
            .scheduler_factory(move |id, is_root| sk.instantiate(id, is_root))
    }

    /// Builds the experiment's network without running it.
    pub fn build_network(&self) -> Network {
        self.network_builder().build()
    }

    /// Runs the full experiment: build, warm up, drive the overlay
    /// timeline across the measurement window, report.
    pub fn run(&self) -> NetworkReport {
        self.run_on(&mut self.build_network())
    }

    /// [`Experiment::run`] with island-parallel stepping enabled (the
    /// `parallel` feature): radio-disjoint partition islands step on
    /// scoped threads. The report is byte-identical to
    /// [`Experiment::run`]'s — which is why the switch is *not* part of
    /// the canonical encoding — so cached sweep cells can be shared
    /// freely between parallel and sequential runs.
    #[cfg(feature = "parallel")]
    pub fn run_parallel(&self) -> NetworkReport {
        let mut net = self.network_builder().parallel_stepping().build();
        self.run_on(&mut net)
    }

    /// [`Experiment::run`] on an already-built network (one produced by
    /// [`Experiment::network_builder`] — e.g. with the `naive-step`
    /// oracle enabled, so equivalence tests drive both cores through
    /// the identical warm-up/overlay/measure sequence).
    ///
    /// When [`Experiment::trace`] is set, a pcap frame tap rides the
    /// whole run and the capture is written to [`TraceSpec::path`]
    /// before the report is returned (panicking on I/O failure — a
    /// requested trace that cannot be written is a broken run, not a
    /// warning). The report is byte-identical either way.
    pub fn run_on(&self, net: &mut Network) -> NetworkReport {
        match &self.trace {
            None => self.drive(net),
            Some(spec) => {
                let (report, pcap) = self.run_traced_on(net);
                std::fs::write(&spec.path, pcap).unwrap_or_else(|e| {
                    panic!("cannot write trace to {}: {e}", spec.path.display())
                });
                report
            }
        }
    }

    /// Runs the full experiment with a pcap frame tap installed and
    /// returns the report together with the capture bytes — the
    /// file-less form of [`Experiment::trace`] that the golden-trace
    /// tests hash. The trace is a deterministic pure function of the
    /// experiment: same `Experiment`, same bytes.
    pub fn run_traced(&self) -> (NetworkReport, Vec<u8>) {
        self.run_traced_on(&mut self.build_network())
    }

    /// [`Experiment::run_traced`] on an already-built network. Any
    /// previously installed tap is replaced and the tap is removed
    /// again before returning.
    pub fn run_traced_on(&self, net: &mut Network) -> (NetworkReport, Vec<u8>) {
        let (tap, shared) = gtt_frame::PcapTap::new();
        net.set_frame_tap(Some(Box::new(tap)));
        let report = self.drive(net);
        net.set_frame_tap(None); // drops the tap's Arc clone
        let pcap = std::sync::Arc::try_unwrap(shared)
            .expect("tap dropped, buffer uniquely owned")
            .into_inner()
            .expect("pcap buffer poisoned");
        (report, pcap)
    }

    /// The warm-up → overlay-driven measurement → report sequence
    /// shared by the traced and untraced drivers.
    fn drive(&self, net: &mut Network) -> NetworkReport {
        net.run_for(SimDuration::from_secs(self.run.warmup_secs));
        net.start_measurement();
        overlay::drive(
            net,
            &self.overlays,
            SimDuration::from_secs(self.run.measure_secs),
        );
        net.finish_measurement();
        net.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_default_is_sane() {
        let spec = RunSpec::default();
        assert!(spec.traffic_ppm > 0.0);
        assert!(spec.measure_secs > 0);
        assert!(!spec.low_power);
    }

    #[test]
    fn experiment_builds_wired_networks() {
        let exp = Experiment::new(ScenarioSpec::two_dodag(6), SchedulerKind::minimal(8)).with_run(
            RunSpec {
                warmup_secs: 1,
                measure_secs: 1,
                ..RunSpec::default()
            },
        );
        let net = exp.build_network();
        assert_eq!(net.nodes().len(), 12);
        let scenario = exp.scenario.build();
        assert!(net.node(scenario.roots[0]).rpl.is_root());
        assert!(net.node(scenario.roots[1]).rpl.is_root());
        assert_eq!(net.config().seed, exp.run.seed);
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let exp = Experiment::new(ScenarioSpec::star(3), SchedulerKind::gt_tsch_default());
        let other = exp.with_seed(99);
        assert_eq!(other.run.seed, 99);
        assert_eq!(other.with_seed(exp.run.seed), exp);
    }

    #[test]
    fn low_power_preset_selects_steady_state_cadences() {
        let mut exp = Experiment::new(ScenarioSpec::star(3), SchedulerKind::gt_tsch_default());
        exp.run.low_power = true;
        assert_eq!(
            exp.engine_config().eb_period,
            EngineConfig::low_power().eb_period
        );
    }

    #[test]
    fn run_produces_a_formed_network() {
        let exp =
            Experiment::new(ScenarioSpec::star(4), SchedulerKind::minimal(8)).with_run(RunSpec {
                traffic_ppm: 30.0,
                warmup_secs: 30,
                measure_secs: 30,
                seed: 2,
                ..RunSpec::default()
            });
        let report = exp.run();
        assert!(report.join_ratio > 0.9, "network must form");
        assert!(report.generated > 0);
    }
}
