//! # gtt-workload — scenarios and experiment plumbing
//!
//! Builders for the network topologies the paper evaluates on (§VIII) and
//! a thin runner that wires a scenario + scheduler + traffic rate into a
//! measured [`NetworkReport`]. The bench harness (`gtt-bench`) composes
//! these into the full figure sweeps; examples use them directly.
//!
//! # Example
//!
//! ```
//! use gtt_workload::{Scenario, SchedulerKind, RunSpec};
//!
//! let scenario = Scenario::two_dodag(7); // the Fig. 8 topology
//! assert_eq!(scenario.topology.len(), 14);
//! assert_eq!(scenario.roots.len(), 2);
//! let spec = RunSpec {
//!     traffic_ppm: 30.0,
//!     warmup_secs: 30,
//!     measure_secs: 60,
//!     seed: 1,
//! };
//! let report = gtt_workload::run(&scenario, &SchedulerKind::gt_tsch_default(), &spec);
//! assert!(report.join_ratio > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod schedulers;

pub use scenario::{NoiseBurst, Scenario};
pub use schedulers::SchedulerKind;

use gtt_engine::{EngineConfig, Network, NetworkReport};
use gtt_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Parameters of one measured run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Application rate per non-root node (packets/minute).
    pub traffic_ppm: f64,
    /// Warm-up (network formation + schedule convergence), seconds.
    pub warmup_secs: u64,
    /// Measurement window, seconds.
    pub measure_secs: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            traffic_ppm: 30.0,
            warmup_secs: 120,
            measure_secs: 300,
            seed: 1,
        }
    }
}

/// Builds the network for a scenario/scheduler pair without running it.
pub fn build_network(scenario: &Scenario, scheduler: &SchedulerKind, spec: &RunSpec) -> Network {
    let config = EngineConfig {
        seed: spec.seed,
        ..scheduler.engine_config()
    };
    let sk = scheduler.clone();
    Network::builder(scenario.topology.clone(), config)
        .roots(scenario.roots.iter().copied())
        .traffic_ppm(spec.traffic_ppm)
        .scheduler_factory(move |id, is_root| sk.instantiate(id, is_root))
        .build()
}

/// Runs one full measured experiment: warm-up, measurement window,
/// report.
pub fn run(scenario: &Scenario, scheduler: &SchedulerKind, spec: &RunSpec) -> NetworkReport {
    run_with_noise(scenario, scheduler, spec, None)
}

/// [`run`] with an optional interference-burst overlay driven over the
/// measurement window (the warm-up stays clean so the network forms
/// identically with and without noise).
pub fn run_with_noise(
    scenario: &Scenario,
    scheduler: &SchedulerKind,
    spec: &RunSpec,
    noise: Option<&NoiseBurst>,
) -> NetworkReport {
    let mut net = build_network(scenario, scheduler, spec);
    net.run_for(SimDuration::from_secs(spec.warmup_secs));
    net.start_measurement();
    let window = SimDuration::from_secs(spec.measure_secs);
    match noise {
        Some(n) => n.run(&mut net, window),
        None => net.run_for(window),
    }
    net.finish_measurement();
    net.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_spec_default_is_sane() {
        let spec = RunSpec::default();
        assert!(spec.traffic_ppm > 0.0);
        assert!(spec.measure_secs > 0);
    }

    #[test]
    fn build_network_wires_roots_and_traffic() {
        let scenario = Scenario::two_dodag(6);
        let spec = RunSpec {
            warmup_secs: 1,
            measure_secs: 1,
            ..RunSpec::default()
        };
        let net = build_network(&scenario, &SchedulerKind::minimal(8), &spec);
        assert_eq!(net.nodes().len(), 12);
        assert!(net.node(scenario.roots[0]).rpl.is_root());
        assert!(net.node(scenario.roots[1]).rpl.is_root());
    }
}
