//! Network topologies from the paper's evaluation.
//!
//! These are the *materialized* values a [`ScenarioSpec`] builds;
//! environmental effects (interference bursts, mobility, duty-cycle
//! budgets) are [`Overlay`]s on the experiment, not scenario variants.
//!
//! [`ScenarioSpec`]: crate::ScenarioSpec
//! [`Overlay`]: crate::Overlay

use gtt_net::{LinkModel, NodeId, Position, Topology, TopologyBuilder};
use gtt_sim::Pcg32;

/// A named topology with its DODAG roots.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable name (used in harness output).
    pub name: String,
    /// Node placement and link model.
    pub topology: Topology,
    /// DODAG roots (border routers).
    pub roots: Vec<NodeId>,
}

/// Radio range used by the built-in scenarios (metres).
const RANGE: f64 = 40.0;
/// First-ring distance from the root.
const RING1: f64 = 25.0;
/// Second-ring distance from the root (only the ring-1 parent in range).
const RING2: f64 = 50.0;
/// Separation between DODAGs — far beyond any interference.
const DODAG_SPACING: f64 = 1_000.0;
/// Radial spacing coefficient of the city clusters' sunflower layout:
/// the typical nearest-neighbour distance in metres, chosen well under
/// [`RANGE`] so every cluster is multi-hop but robustly connected.
const CITY_RING: f64 = 12.0;
/// The golden angle in radians — successive sunflower points never
/// align, giving a near-uniform deterministic disc packing.
const GOLDEN_ANGLE: f64 = 2.399_963_229_728_653;

impl Scenario {
    /// One DODAG of `n` nodes (root + rings), rooted at the first node.
    ///
    /// Layout (§VIII's building-automation shape): up to 3 first-ring
    /// nodes at 25 m, remaining nodes at 50 m placed radially behind a
    /// first-ring parent, so they can only route through it (2-hop
    /// DODAG, matching the paper's "maximum distance of two hops").
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ n ≤ 10`.
    pub fn single_dodag(n: usize) -> Scenario {
        let mut s = Scenario::dodag_positions(n, Position::ORIGIN);
        let topology = TopologyBuilder::new(RANGE).nodes(s.drain(..)).build();
        Scenario {
            name: format!("single-dodag-{n}"),
            topology,
            roots: vec![NodeId::new(0)],
        }
    }

    /// The paper's evaluation network: **two** isolated DODAGs of
    /// `nodes_per_dodag` nodes each (Fig. 8: 7 per DODAG = 14 nodes;
    /// Fig. 9 sweeps 6–9 per DODAG).
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ nodes_per_dodag ≤ 10`.
    pub fn two_dodag(nodes_per_dodag: usize) -> Scenario {
        let mut positions = Scenario::dodag_positions(nodes_per_dodag, Position::ORIGIN);
        positions.extend(Scenario::dodag_positions(
            nodes_per_dodag,
            Position::new(DODAG_SPACING, 0.0),
        ));
        let topology = TopologyBuilder::new(RANGE).nodes(positions).build();
        Scenario {
            name: format!("two-dodag-{nodes_per_dodag}"),
            topology,
            roots: vec![NodeId::new(0), NodeId::from_index(nodes_per_dodag)],
        }
    }

    /// A chain of `n` nodes `spacing` metres apart, rooted at one end —
    /// the worst case for end-to-end delay.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn line(n: usize, spacing: f64) -> Scenario {
        assert!(n >= 2, "a line needs at least 2 nodes");
        let topology = TopologyBuilder::new(spacing * 1.2)
            .nodes((0..n).map(|i| Position::new(i as f64 * spacing, 0.0)))
            .build();
        Scenario {
            name: format!("line-{n}"),
            topology,
            roots: vec![NodeId::new(0)],
        }
    }

    /// A root with `leaves` one-hop children in a circle.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn star(leaves: usize) -> Scenario {
        assert!(leaves >= 1, "a star needs at least one leaf");
        let mut b = TopologyBuilder::new(RANGE).node(Position::ORIGIN);
        for i in 0..leaves {
            let angle = i as f64 * std::f64::consts::TAU / leaves as f64;
            b = b.node(Position::new(RING1 * angle.cos(), RING1 * angle.sin()));
        }
        Scenario {
            name: format!("star-{leaves}"),
            topology: b.build(),
            roots: vec![NodeId::new(0)],
        }
    }

    /// A `cols × rows` grid with `spacing` metres between orthogonal
    /// neighbours, rooted at the corner node 0.
    ///
    /// With the built-in 40 m radio range and the default 30 m spacing,
    /// only the 4-neighbourhood is audible (diagonals are ~42.4 m away),
    /// so the DODAG is genuinely multi-hop — the scaling shape the
    /// heterogeneous-mobility and HRL-TSCH evaluations sweep.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(cols: usize, rows: usize, spacing: f64) -> Scenario {
        assert!(cols >= 1 && rows >= 1, "grid needs positive dimensions");
        let positions = (0..rows).flat_map(|r| {
            (0..cols).map(move |c| Position::new(c as f64 * spacing, r as f64 * spacing))
        });
        Scenario {
            name: format!("grid-{cols}x{rows}"),
            topology: TopologyBuilder::new(RANGE).nodes(positions).build(),
            roots: vec![NodeId::new(0)],
        }
    }

    /// The 120-node sparse-traffic grid (12 × 10, 30 m spacing): the
    /// event-driven engine's headline scaling scenario. Most nodes sleep
    /// in most slots, which is exactly the regime where slot skipping
    /// beats the exhaustive per-slot loop.
    pub fn large_grid() -> Scenario {
        let mut s = Scenario::grid(12, 10, 30.0);
        s.name = "large-grid-120".into();
        s
    }

    /// A 120-node single-hop star (root + 119 leaves): the dense
    /// counterpart to [`Scenario::large_grid`], stressing the medium
    /// resolution rather than the DODAG depth.
    pub fn large_star() -> Scenario {
        let mut s = Scenario::star(119);
        s.name = "large-star-120".into();
        s
    }

    /// `n` nodes placed uniformly at random in a `side × side` square
    /// (root at the centre), re-drawn until connected.
    ///
    /// # Panics
    ///
    /// Panics if no connected placement is found within 1000 draws.
    pub fn random(n: usize, side: f64, seed: u64) -> Scenario {
        let mut rng = Pcg32::new(seed);
        for _ in 0..1000 {
            let mut b = TopologyBuilder::new(RANGE).node(Position::new(side / 2.0, side / 2.0));
            for _ in 1..n {
                b = b.node(Position::new(rng.gen_f64() * side, rng.gen_f64() * side));
            }
            let topo = b.build();
            if topo.is_connected() {
                return Scenario {
                    name: format!("random-{n}"),
                    topology: topo,
                    roots: vec![NodeId::new(0)],
                };
            }
        }
        panic!("no connected random placement of {n} nodes in {side}m found");
    }

    /// A city-scale deployment: `dodags` clusters of `nodes_per_dodag`
    /// nodes each, every cluster rooted at its own border router.
    ///
    /// Clusters sit on a square grid at `DODAG_SPACING` (1 km) pitch —
    /// far beyond any interference, so each DODAG is its own audibility
    /// island and the island-parallel engine scales across them. Within
    /// a cluster, nodes follow a deterministic sunflower (phyllotaxis)
    /// layout around the root: node `j` sits at radius
    /// `CITY_RING · √j`, angle `j · golden-angle`, giving a near-uniform
    /// multi-hop disc (~12–20 m nearest-neighbour spacing under the 40 m
    /// range; 100 nodes span a ~120 m radius, several hops deep). No RNG
    /// is involved, so the layout is a pure function of the two counts —
    /// exactly what the canonical experiment encoding needs.
    ///
    /// `city(10, 100)` is the 1k-node benchmark scenario, `city(100,
    /// 100)` the 10k-node one.
    ///
    /// # Panics
    ///
    /// Panics unless `dodags ≥ 1`, `nodes_per_dodag ≥ 2`, and the total
    /// node count fits a `u16` id space.
    pub fn city(dodags: usize, nodes_per_dodag: usize) -> Scenario {
        assert!(dodags >= 1, "a city needs at least one dodag");
        assert!(
            nodes_per_dodag >= 2,
            "each city dodag needs at least 2 nodes"
        );
        assert!(
            dodags * nodes_per_dodag <= usize::from(u16::MAX) + 1,
            "city of {dodags}x{nodes_per_dodag} nodes overflows the u16 id space"
        );
        let cols = (dodags as f64).sqrt().ceil() as usize;
        let mut positions = Vec::with_capacity(dodags * nodes_per_dodag);
        let mut roots = Vec::with_capacity(dodags);
        for d in 0..dodags {
            let origin = Position::new(
                (d % cols) as f64 * DODAG_SPACING,
                (d / cols) as f64 * DODAG_SPACING,
            );
            roots.push(NodeId::from_index(positions.len()));
            positions.push(origin);
            for j in 1..nodes_per_dodag {
                let r = CITY_RING * (j as f64).sqrt();
                let theta = j as f64 * GOLDEN_ANGLE;
                positions.push(origin.offset(r * theta.cos(), r * theta.sin()));
            }
        }
        Scenario {
            name: format!("city-{dodags}x{nodes_per_dodag}"),
            topology: TopologyBuilder::new(RANGE).nodes(positions).build(),
            roots,
        }
    }

    /// Replaces the link model (default:
    /// [`LinkModel::default`](gtt_net::LinkModel)).
    pub fn with_link_model(mut self, model: LinkModel) -> Scenario {
        // Rebuild the topology with the new model, preserving placement.
        let positions: Vec<Position> = self
            .topology
            .node_ids()
            .map(|id| self.topology.position(id))
            .collect();
        self.topology = TopologyBuilder::new(self.topology.range())
            .link_model(model)
            .nodes(positions)
            .build();
        self
    }

    /// Number of traffic-generating (non-root) nodes.
    pub fn senders(&self) -> usize {
        self.topology.len() - self.roots.len()
    }

    /// The interference-burst scenario: the 120-node grid sharing its
    /// band with a periodic wideband interferer (Wi-Fi beacons, a duty-
    /// cycled jammer). Pair it with an
    /// [`Overlay::Noise`](crate::Overlay) timeline, which overlays the
    /// noise windows on any of these topologies.
    pub fn interference_grid() -> Scenario {
        // Derived from the headline grid so the interference runs always
        // cover the same topology the engine benches gate on.
        let mut s = Scenario::large_grid();
        s.name = "interference-grid-120".into();
        s
    }

    fn dodag_positions(n: usize, origin: Position) -> Vec<Position> {
        assert!(
            (2..=10).contains(&n),
            "dodag size must be in 2..=10, got {n}"
        );
        let mut positions = vec![origin];
        let ring1 = n.saturating_sub(1).min(3);
        let ring1_angles: Vec<f64> = (0..ring1)
            .map(|i| i as f64 * std::f64::consts::TAU / 3.0)
            .collect();
        for &a in &ring1_angles {
            positions.push(origin.offset(RING1 * a.cos(), RING1 * a.sin()));
        }
        // Remaining nodes go behind ring-1 parents, round-robin, with a
        // small angular stagger when a parent hosts several.
        let ring2 = n - 1 - ring1;
        for j in 0..ring2 {
            let parent_angle = ring1_angles[j % ring1];
            let stagger = ((j / ring1) as f64) * 0.26; // ~15°
            let a = parent_angle + stagger;
            positions.push(origin.offset(RING2 * a.cos(), RING2 * a.sin()));
        }
        positions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_dodag_7_matches_fig8() {
        let s = Scenario::two_dodag(7);
        assert_eq!(s.topology.len(), 14);
        assert_eq!(s.roots, vec![NodeId::new(0), NodeId::new(7)]);
        assert_eq!(s.senders(), 12);
    }

    #[test]
    fn dodags_are_radio_isolated() {
        let s = Scenario::two_dodag(7);
        // No node of DODAG A is audible in DODAG B.
        for a in 0..7u16 {
            for b in 7..14u16 {
                assert!(!s.topology.audible(NodeId::new(a), NodeId::new(b)));
            }
        }
    }

    #[test]
    fn each_dodag_is_internally_connected() {
        for n in [6, 7, 8, 9] {
            let s = Scenario::single_dodag(n);
            assert!(s.topology.is_connected(), "dodag of {n} must be connected");
        }
    }

    #[test]
    fn ring2_nodes_cannot_reach_the_root() {
        let s = Scenario::single_dodag(7);
        // Nodes 4..6 are second-ring: out of the root's range.
        for i in 4..7u16 {
            assert!(
                !s.topology.in_range(NodeId::new(0), NodeId::new(i)),
                "n{i} must be 2 hops out"
            );
        }
        // But each reaches at least one ring-1 node.
        for i in 4..7u16 {
            let reachable = (1..4u16).any(|p| s.topology.in_range(NodeId::new(i), NodeId::new(p)));
            assert!(reachable, "n{i} needs a ring-1 parent");
        }
    }

    #[test]
    fn line_and_star_shapes() {
        let line = Scenario::line(5, 30.0);
        assert_eq!(line.topology.len(), 5);
        assert!(line.topology.is_connected());
        let star = Scenario::star(6);
        assert_eq!(star.topology.len(), 7);
        for leaf in 1..7u16 {
            assert!(star.topology.in_range(NodeId::new(0), NodeId::new(leaf)));
        }
    }

    #[test]
    fn large_grid_is_120_nodes_multihop_and_connected() {
        let s = Scenario::large_grid();
        assert_eq!(s.topology.len(), 120);
        assert_eq!(s.name, "large-grid-120");
        assert!(s.topology.is_connected());
        // Orthogonal neighbours are audible, diagonals are not.
        assert!(s.topology.in_range(NodeId::new(0), NodeId::new(1)));
        assert!(s.topology.in_range(NodeId::new(0), NodeId::new(12)));
        assert!(!s.topology.in_range(NodeId::new(0), NodeId::new(13)));
        // The far corner is many hops from the root.
        assert!(!s.topology.in_range(NodeId::new(0), NodeId::new(119)));
    }

    #[test]
    fn large_star_is_120_nodes_single_hop() {
        let s = Scenario::large_star();
        assert_eq!(s.topology.len(), 120);
        assert_eq!(s.senders(), 119);
        for leaf in 1..120u16 {
            assert!(s.topology.in_range(NodeId::new(0), NodeId::new(leaf)));
        }
    }

    #[test]
    fn random_is_connected_and_deterministic() {
        let a = Scenario::random(10, 120.0, 5);
        let b = Scenario::random(10, 120.0, 5);
        assert!(a.topology.is_connected());
        assert_eq!(
            a.topology.position(NodeId::new(3)),
            b.topology.position(NodeId::new(3)),
            "same seed ⇒ same placement"
        );
    }

    #[test]
    fn with_link_model_preserves_placement() {
        let s = Scenario::star(3);
        let p = s.topology.position(NodeId::new(2));
        let s2 = s.with_link_model(LinkModel::Perfect);
        assert_eq!(s2.topology.position(NodeId::new(2)), p);
        assert_eq!(s2.topology.prr(NodeId::new(0), NodeId::new(1)), 1.0);
    }

    #[test]
    #[should_panic(expected = "dodag size")]
    fn oversized_dodag_rejected() {
        let _ = Scenario::single_dodag(11);
    }

    #[test]
    fn city_clusters_are_isolated_islands_with_their_own_roots() {
        let s = Scenario::city(5, 40);
        assert_eq!(s.name, "city-5x40");
        assert_eq!(s.topology.len(), 200);
        assert_eq!(
            s.roots,
            (0..5)
                .map(|d| NodeId::from_index(d * 40))
                .collect::<Vec<_>>()
        );
        // One audibility island per cluster — each internally connected
        // (islands are connected components by definition) and none
        // bridging to a neighbour cluster.
        let islands = s.topology.audibility_islands();
        assert_eq!(islands.len(), 5);
        for (d, island) in islands.iter().enumerate() {
            assert_eq!(
                *island,
                (d * 40..(d + 1) * 40)
                    .map(NodeId::from_index)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn city_clusters_are_multihop_and_deterministic() {
        let s = Scenario::city(1, 100);
        // The sunflower disc is several hops deep: the outermost node is
        // out of the root's range but the cluster is still connected.
        assert!(!s.topology.in_range(NodeId::new(0), NodeId::new(99)));
        assert!(s.topology.is_connected());
        // Pure function of the counts: no hidden RNG.
        assert_eq!(s.topology, Scenario::city(1, 100).topology);
    }

    #[test]
    #[should_panic(expected = "overflows the u16 id space")]
    fn oversized_city_rejected() {
        let _ = Scenario::city(700, 100);
    }

    #[test]
    fn interference_grid_reuses_the_large_grid_shape() {
        let s = Scenario::interference_grid();
        assert_eq!(s.topology.len(), 120);
        assert_eq!(s.name, "interference-grid-120");
        assert!(s.topology.is_connected());
    }
}
