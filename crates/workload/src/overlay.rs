//! Composable dynamic-event overlays: timed environmental effects
//! applied over an experiment's measurement window.
//!
//! An [`Overlay`] is pure data — part of an
//! [`Experiment`](crate::Experiment), compared, cloned and canonically
//! encoded like every other input. One unified timeline driver (invoked
//! by [`Experiment::run`](crate::Experiment::run)) interleaves the
//! overlays' scheduled events with the simulation: it advances the
//! network to the next due event, applies it through the engine's
//! public mutation API ([`Network::set_link_prr`],
//! [`Network::move_node`], [`Network::set_app_throttled`]), and repeats
//! until the window closes. Because only public, core-agnostic entry
//! points are used, an overlaid run on the event-driven engine is
//! byte-identical to the same run on the `naive-step` oracle — the
//! `step_equivalence` suite pins all three overlay kinds.
//!
//! Overlays compose *across kinds*: events due at the same instant fire
//! in declaration order, and each kind touches disjoint state (link PRR
//! overrides, node positions, application throttles). Within a kind,
//! the stateful overlays do not stack — two noise timelines would
//! corrupt each other's PRR save/restore and two duty budgets would
//! fight over the throttle flags — so an experiment carries at most one
//! `Noise` and one `DutyCycle` overlay (enforced at run time; any
//! number of `Mobility` traces is fine, positions are last-write-wins).

use gtt_engine::Network;
use gtt_net::{NodeId, Position};
use gtt_sim::{SimDuration, SimTime};

/// Periodic wideband interference: every `quiet + burst` of simulated
/// time, *all* audible links degrade to `prr_factor` of their nominal
/// packet-reception ratio for `burst`, then recover — the on/off duty
/// cycle of a co-located Wi-Fi transmitter or duty-cycled jammer
/// (PAPERS.md: the HRL-TSCH / E-MSF evaluation conditions).
///
/// Implemented on top of the engine's fault-injection machinery
/// ([`Network::set_link_prr`]): wideband noise is indistinguishable
/// from a synchronized PRR collapse across every link, and routing it
/// through the fault path keeps the event-driven core's lazy
/// accounting exact. The audible-link set is re-read at every burst,
/// so noise composes with mobility (a link that appeared mid-run is
/// degraded by the next burst like any other).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseBurst {
    /// Quiet time between bursts.
    pub quiet: SimDuration,
    /// Duration of each noise window.
    pub burst: SimDuration,
    /// Multiplier applied to every link's PRR while the noise is on
    /// (`0.0` = nothing decodes, `1.0` = no effect).
    pub prr_factor: f64,
}

impl NoiseBurst {
    /// A Wi-Fi-beacon-like interferer: 2 s of heavy wideband noise
    /// (links at 20% of nominal PRR) every 10 s.
    pub fn wifi_like() -> NoiseBurst {
        NoiseBurst {
            quiet: SimDuration::from_secs(8),
            burst: SimDuration::from_secs(2),
            prr_factor: 0.2,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.prr_factor),
            "prr_factor must be in [0, 1], got {}",
            self.prr_factor
        );
        assert!(
            !self.quiet.is_zero() || !self.burst.is_zero(),
            "noise windows must have positive length"
        );
    }
}

/// One scheduled relocation of a step-mobility trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WaypointHop {
    /// When the hop happens, measured from the start of the measurement
    /// window.
    pub at: SimDuration,
    /// Which node moves.
    pub node: NodeId,
    /// Where it lands.
    pub to: Position,
}

/// Step mobility: waypoint hops that rewrite node positions at
/// scheduled sim times. Each hop re-derives every affected link PRR
/// from the new distances and rebuilds the audibility adjacency
/// ([`Network::move_node`]) — nodes walk out of range, pick new RPL
/// parents, and rejoin elsewhere, the "heterogeneous mobile scenarios"
/// regime of PAPERS.md.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepMobility {
    /// The hops, ordered by [`WaypointHop::at`] (non-decreasing).
    pub hops: Vec<WaypointHop>,
}

impl StepMobility {
    /// A trace with no hops; extend with [`StepMobility::hop`].
    pub fn new() -> Self {
        StepMobility::default()
    }

    /// Appends a hop (builder style).
    pub fn hop(mut self, at: SimDuration, node: NodeId, to: Position) -> Self {
        self.hops.push(WaypointHop { at, node, to });
        self
    }

    fn validate(&self) {
        assert!(
            self.hops.windows(2).all(|w| w[0].at <= w[1].at),
            "mobility hops must be ordered by time"
        );
    }
}

/// Duty-cycle budgeting: nodes throttle their application traffic when
/// their radio-on budget for the current accounting window is
/// exhausted, and resume when the window rolls over — the
/// energy-constrained workload shape of PAPERS.md's HRL-TSCH / E-MSF
/// baselines.
///
/// Every `check`, each alive non-root node's radio-on share of the
/// current window (Tx + busy-Rx + idle-listen slots since the window
/// started, over the full window length) is compared against
/// `max_duty_percent`; nodes over budget are throttled
/// ([`Network::set_app_throttled`]) until the window resets. Throttled
/// sources keep their phase, so releasing never produces a catch-up
/// burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyCycleBudget {
    /// Length of one accounting window.
    pub window: SimDuration,
    /// How often consumption is evaluated within a window.
    pub check: SimDuration,
    /// Radio-on budget as a percentage of the window (`0 < p ≤ 100`).
    pub max_duty_percent: f64,
}

impl DutyCycleBudget {
    fn validate(&self) {
        assert!(!self.window.is_zero(), "budget window must be positive");
        assert!(!self.check.is_zero(), "check period must be positive");
        assert!(
            self.max_duty_percent > 0.0 && self.max_duty_percent <= 100.0,
            "duty budget must be in (0, 100]%, got {}",
            self.max_duty_percent
        );
    }
}

/// One timed environmental effect of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum Overlay {
    /// Periodic wideband interference bursts.
    Noise(NoiseBurst),
    /// Scheduled waypoint hops rewriting node positions.
    Mobility(StepMobility),
    /// Radio-on budgets that throttle application traffic.
    DutyCycle(DutyCycleBudget),
}

/// Runtime state of one overlay while the driver runs.
enum State<'a> {
    Noise {
        o: &'a NoiseBurst,
        /// Next toggle instant.
        next: SimTime,
        /// Whether the noise is currently applied.
        on: bool,
        /// The degraded links, captured at burst start.
        links: Vec<(NodeId, NodeId)>,
        /// Pre-burst *overrides* (not effective PRRs) per link, so
        /// restoration re-installs exactly what fault injection had put
        /// there — or removes our override entirely, keeping the
        /// topology's override map empty between bursts (its emptiness
        /// is the reception hot path's fast-path condition).
        saved: Vec<Option<f64>>,
    },
    Mobility {
        o: &'a StepMobility,
        /// Measurement-window start the hop offsets are relative to.
        start: SimTime,
        /// Index of the next unfired hop.
        idx: usize,
    },
    Duty {
        o: &'a DutyCycleBudget,
        /// Start of the current accounting window (exact chain — no
        /// slot-rounding drift across windows).
        window_start: SimTime,
        /// Next consumption check (exact chain).
        next_check: SimTime,
        /// Per-node radio-on slots at `window_start`.
        baseline: Vec<u64>,
    },
}

/// Radio-on slots of node `i` since boot.
fn awake_slots(net: &Network, i: usize) -> u64 {
    let c = net.nodes()[i].mac.counters();
    c.tx_slots + c.rx_busy_slots + c.rx_idle_slots
}

/// All directed audible links of `net`'s topology, in id order.
fn audible_links(net: &Network) -> Vec<(NodeId, NodeId)> {
    let topo = net.topology();
    topo.node_ids()
        .flat_map(|a| {
            topo.audible_neighbors(a)
                .iter()
                .map(move |&b| (a, b))
                .collect::<Vec<_>>()
        })
        .collect()
}

impl<'a> State<'a> {
    fn new(overlay: &'a Overlay, net: &Network) -> State<'a> {
        let start = net.now();
        match overlay {
            Overlay::Noise(o) => {
                o.validate();
                State::Noise {
                    o,
                    next: start + o.quiet,
                    on: false,
                    links: Vec::new(),
                    saved: Vec::new(),
                }
            }
            Overlay::Mobility(o) => {
                o.validate();
                State::Mobility { o, start, idx: 0 }
            }
            Overlay::DutyCycle(o) => {
                o.validate();
                State::Duty {
                    o,
                    window_start: start,
                    next_check: start + o.check,
                    baseline: (0..net.nodes().len())
                        .map(|i| awake_slots(net, i))
                        .collect(),
                }
            }
        }
    }

    /// When this overlay next wants to act (`None` = never again).
    fn next_time(&self) -> Option<SimTime> {
        match self {
            State::Noise { next, .. } => Some(*next),
            State::Mobility { o, start, idx } => o.hops.get(*idx).map(|h| *start + h.at),
            State::Duty {
                o,
                window_start,
                next_check,
                ..
            } => Some((*window_start + o.window).min(*next_check)),
        }
    }

    /// Applies every action due at or before `net.now()`.
    fn fire(&mut self, net: &mut Network) {
        let now = net.now();
        match self {
            State::Noise {
                o,
                next,
                on,
                links,
                saved,
            } => {
                if *on {
                    // Burst over: restore the exact pre-burst overrides.
                    for (&(a, b), &prev) in links.iter().zip(saved.iter()) {
                        match prev {
                            Some(prr) => net.set_link_prr(a, b, prr),
                            None => net.clear_link_prr(a, b),
                        }
                    }
                    *on = false;
                    *next = now + o.quiet;
                } else {
                    // Burst starts: degrade every currently-audible link
                    // (re-read so noise composes with mobility).
                    *links = audible_links(net);
                    saved.clear();
                    for &(a, b) in links.iter() {
                        saved.push(net.topology().link_prr_override(a, b));
                        let prr = net.topology().prr(a, b);
                        net.set_link_prr(a, b, prr * o.prr_factor);
                    }
                    *on = true;
                    *next = now + o.burst;
                }
            }
            State::Mobility { o, start, idx } => {
                while let Some(hop) = o.hops.get(*idx) {
                    if *start + hop.at > now {
                        break;
                    }
                    net.move_node(hop.node, hop.to);
                    *idx += 1;
                }
            }
            State::Duty {
                o,
                window_start,
                next_check,
                baseline,
            } => {
                if now >= *window_start + o.window {
                    // Window rollover: fresh budget for everyone. The
                    // boundary chain stays exact (+= window, not = now)
                    // so slot rounding never drifts the cadence.
                    *window_start += o.window;
                    *next_check = *window_start + o.check;
                    for (i, base) in baseline.iter_mut().enumerate() {
                        *base = awake_slots(net, i);
                        net.set_app_throttled(NodeId::from_index(i), false);
                    }
                } else {
                    let slot_us = net.config().mac.slot_duration.as_micros();
                    let budget_us = o.window.as_micros() as f64 * o.max_duty_percent / 100.0;
                    for (i, &base) in baseline.iter().enumerate() {
                        let node = &net.nodes()[i];
                        if !node.is_alive() || node.rpl.is_root() || node.is_app_throttled() {
                            continue;
                        }
                        let consumed = (awake_slots(net, i) - base) * slot_us;
                        if consumed as f64 >= budget_us {
                            net.set_app_throttled(NodeId::from_index(i), true);
                        }
                    }
                    *next_check += o.check;
                }
            }
        }
    }

    /// End-of-window cleanup: leave the network free of overlay state.
    fn finish(&mut self, net: &mut Network) {
        match self {
            State::Noise {
                on, links, saved, ..
            } => {
                if *on {
                    for (&(a, b), &prev) in links.iter().zip(saved.iter()) {
                        match prev {
                            Some(prr) => net.set_link_prr(a, b, prr),
                            None => net.clear_link_prr(a, b),
                        }
                    }
                    *on = false;
                }
            }
            State::Mobility { .. } => {} // positions persist by design
            State::Duty { .. } => {
                for i in 0..net.nodes().len() {
                    net.set_app_throttled(NodeId::from_index(i), false);
                }
            }
        }
    }
}

/// Drives `net` for `window`, interleaving the overlays' scheduled
/// events with the simulation. With no overlays this is exactly
/// [`Network::run_for`].
///
/// # Panics
///
/// Panics if any overlay's parameters are invalid (each kind documents
/// its own constraints), or if the experiment carries more than one
/// `Noise` or more than one `DutyCycle` overlay (see the module docs —
/// those kinds hold save/restore state that does not stack).
pub(crate) fn drive(net: &mut Network, overlays: &[Overlay], window: SimDuration) {
    if overlays.is_empty() {
        net.run_for(window);
        return;
    }
    let count = |f: fn(&Overlay) -> bool| overlays.iter().filter(|o| f(o)).count();
    assert!(
        count(|o| matches!(o, Overlay::Noise(_))) <= 1,
        "at most one Noise overlay per experiment (wideband bursts do not stack)"
    );
    assert!(
        count(|o| matches!(o, Overlay::DutyCycle(_))) <= 1,
        "at most one DutyCycle overlay per experiment (throttle windows do not stack)"
    );
    let end = net.now() + window;
    let mut states: Vec<State> = overlays.iter().map(|o| State::new(o, net)).collect();
    loop {
        let next = states.iter().filter_map(State::next_time).min();
        match next {
            Some(t) if t < end => {
                net.run_until(t);
                // Fire everything now due, in declaration order
                // (deterministic tie-break), repeating until quiescent:
                // slot rounding can overshoot past a later deadline, and
                // a fired event may schedule its successor at `now`
                // (zero-quiet noise flips straight back on).
                loop {
                    let now = net.now();
                    let mut fired = false;
                    for s in &mut states {
                        if s.next_time().is_some_and(|t| t <= now) {
                            s.fire(net);
                            fired = true;
                        }
                    }
                    if !fired {
                        break;
                    }
                }
            }
            _ => break,
        }
    }
    net.run_until(end);
    for s in &mut states {
        s.finish(net);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, RunSpec, ScenarioSpec, SchedulerKind};

    fn star_experiment(overlays: Vec<Overlay>) -> Experiment {
        Experiment {
            scenario: ScenarioSpec::star(6),
            scheduler: SchedulerKind::minimal(8),
            run: RunSpec {
                traffic_ppm: 30.0,
                warmup_secs: 30,
                measure_secs: 60,
                seed: 9,
                ..RunSpec::default()
            },
            overlays,
            trace: None,
        }
    }

    #[test]
    fn noise_bursts_degrade_pdr_and_restore_links() {
        let clean = star_experiment(vec![]).run();
        let noisy = star_experiment(vec![Overlay::Noise(NoiseBurst {
            quiet: SimDuration::from_secs(3),
            burst: SimDuration::from_secs(3),
            prr_factor: 0.0, // total wideband blackout half the time
        })])
        .run();
        assert!(
            noisy.row.pdr_percent < clean.row.pdr_percent,
            "blackout windows must cost deliveries: {:.1}% !< {:.1}%",
            noisy.row.pdr_percent,
            clean.row.pdr_percent
        );
        // Restoration is exact: a second clean run after the machinery
        // existed must equal the first (determinism not perturbed).
        let clean2 = star_experiment(vec![]).run();
        assert_eq!(clean, clean2, "noise machinery must not leak state");
    }

    #[test]
    fn mobility_hops_relocate_nodes_at_their_times() {
        let moved = Position::new(400.0, 0.0);
        let exp = star_experiment(vec![Overlay::Mobility(
            StepMobility::new()
                .hop(SimDuration::from_secs(10), NodeId::new(3), moved)
                .hop(
                    SimDuration::from_secs(40),
                    NodeId::new(4),
                    Position::new(10.0, 0.0),
                ),
        )]);
        let mut net = exp.build_network();
        let report = exp.run_on(&mut net);
        assert_eq!(net.topology().position(NodeId::new(3)), moved);
        assert_eq!(
            net.topology().position(NodeId::new(4)),
            Position::new(10.0, 0.0)
        );
        // A node parked 400 m out is unreachable: it must cost delivery
        // relative to the clean run.
        let clean = star_experiment(vec![]).run();
        assert!(
            report.delivered < clean.delivered,
            "an out-of-range node must stop delivering: {} !< {}",
            report.delivered,
            clean.delivered
        );
    }

    #[test]
    fn duty_budget_throttles_traffic() {
        // The minimal schedule listens on the shared cell every 8th
        // slot, so a 1% duty budget is exhausted almost immediately.
        let tight = star_experiment(vec![Overlay::DutyCycle(DutyCycleBudget {
            window: SimDuration::from_secs(30),
            check: SimDuration::from_secs(2),
            max_duty_percent: 1.0,
        })]);
        let clean = star_experiment(vec![]).run();
        let mut net = tight.build_network();
        let throttled = tight.run_on(&mut net);
        assert!(
            throttled.generated < clean.generated / 2,
            "a 1% budget must suppress most traffic: {} !< {}",
            throttled.generated,
            clean.generated / 2
        );
        // The driver leaves no throttle behind after the window.
        assert!(net.nodes().iter().all(|n| !n.is_app_throttled()));
    }

    #[test]
    fn generous_duty_budget_changes_nothing() {
        let clean = star_experiment(vec![]).run();
        let budgeted = star_experiment(vec![Overlay::DutyCycle(DutyCycleBudget {
            window: SimDuration::from_secs(10),
            check: SimDuration::from_secs(1),
            max_duty_percent: 100.0,
        })])
        .run();
        assert_eq!(
            clean, budgeted,
            "an unexhaustible budget must be a no-op overlay"
        );
    }

    #[test]
    fn wifi_like_noise_is_sane() {
        let n = NoiseBurst::wifi_like();
        assert!(n.prr_factor > 0.0 && n.prr_factor < 1.0);
        assert!(!n.quiet.is_zero() && !n.burst.is_zero());
    }

    #[test]
    #[should_panic(expected = "prr_factor")]
    fn out_of_range_noise_rejected() {
        let mut exp = star_experiment(vec![Overlay::Noise(NoiseBurst {
            quiet: SimDuration::from_secs(1),
            burst: SimDuration::from_secs(1),
            prr_factor: 1.5,
        })]);
        exp.run.warmup_secs = 0;
        exp.run.measure_secs = 1;
        let _ = exp.run();
    }

    #[test]
    #[should_panic(expected = "do not stack")]
    fn stacked_noise_overlays_rejected() {
        // Two overlapping noise timelines would corrupt each other's
        // PRR save/restore (one's restore clears the other's active
        // burst); the driver refuses the combination outright.
        let mut exp = star_experiment(vec![
            Overlay::Noise(NoiseBurst::wifi_like()),
            Overlay::Noise(NoiseBurst {
                quiet: SimDuration::from_secs(4),
                burst: SimDuration::from_secs(4),
                prr_factor: 0.5,
            }),
        ]);
        exp.run.warmup_secs = 0;
        exp.run.measure_secs = 1;
        let _ = exp.run();
    }

    #[test]
    #[should_panic(expected = "do not stack")]
    fn stacked_duty_budgets_rejected() {
        let budget = DutyCycleBudget {
            window: SimDuration::from_secs(10),
            check: SimDuration::from_secs(1),
            max_duty_percent: 50.0,
        };
        let mut exp = star_experiment(vec![Overlay::DutyCycle(budget), Overlay::DutyCycle(budget)]);
        exp.run.warmup_secs = 0;
        exp.run.measure_secs = 1;
        let _ = exp.run();
    }

    #[test]
    #[should_panic(expected = "ordered by time")]
    fn unsorted_mobility_rejected() {
        let mut exp = star_experiment(vec![Overlay::Mobility(
            StepMobility::new()
                .hop(SimDuration::from_secs(10), NodeId::new(1), Position::ORIGIN)
                .hop(SimDuration::from_secs(5), NodeId::new(2), Position::ORIGIN),
        )]);
        exp.run.warmup_secs = 0;
        exp.run.measure_secs = 1;
        let _ = exp.run();
    }
}
