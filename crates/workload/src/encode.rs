//! Canonical byte encoding of [`Experiment`] values.
//!
//! The vendored `serde` stand-in is marker-only (see `crates/compat`),
//! so the wire format is hand-rolled: a fixed-layout, little-endian,
//! tag-discriminated encoding with a schema version up front. It is
//! *canonical* — equal experiments encode to identical bytes, floats
//! round-trip by exact bit pattern (`f64::to_bits`, including `-0.0`
//! and NaN payloads), and there is no map/hash iteration anywhere — so
//! the bytes double as a portable cache key and as the line format of
//! `sweep_worker` shard files (hex-armored, one experiment per line).
//!
//! Schema evolution: bump [`ENCODING_VERSION`] whenever the layout *or
//! the meaning* of any encoded field changes; decoders reject foreign
//! versions and every derived cache key changes with the version, so
//! stale cells can never be served across a schema change.

use std::fmt;

use gtt_net::{LinkModel, NodeId, Position, TopologyBuilder};
use gtt_orchestra::OrchestraConfig;
use gtt_sim::SimDuration;

use gt_tsch::{GameWeights, GtTschConfig};

use crate::overlay::{DutyCycleBudget, NoiseBurst, Overlay, StepMobility, WaypointHop};
use crate::scenario::Scenario;
use crate::spec::{ScenarioSpec, TopologySpec};
use crate::{Experiment, RunSpec, SchedulerKind};

/// Version of the canonical encoding. Part of every encoded experiment
/// (and therefore of every cache key derived from one).
pub const ENCODING_VERSION: u16 = 2;

/// Leading magic of every encoded experiment.
const MAGIC: &[u8; 4] = b"GTTX";

/// Why a byte string failed to decode as an [`Experiment`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Ran out of bytes mid-field.
    Truncated,
    /// The input does not start with the experiment magic.
    BadMagic,
    /// The input was produced by a different schema version.
    UnsupportedVersion(u16),
    /// An enum discriminant byte had no matching variant.
    BadTag {
        /// Which discriminated field was being read.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// Bytes remained after the experiment was fully decoded.
    TrailingBytes,
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// Hex armor contained a non-hex character or odd length.
    BadHex,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated experiment encoding"),
            DecodeError::BadMagic => write!(f, "not an encoded experiment (bad magic)"),
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported encoding schema version {v} (this build: {ENCODING_VERSION})"
                )
            }
            DecodeError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag:#04x}"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after experiment"),
            DecodeError::BadUtf8 => write!(f, "non-UTF-8 string field"),
            DecodeError::BadHex => write!(f, "invalid hex armor"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Little-endian byte sink.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// `usize` fields travel as `u64` so the encoding is identical on
    /// every platform.
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    /// Exact bit pattern — `-0.0`, infinities and NaN payloads all
    /// round-trip.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn duration(&mut self, v: SimDuration) {
        self.u64(v.as_micros());
    }
    fn str(&mut self, v: &str) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v.as_bytes());
    }
}

/// Little-endian byte source.
struct Dec<'a> {
    rest: &'a [u8],
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.rest.len() < n {
            return Err(DecodeError::Truncated);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }
    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, DecodeError> {
        Ok(self.u8()? != 0)
    }
    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn usize(&mut self) -> Result<usize, DecodeError> {
        Ok(self.u64()? as usize)
    }
    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn duration(&mut self) -> Result<SimDuration, DecodeError> {
        Ok(SimDuration::from_micros(self.u64()?))
    }
    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
    /// A safe `Vec` pre-allocation for `n` declared elements of at
    /// least `min_elem` bytes each: a corrupted length prefix must
    /// surface as [`DecodeError::Truncated`] a few elements in, not as
    /// a multi-gigabyte `with_capacity` abort before any byte is read.
    fn capacity_for(&self, n: usize, min_elem: usize) -> usize {
        n.min(self.rest.len() / min_elem.max(1))
    }
}

fn enc_link_model(e: &mut Enc, m: &LinkModel) {
    match *m {
        LinkModel::Perfect => e.u8(0),
        LinkModel::DistanceFalloff { plateau, edge_prr } => {
            e.u8(1);
            e.f64(plateau);
            e.f64(edge_prr);
        }
        LinkModel::Fixed(p) => {
            e.u8(2);
            e.f64(p);
        }
    }
}

fn dec_link_model(d: &mut Dec) -> Result<LinkModel, DecodeError> {
    Ok(match d.u8()? {
        0 => LinkModel::Perfect,
        1 => LinkModel::DistanceFalloff {
            plateau: d.f64()?,
            edge_prr: d.f64()?,
        },
        2 => LinkModel::Fixed(d.f64()?),
        tag => {
            return Err(DecodeError::BadTag {
                what: "link model",
                tag,
            })
        }
    })
}

fn enc_scenario_spec(e: &mut Enc, s: &ScenarioSpec) {
    match &s.link {
        None => e.u8(0),
        Some(m) => {
            e.u8(1);
            enc_link_model(e, m);
        }
    }
    match &s.topology {
        TopologySpec::SingleDodag { n } => {
            e.u8(0);
            e.usize(*n);
        }
        TopologySpec::TwoDodag { nodes_per_dodag } => {
            e.u8(1);
            e.usize(*nodes_per_dodag);
        }
        TopologySpec::Line { n, spacing } => {
            e.u8(2);
            e.usize(*n);
            e.f64(*spacing);
        }
        TopologySpec::Star { leaves } => {
            e.u8(3);
            e.usize(*leaves);
        }
        TopologySpec::Grid {
            cols,
            rows,
            spacing,
        } => {
            e.u8(4);
            e.usize(*cols);
            e.usize(*rows);
            e.f64(*spacing);
        }
        TopologySpec::LargeGrid => e.u8(5),
        TopologySpec::LargeStar => e.u8(6),
        TopologySpec::InterferenceGrid => e.u8(7),
        TopologySpec::Random { n, side, seed } => {
            e.u8(8);
            e.usize(*n);
            e.f64(*side);
            e.u64(*seed);
        }
        TopologySpec::Custom(scenario) => {
            e.u8(9);
            e.str(&scenario.name);
            let topo = &scenario.topology;
            e.f64(topo.range());
            e.f64(topo.interference_factor());
            enc_link_model(e, &topo.link_model());
            e.u32(topo.len() as u32);
            for id in topo.node_ids() {
                let p = topo.position(id);
                e.f64(p.x);
                e.f64(p.y);
            }
            let overrides: Vec<_> = topo.prr_overrides().collect();
            e.u32(overrides.len() as u32);
            for ((a, b), prr) in overrides {
                e.u16(a.raw());
                e.u16(b.raw());
                e.f64(prr);
            }
            e.u32(scenario.roots.len() as u32);
            for r in &scenario.roots {
                e.u16(r.raw());
            }
        }
        TopologySpec::City {
            dodags,
            nodes_per_dodag,
        } => {
            e.u8(10);
            e.usize(*dodags);
            e.usize(*nodes_per_dodag);
        }
    }
}

fn dec_scenario_spec(d: &mut Dec) -> Result<ScenarioSpec, DecodeError> {
    let link = match d.u8()? {
        0 => None,
        1 => Some(dec_link_model(d)?),
        tag => {
            return Err(DecodeError::BadTag {
                what: "link override",
                tag,
            })
        }
    };
    let topology = match d.u8()? {
        0 => TopologySpec::SingleDodag { n: d.usize()? },
        1 => TopologySpec::TwoDodag {
            nodes_per_dodag: d.usize()?,
        },
        2 => TopologySpec::Line {
            n: d.usize()?,
            spacing: d.f64()?,
        },
        3 => TopologySpec::Star { leaves: d.usize()? },
        4 => TopologySpec::Grid {
            cols: d.usize()?,
            rows: d.usize()?,
            spacing: d.f64()?,
        },
        5 => TopologySpec::LargeGrid,
        6 => TopologySpec::LargeStar,
        7 => TopologySpec::InterferenceGrid,
        8 => TopologySpec::Random {
            n: d.usize()?,
            side: d.f64()?,
            seed: d.u64()?,
        },
        9 => {
            let name = d.str()?;
            let range = d.f64()?;
            let interference_factor = d.f64()?;
            let link_model = dec_link_model(d)?;
            let n = d.u32()? as usize;
            let mut builder = TopologyBuilder::new(range)
                .interference_factor(interference_factor)
                .link_model(link_model);
            for _ in 0..n {
                builder = builder.node(Position::new(d.f64()?, d.f64()?));
            }
            let n_overrides = d.u32()? as usize;
            for _ in 0..n_overrides {
                let a = NodeId::new(d.u16()?);
                let b = NodeId::new(d.u16()?);
                builder = builder.link_prr(a, b, d.f64()?);
            }
            let n_roots = d.u32()? as usize;
            let mut roots = Vec::with_capacity(d.capacity_for(n_roots, 2));
            for _ in 0..n_roots {
                roots.push(NodeId::new(d.u16()?));
            }
            TopologySpec::Custom(Box::new(Scenario {
                name,
                topology: builder.build(),
                roots,
            }))
        }
        // Tag 10 (`City`) is new in schema v2; v1 streams can never
        // carry it because `Experiment::decode` rejects foreign versions
        // before any tag is read.
        10 => TopologySpec::City {
            dodags: d.usize()?,
            nodes_per_dodag: d.usize()?,
        },
        tag => {
            return Err(DecodeError::BadTag {
                what: "topology",
                tag,
            })
        }
    };
    Ok(ScenarioSpec { topology, link })
}

fn enc_scheduler(e: &mut Enc, s: &SchedulerKind) {
    match s {
        SchedulerKind::GtTsch(cfg) => {
            e.u8(0);
            e.u16(cfg.slotframe_len);
            e.u16(cfg.broadcast_slots);
            e.u16(cfg.shared_slots);
            e.f64(cfg.weights.alpha);
            e.f64(cfg.weights.beta);
            e.f64(cfg.weights.gamma);
            e.f64(cfg.zeta);
            e.u8(cfg.fbcast);
            e.u16(cfg.rx_advertise_cap);
            e.u16(cfg.delete_slack);
            e.bool(cfg.hash_channels);
        }
        SchedulerKind::Orchestra(cfg) => {
            e.u8(1);
            e.u16(cfg.eb_len);
            e.u16(cfg.common_len);
            e.u16(cfg.unicast_len);
            e.bool(cfg.sender_based);
        }
        SchedulerKind::Minimal { slotframe_len } => {
            e.u8(2);
            e.u16(*slotframe_len);
        }
    }
}

fn dec_scheduler(d: &mut Dec) -> Result<SchedulerKind, DecodeError> {
    Ok(match d.u8()? {
        0 => SchedulerKind::GtTsch(GtTschConfig {
            slotframe_len: d.u16()?,
            broadcast_slots: d.u16()?,
            shared_slots: d.u16()?,
            weights: GameWeights {
                alpha: d.f64()?,
                beta: d.f64()?,
                gamma: d.f64()?,
            },
            zeta: d.f64()?,
            fbcast: d.u8()?,
            rx_advertise_cap: d.u16()?,
            delete_slack: d.u16()?,
            hash_channels: d.bool()?,
        }),
        1 => SchedulerKind::Orchestra(OrchestraConfig {
            eb_len: d.u16()?,
            common_len: d.u16()?,
            unicast_len: d.u16()?,
            sender_based: d.bool()?,
        }),
        2 => SchedulerKind::Minimal {
            slotframe_len: d.u16()?,
        },
        tag => {
            return Err(DecodeError::BadTag {
                what: "scheduler",
                tag,
            })
        }
    })
}

fn enc_overlay(e: &mut Enc, o: &Overlay) {
    match o {
        Overlay::Noise(n) => {
            e.u8(0);
            e.duration(n.quiet);
            e.duration(n.burst);
            e.f64(n.prr_factor);
        }
        Overlay::Mobility(m) => {
            e.u8(1);
            e.u32(m.hops.len() as u32);
            for h in &m.hops {
                e.duration(h.at);
                e.u16(h.node.raw());
                e.f64(h.to.x);
                e.f64(h.to.y);
            }
        }
        Overlay::DutyCycle(b) => {
            e.u8(2);
            e.duration(b.window);
            e.duration(b.check);
            e.f64(b.max_duty_percent);
        }
    }
}

fn dec_overlay(d: &mut Dec) -> Result<Overlay, DecodeError> {
    Ok(match d.u8()? {
        0 => Overlay::Noise(NoiseBurst {
            quiet: d.duration()?,
            burst: d.duration()?,
            prr_factor: d.f64()?,
        }),
        1 => {
            let n = d.u32()? as usize;
            let mut hops = Vec::with_capacity(d.capacity_for(n, 26));
            for _ in 0..n {
                hops.push(WaypointHop {
                    at: d.duration()?,
                    node: NodeId::new(d.u16()?),
                    to: Position::new(d.f64()?, d.f64()?),
                });
            }
            Overlay::Mobility(StepMobility { hops })
        }
        2 => Overlay::DutyCycle(DutyCycleBudget {
            window: d.duration()?,
            check: d.duration()?,
            max_duty_percent: d.f64()?,
        }),
        tag => {
            return Err(DecodeError::BadTag {
                what: "overlay",
                tag,
            })
        }
    })
}

impl Experiment {
    /// Encodes the experiment into its canonical byte form.
    ///
    /// Equal experiments produce identical bytes (there is no ambient
    /// state, no map iteration, no pointer-dependent ordering), so the
    /// result is a stable wire format *and* the input of cache-key
    /// hashing. Floats are stored as exact bit patterns.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_version(ENCODING_VERSION)
    }

    /// [`Experiment::encode`] with an explicit schema version, for
    /// schema-evolution tests (a bumped version must invalidate every
    /// derived cache key). Production callers use [`Experiment::encode`].
    pub fn encode_with_version(&self, version: u16) -> Vec<u8> {
        let mut e = Enc {
            buf: Vec::with_capacity(128),
        };
        e.buf.extend_from_slice(MAGIC);
        e.u16(version);
        enc_scenario_spec(&mut e, &self.scenario);
        enc_scheduler(&mut e, &self.scheduler);
        let RunSpec {
            traffic_ppm,
            warmup_secs,
            measure_secs,
            seed,
            low_power,
        } = self.run;
        e.f64(traffic_ppm);
        e.u64(warmup_secs);
        e.u64(measure_secs);
        e.u64(seed);
        e.bool(low_power);
        e.u32(self.overlays.len() as u32);
        for o in &self.overlays {
            enc_overlay(&mut e, o);
        }
        e.buf
    }

    /// Decodes an experiment from its canonical byte form, rejecting
    /// foreign schema versions and trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Experiment, DecodeError> {
        let mut d = Dec { rest: bytes };
        if d.take(MAGIC.len())? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = d.u16()?;
        if version != ENCODING_VERSION {
            return Err(DecodeError::UnsupportedVersion(version));
        }
        let scenario = dec_scenario_spec(&mut d)?;
        let scheduler = dec_scheduler(&mut d)?;
        let run = RunSpec {
            traffic_ppm: d.f64()?,
            warmup_secs: d.u64()?,
            measure_secs: d.u64()?,
            seed: d.u64()?,
            low_power: d.bool()?,
        };
        let n = d.u32()? as usize;
        let mut overlays = Vec::with_capacity(d.capacity_for(n, 25));
        for _ in 0..n {
            overlays.push(dec_overlay(&mut d)?);
        }
        if !d.rest.is_empty() {
            return Err(DecodeError::TrailingBytes);
        }
        Ok(Experiment {
            scenario,
            scheduler,
            run,
            overlays,
            // Trace output is an observer concern, not part of the
            // experiment identity — never encoded, always None here.
            trace: None,
        })
    }

    /// The canonical encoding as lowercase hex — the one-line text form
    /// used by `sweep_worker` shard files and `--list` output.
    pub fn encode_hex(&self) -> String {
        let bytes = self.encode();
        let mut out = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            out.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
        }
        out
    }

    /// Decodes the hex form produced by [`Experiment::encode_hex`].
    pub fn decode_hex(hex: &str) -> Result<Experiment, DecodeError> {
        let hex = hex.trim();
        if hex.len() % 2 != 0 {
            return Err(DecodeError::BadHex);
        }
        let mut bytes = Vec::with_capacity(hex.len() / 2);
        let digits = hex.as_bytes();
        for pair in digits.chunks_exact(2) {
            let hi = (pair[0] as char).to_digit(16).ok_or(DecodeError::BadHex)?;
            let lo = (pair[1] as char).to_digit(16).ok_or(DecodeError::BadHex)?;
            bytes.push(((hi << 4) | lo) as u8);
        }
        Experiment::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Overlay;

    /// An experiment touching every encoder branch at once, with floats
    /// picked to catch any bit-pattern sloppiness.
    fn kitchen_sink() -> Experiment {
        let custom = Scenario {
            name: "diamond".into(),
            topology: TopologyBuilder::new(40.0)
                .interference_factor(1.5)
                .link_model(LinkModel::DistanceFalloff {
                    plateau: 0.6,
                    edge_prr: 0.8,
                })
                .node(Position::new(0.0, -0.0))
                .node(Position::new(30.0, 18.0))
                .node(Position::new(30.0, -18.0))
                .link_prr(NodeId::new(0), NodeId::new(2), 0.1 + 0.2) // 0.30000000000000004
                .build(),
            roots: vec![NodeId::new(0)],
        };
        Experiment {
            scenario: ScenarioSpec::custom(custom).with_link_model(LinkModel::Fixed(0.75)),
            scheduler: SchedulerKind::GtTsch(GtTschConfig {
                weights: GameWeights {
                    alpha: 1.0,
                    beta: f64::MIN_POSITIVE,
                    gamma: -0.0,
                },
                zeta: 0.3,
                ..GtTschConfig::paper_default()
            }),
            run: RunSpec {
                traffic_ppm: 60.0 / 7.0,
                warmup_secs: 1,
                measure_secs: u64::MAX,
                seed: 0x0123_4567_89ab_cdef,
                low_power: true,
            },
            overlays: vec![
                Overlay::Noise(NoiseBurst::wifi_like()),
                Overlay::Mobility(StepMobility::new().hop(
                    SimDuration::from_millis(1_500),
                    NodeId::new(2),
                    Position::new(-1.0, f64::MAX),
                )),
                Overlay::DutyCycle(DutyCycleBudget {
                    window: SimDuration::from_secs(60),
                    check: SimDuration::from_secs(5),
                    max_duty_percent: 2.5,
                }),
            ],
            trace: None,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let exp = kitchen_sink();
        let decoded = Experiment::decode(&exp.encode()).expect("decodes");
        assert_eq!(decoded, exp);
        // Exact f64 bits, not just PartialEq (which -0.0 == 0.0 would
        // satisfy): re-encoding the decoded value must be byte-identical.
        assert_eq!(decoded.encode(), exp.encode());
        // Hex armor round-trips too.
        assert_eq!(Experiment::decode_hex(&exp.encode_hex()).unwrap(), exp);
    }

    #[test]
    fn negative_zero_survives() {
        let mut exp = crate::Experiment::new(ScenarioSpec::star(2), SchedulerKind::minimal(8));
        exp.run.traffic_ppm = -0.0;
        let decoded = Experiment::decode(&exp.encode()).unwrap();
        assert_eq!(decoded.run.traffic_ppm.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn every_builtin_topology_round_trips() {
        let specs = [
            ScenarioSpec::single_dodag(7),
            ScenarioSpec::two_dodag(6),
            ScenarioSpec::line(5, 30.0),
            ScenarioSpec::star(6),
            ScenarioSpec::grid(3, 4, 30.0),
            ScenarioSpec::large_grid(),
            ScenarioSpec::large_star(),
            ScenarioSpec::interference_grid(),
            ScenarioSpec::random(10, 120.0, 5),
            ScenarioSpec::city(4, 25),
        ];
        for spec in specs {
            let exp = crate::Experiment::new(spec, SchedulerKind::orchestra_default());
            assert_eq!(Experiment::decode(&exp.encode()).unwrap(), exp);
        }
    }

    #[test]
    fn city_spec_is_rejected_from_older_version_streams() {
        // `City` (tag 10) arrived with schema v2. A v1 decoder could
        // misparse its bytes, so the version gate — checked before any
        // tag — must wholesale-reject streams stamped with an older
        // version rather than attempt tag-level decoding.
        let exp = crate::Experiment::new(ScenarioSpec::city(10, 100), SchedulerKind::minimal(8));
        let v1 = exp.encode_with_version(1);
        assert_eq!(
            Experiment::decode(&v1),
            Err(DecodeError::UnsupportedVersion(1))
        );
    }

    #[test]
    fn custom_topology_rebuilds_identically() {
        let exp = kitchen_sink();
        let decoded = Experiment::decode(&exp.encode()).unwrap();
        // The rebuilt Scenario must be equal in full — positions, link
        // model, overrides, audibility — not just spec-equal.
        assert_eq!(decoded.scenario.build(), exp.scenario.build());
    }

    #[test]
    fn foreign_version_is_rejected() {
        let exp = kitchen_sink();
        let bumped = exp.encode_with_version(ENCODING_VERSION + 1);
        assert_eq!(
            Experiment::decode(&bumped),
            Err(DecodeError::UnsupportedVersion(ENCODING_VERSION + 1))
        );
    }

    #[test]
    fn corruption_is_detected() {
        let exp = kitchen_sink();
        let bytes = exp.encode();
        assert_eq!(Experiment::decode(&bytes[..3]), Err(DecodeError::Truncated));
        assert_eq!(
            Experiment::decode(&bytes[..bytes.len() - 1]),
            Err(DecodeError::Truncated)
        );
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            Experiment::decode(&extended),
            Err(DecodeError::TrailingBytes)
        );
        let mut wrong_magic = bytes;
        wrong_magic[0] = b'X';
        assert_eq!(Experiment::decode(&wrong_magic), Err(DecodeError::BadMagic));
        assert_eq!(Experiment::decode_hex("abc"), Err(DecodeError::BadHex));
        assert_eq!(Experiment::decode_hex("zz"), Err(DecodeError::BadHex));
    }

    #[test]
    fn corrupted_length_prefix_fails_cleanly() {
        // A flipped hop-count byte must surface as `Truncated`, not as
        // a multi-gigabyte pre-allocation abort: shard files are
        // plain-text surgery targets, torn lines happen.
        let exp = crate::Experiment::new(ScenarioSpec::star(2), SchedulerKind::minimal(8))
            .with_overlay(Overlay::Mobility(StepMobility::new().hop(
                SimDuration::from_secs(1),
                NodeId::new(1),
                Position::ORIGIN,
            )));
        let mut bytes = exp.encode();
        // The single hop (26 bytes) is the tail; the u32 hop count sits
        // immediately before it.
        let count_at = bytes.len() - 26 - 4;
        assert_eq!(bytes[count_at], 1, "hop count located");
        bytes[count_at..count_at + 4].copy_from_slice(&0xffff_fff0u32.to_le_bytes());
        assert_eq!(Experiment::decode(&bytes), Err(DecodeError::Truncated));
    }

    #[test]
    fn encoding_is_canonical_across_equal_values() {
        // Two independently-constructed equal experiments byte-match.
        assert_eq!(kitchen_sink().encode(), kitchen_sink().encode());
        // And a semantic difference anywhere changes the bytes.
        let mut other = kitchen_sink();
        other.run.seed += 1;
        assert_ne!(other.encode(), kitchen_sink().encode());
    }
}
