//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is *data*: a topology generator plus an optional
//! link-model override, comparable, cloneable and canonically encodable
//! (see [`Experiment::encode`](crate::Experiment::encode)). Calling
//! [`ScenarioSpec::build`] materializes it into the [`Scenario`] value
//! (positions, roots, precomputed audibility) the engine consumes — so
//! every experiment input stays a compact description rather than a
//! multi-kilobyte topology dump, and two processes that build the same
//! spec get byte-identical networks.

use gtt_net::LinkModel;

use crate::scenario::Scenario;

/// Which topology generator a scenario uses, with its parameters.
///
/// Variants mirror the [`Scenario`] constructors one-to-one; `Custom`
/// is the escape hatch for hand-built topologies (encoded in full).
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// [`Scenario::single_dodag`].
    SingleDodag {
        /// Nodes in the DODAG (root + rings), `2..=10`.
        n: usize,
    },
    /// [`Scenario::two_dodag`] — the paper's evaluation network.
    TwoDodag {
        /// Nodes per DODAG, `2..=10`.
        nodes_per_dodag: usize,
    },
    /// [`Scenario::line`].
    Line {
        /// Node count (≥ 2).
        n: usize,
        /// Spacing between neighbours, metres.
        spacing: f64,
    },
    /// [`Scenario::star`].
    Star {
        /// Leaf count (≥ 1).
        leaves: usize,
    },
    /// [`Scenario::grid`].
    Grid {
        /// Columns (≥ 1).
        cols: usize,
        /// Rows (≥ 1).
        rows: usize,
        /// Spacing between orthogonal neighbours, metres.
        spacing: f64,
    },
    /// [`Scenario::large_grid`] — the 120-node scaling grid.
    LargeGrid,
    /// [`Scenario::large_star`] — the 120-node dense star.
    LargeStar,
    /// [`Scenario::interference_grid`].
    InterferenceGrid,
    /// [`Scenario::random`].
    Random {
        /// Node count.
        n: usize,
        /// Side of the placement square, metres.
        side: f64,
        /// Placement seed (independent of the run seed).
        seed: u64,
    },
    /// A hand-built scenario, carried (and encoded) in full. Boxed so
    /// the common generator variants stay a few words wide.
    Custom(Box<Scenario>),
    /// [`Scenario::city`] — multi-DODAG clustered layouts at 1k/10k
    /// nodes, one border-router root per cluster.
    City {
        /// Cluster (DODAG) count (≥ 1).
        dodags: usize,
        /// Nodes per cluster including its root (≥ 2).
        nodes_per_dodag: usize,
    },
}

/// Declarative description of the network an experiment runs on: a
/// topology generator plus an optional link-model override.
///
/// The traffic model (per-node CBR rate) lives in
/// [`RunSpec::traffic_ppm`](crate::RunSpec) next to the timing it is
/// meaningless without.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Topology generator.
    pub topology: TopologySpec,
    /// Link-model override (`None` keeps the generator's default —
    /// see [`Scenario::with_link_model`]).
    pub link: Option<LinkModel>,
}

impl ScenarioSpec {
    /// Wraps a topology generator with the default link model.
    pub fn new(topology: TopologySpec) -> Self {
        ScenarioSpec {
            topology,
            link: None,
        }
    }

    /// [`Scenario::single_dodag`] as a spec.
    pub fn single_dodag(n: usize) -> Self {
        Self::new(TopologySpec::SingleDodag { n })
    }

    /// [`Scenario::two_dodag`] as a spec.
    pub fn two_dodag(nodes_per_dodag: usize) -> Self {
        Self::new(TopologySpec::TwoDodag { nodes_per_dodag })
    }

    /// [`Scenario::line`] as a spec.
    pub fn line(n: usize, spacing: f64) -> Self {
        Self::new(TopologySpec::Line { n, spacing })
    }

    /// [`Scenario::star`] as a spec.
    pub fn star(leaves: usize) -> Self {
        Self::new(TopologySpec::Star { leaves })
    }

    /// [`Scenario::grid`] as a spec.
    pub fn grid(cols: usize, rows: usize, spacing: f64) -> Self {
        Self::new(TopologySpec::Grid {
            cols,
            rows,
            spacing,
        })
    }

    /// [`Scenario::large_grid`] as a spec.
    pub fn large_grid() -> Self {
        Self::new(TopologySpec::LargeGrid)
    }

    /// [`Scenario::large_star`] as a spec.
    pub fn large_star() -> Self {
        Self::new(TopologySpec::LargeStar)
    }

    /// [`Scenario::interference_grid`] as a spec.
    pub fn interference_grid() -> Self {
        Self::new(TopologySpec::InterferenceGrid)
    }

    /// [`Scenario::random`] as a spec.
    pub fn random(n: usize, side: f64, seed: u64) -> Self {
        Self::new(TopologySpec::Random { n, side, seed })
    }

    /// Wraps a hand-built [`Scenario`].
    pub fn custom(scenario: Scenario) -> Self {
        Self::new(TopologySpec::Custom(Box::new(scenario)))
    }

    /// [`Scenario::city`] as a spec.
    pub fn city(dodags: usize, nodes_per_dodag: usize) -> Self {
        Self::new(TopologySpec::City {
            dodags,
            nodes_per_dodag,
        })
    }

    /// Replaces the link model (builder style).
    pub fn with_link_model(mut self, model: LinkModel) -> Self {
        self.link = Some(model);
        self
    }

    /// The scenario's human-readable name, without building it.
    pub fn name(&self) -> String {
        match &self.topology {
            TopologySpec::SingleDodag { n } => format!("single-dodag-{n}"),
            TopologySpec::TwoDodag { nodes_per_dodag } => format!("two-dodag-{nodes_per_dodag}"),
            TopologySpec::Line { n, .. } => format!("line-{n}"),
            TopologySpec::Star { leaves } => format!("star-{leaves}"),
            TopologySpec::Grid { cols, rows, .. } => format!("grid-{cols}x{rows}"),
            TopologySpec::LargeGrid => "large-grid-120".into(),
            TopologySpec::LargeStar => "large-star-120".into(),
            TopologySpec::InterferenceGrid => "interference-grid-120".into(),
            TopologySpec::Random { n, .. } => format!("random-{n}"),
            TopologySpec::Custom(s) => s.name.clone(),
            TopologySpec::City {
                dodags,
                nodes_per_dodag,
            } => format!("city-{dodags}x{nodes_per_dodag}"),
        }
    }

    /// Materializes the spec into a runnable [`Scenario`].
    ///
    /// # Panics
    ///
    /// Panics when the generator's parameter constraints are violated
    /// (each constructor documents its own).
    pub fn build(&self) -> Scenario {
        let scenario = match &self.topology {
            TopologySpec::SingleDodag { n } => Scenario::single_dodag(*n),
            TopologySpec::TwoDodag { nodes_per_dodag } => Scenario::two_dodag(*nodes_per_dodag),
            TopologySpec::Line { n, spacing } => Scenario::line(*n, *spacing),
            TopologySpec::Star { leaves } => Scenario::star(*leaves),
            TopologySpec::Grid {
                cols,
                rows,
                spacing,
            } => Scenario::grid(*cols, *rows, *spacing),
            TopologySpec::LargeGrid => Scenario::large_grid(),
            TopologySpec::LargeStar => Scenario::large_star(),
            TopologySpec::InterferenceGrid => Scenario::interference_grid(),
            TopologySpec::Random { n, side, seed } => Scenario::random(*n, *side, *seed),
            TopologySpec::Custom(s) => (**s).clone(),
            TopologySpec::City {
                dodags,
                nodes_per_dodag,
            } => Scenario::city(*dodags, *nodes_per_dodag),
        };
        match self.link {
            Some(model) => scenario.with_link_model(model),
            None => scenario,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_net::NodeId;

    #[test]
    fn specs_build_the_same_scenarios_as_the_constructors() {
        let pairs: Vec<(ScenarioSpec, Scenario)> = vec![
            (ScenarioSpec::single_dodag(7), Scenario::single_dodag(7)),
            (ScenarioSpec::two_dodag(6), Scenario::two_dodag(6)),
            (ScenarioSpec::line(5, 30.0), Scenario::line(5, 30.0)),
            (ScenarioSpec::star(6), Scenario::star(6)),
            (ScenarioSpec::grid(3, 4, 30.0), Scenario::grid(3, 4, 30.0)),
            (ScenarioSpec::large_grid(), Scenario::large_grid()),
            (ScenarioSpec::large_star(), Scenario::large_star()),
            (
                ScenarioSpec::interference_grid(),
                Scenario::interference_grid(),
            ),
            (
                ScenarioSpec::random(10, 120.0, 5),
                Scenario::random(10, 120.0, 5),
            ),
            (ScenarioSpec::city(4, 25), Scenario::city(4, 25)),
        ];
        for (spec, scenario) in pairs {
            assert_eq!(spec.build(), scenario, "{}", spec.name());
            assert_eq!(spec.name(), scenario.name);
        }
    }

    #[test]
    fn link_override_applies() {
        let spec = ScenarioSpec::star(3).with_link_model(LinkModel::Perfect);
        let built = spec.build();
        assert_eq!(built.topology.prr(NodeId::new(0), NodeId::new(1)), 1.0);
        assert_eq!(built, Scenario::star(3).with_link_model(LinkModel::Perfect));
    }

    #[test]
    fn custom_round_trips_through_build() {
        let scenario = Scenario::line(3, 25.0);
        let spec = ScenarioSpec::custom(scenario.clone());
        assert_eq!(spec.build(), scenario);
        assert_eq!(spec.name(), "line-3");
    }
}
