//! MAC payload encodings of the engine's control and data messages.
//!
//! Everything that is not an enhanced beacon rides in an 802.15.4 data
//! frame whose MAC payload starts with a 1-byte kind tag:
//!
//! ```text
//! 0x01 app data   id:u64 LE | generated_at_us:u64 LE | hops:u8
//! 0x02 RPL DIO    dodag_root:u16 LE | version:u8 | rank:u16 LE | rx_free:u16 LE
//! 0x03 RPL DAO    child:u16 LE | no_path:u8 (0/1)
//! 0x04 6P         the RFC 8480-style bytes of SixpMessage::encode
//! ```
//!
//! The simulator's application payload is abstract (there are no app
//! bytes to serialize), so the data encoding carries exactly the frame
//! metadata that makes a trace diffable: the origin-keyed packet id,
//! the generation timestamp and the hop count. Decoding is strict —
//! every kind has one canonical byte form, trailing bytes are rejected
//! — so `encode(decode(bytes)) == bytes` holds for every accepted
//! input.

use gtt_sixtop::SixpMessage;

use crate::FrameError;

const KIND_APP: u8 = 0x01;
const KIND_DIO: u8 = 0x02;
const KIND_DAO: u8 = 0x03;
const KIND_SIXP: u8 = 0x04;

/// Typed MAC payload of a data frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePayload {
    /// An application packet (the engine's `Payload::Data`).
    App {
        /// Origin-keyed engine packet id (`origin << 48 | seq`).
        id: u64,
        /// Generation time of the packet, microseconds of sim time.
        generated_us: u64,
        /// Hops travelled so far (incremented per forward).
        hops: u8,
    },
    /// An RPL DODAG Information Object.
    Dio {
        /// Short address of the DODAG root.
        dodag_root: u16,
        /// DODAG version.
        version: u8,
        /// Advertised rank (raw wire value).
        rank: u16,
        /// GT-TSCH rx-capacity piggyback.
        rx_free: u16,
    },
    /// An RPL Destination Advertisement Object.
    Dao {
        /// Short address of the advertising child.
        child: u16,
        /// No-path DAO (route retraction).
        no_path: bool,
    },
    /// A 6top protocol message (RFC 8480-style encoding).
    SixP(SixpMessage),
}

impl WirePayload {
    /// Appends the tagged payload bytes to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WirePayload::App {
                id,
                generated_us,
                hops,
            } => {
                buf.push(KIND_APP);
                buf.extend_from_slice(&id.to_le_bytes());
                buf.extend_from_slice(&generated_us.to_le_bytes());
                buf.push(*hops);
            }
            WirePayload::Dio {
                dodag_root,
                version,
                rank,
                rx_free,
            } => {
                buf.push(KIND_DIO);
                buf.extend_from_slice(&dodag_root.to_le_bytes());
                buf.push(*version);
                buf.extend_from_slice(&rank.to_le_bytes());
                buf.extend_from_slice(&rx_free.to_le_bytes());
            }
            WirePayload::Dao { child, no_path } => {
                buf.push(KIND_DAO);
                buf.extend_from_slice(&child.to_le_bytes());
                buf.push(u8::from(*no_path));
            }
            WirePayload::SixP(msg) => {
                buf.push(KIND_SIXP);
                buf.extend_from_slice(&msg.encode());
            }
        }
    }

    /// Decodes a tagged payload, rejecting unknown kinds, truncation,
    /// trailing bytes and non-canonical forms.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        let (&kind, body) = bytes.split_first().ok_or(FrameError::Truncated)?;
        match kind {
            KIND_APP => {
                if body.len() != 17 {
                    return Err(FrameError::BadPayload);
                }
                Ok(WirePayload::App {
                    id: u64::from_le_bytes(body[0..8].try_into().expect("length checked")),
                    generated_us: u64::from_le_bytes(
                        body[8..16].try_into().expect("length checked"),
                    ),
                    hops: body[16],
                })
            }
            KIND_DIO => {
                if body.len() != 7 {
                    return Err(FrameError::BadPayload);
                }
                Ok(WirePayload::Dio {
                    dodag_root: u16::from_le_bytes([body[0], body[1]]),
                    version: body[2],
                    rank: u16::from_le_bytes([body[3], body[4]]),
                    rx_free: u16::from_le_bytes([body[5], body[6]]),
                })
            }
            KIND_DAO => {
                if body.len() != 3 {
                    return Err(FrameError::BadPayload);
                }
                let no_path = match body[2] {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadPayload),
                };
                Ok(WirePayload::Dao {
                    child: u16::from_le_bytes([body[0], body[1]]),
                    no_path,
                })
            }
            KIND_SIXP => {
                let msg = SixpMessage::decode(body).map_err(FrameError::BadSixp)?;
                // `SixpMessage::decode` tolerates nothing *inside* the
                // message but does not police length itself; requiring
                // the canonical re-encoding keeps byte-level round
                // trips exact (and rejects trailing garbage).
                if msg.encode().as_ref() != body {
                    return Err(FrameError::BadPayload);
                }
                Ok(WirePayload::SixP(msg))
            }
            _ => Err(FrameError::BadPayload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_sixtop::{CellSpec, SixpBody, SixpCellKind};

    fn round_trip(p: &WirePayload) {
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let decoded = WirePayload::decode(&buf).unwrap();
        assert_eq!(&decoded, p);
        let mut again = Vec::new();
        decoded.encode(&mut again);
        assert_eq!(again, buf);
    }

    #[test]
    fn every_kind_round_trips() {
        round_trip(&WirePayload::App {
            id: (3 << 48) | 99,
            generated_us: 1_234_567,
            hops: 2,
        });
        round_trip(&WirePayload::Dio {
            dodag_root: 0,
            version: 1,
            rank: 768,
            rx_free: 5,
        });
        round_trip(&WirePayload::Dao {
            child: 7,
            no_path: true,
        });
        round_trip(&WirePayload::SixP(SixpMessage::new(
            4,
            SixpBody::AddRequest {
                kind: SixpCellKind::Data,
                num_cells: 1,
                cells: vec![CellSpec::new(10, 3)],
            },
        )));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        WirePayload::Dao {
            child: 1,
            no_path: false,
        }
        .encode(&mut buf);
        buf.push(0);
        assert!(WirePayload::decode(&buf).is_err());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(WirePayload::decode(&[0x7f, 1, 2, 3]).is_err());
        assert!(WirePayload::decode(&[]).is_err());
    }
}
