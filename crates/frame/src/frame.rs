//! Whole-frame encoding and the zero-copy reader.
//!
//! Three MPDU shapes cover everything the simulator puts on the air:
//!
//! ```text
//! EB      FCF | dstPAN | dst=ffff | src | Sync IE | Timeslot IE | gtt IE | FCS
//! data    FCF | [seq] | dstPAN | dst | src | tagged payload | FCS
//! imm-ACK FCF | seq | FCS
//! ```
//!
//! EBs and data frames are frame version 0b10 (802.15.4e) with short
//! addressing and PAN ID compression (one PAN field, [`GTT_PAN_ID`]);
//! the immediate ACK is the classic version 0b00 5-byte MPDU. Control
//! frames (EB/DIO/DAO/6P) suppress the sequence number — they carry no
//! per-origin counter in the engine — while application data carries
//! the low byte of its origin-keyed packet id as DSN.
//!
//! Representation *is* the buffer: [`WireFrame::encode`] writes the
//! canonical bytes into a caller-owned reusable `Vec<u8>`, and
//! [`FrameView::parse`] borrows a received `&[u8]` without allocating.
//! Decoding is strict (exactly one byte form per frame), so
//! `encode(decode(bytes)) == bytes` for every accepted input, and no
//! malformed input — truncation, bad FCS, reserved FCF bits, trailing
//! garbage — ever panics.

use crate::fcf::{AddrMode, Fcf, FrameType};
use crate::fcs::crc16;
use crate::ie::{HeaderIe, HeaderIeIter};
use crate::payload::WirePayload;
use crate::FrameError;

/// The PAN ID every simulated network shares (ASCII "gT").
pub const GTT_PAN_ID: u16 = 0x6754;
/// The 16-bit broadcast short address.
pub const BROADCAST: u16 = 0xffff;
/// Timeslot template ID advertised in EBs: `1` = defined by the higher
/// layer (the simulator's 15 ms template, see `gtt_mac::airtime`), not
/// the standard's default 10 ms template `0`.
pub const GTT_TIMESLOT_TEMPLATE: u8 = 1;

/// The TSCH-mode fields of an enhanced beacon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EbFields {
    /// ASN of the slot the beacon goes out in (low 40 bits are encoded).
    pub asn: u64,
    /// Join metric of the Synchronization IE.
    pub join_metric: u8,
    /// GT-TSCH piggyback: advertised Rx channel, if chosen.
    pub rx_channel: Option<u8>,
    /// GT-TSCH piggyback: advertised free Rx-cell count.
    pub rx_free: u16,
}

/// One typed MAC frame — the decoded form of a full MPDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFrame {
    /// An enhanced beacon (broadcast, sequence number suppressed).
    Eb {
        /// Transmitter short address.
        src: u16,
        /// Beacon contents.
        eb: EbFields,
    },
    /// A data frame (application data or DIO/DAO/6P control plane).
    Data {
        /// Transmitter short address.
        src: u16,
        /// Destination short address ([`BROADCAST`] for broadcast).
        dst: u16,
        /// Sequence number; `None` = suppressed (control frames).
        seq: Option<u8>,
        /// Tagged MAC payload.
        payload: WirePayload,
    },
    /// An immediate acknowledgement.
    Ack {
        /// Sequence number being acknowledged.
        seq: u8,
    },
}

impl WireFrame {
    /// Encodes the canonical MPDU (header through FCS) into `buf`,
    /// replacing its contents. The buffer is reusable across calls —
    /// steady-state encoding does not allocate once it has grown to the
    /// largest frame seen.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.clear();
        match self {
            WireFrame::Eb { src, eb } => {
                let fcf = Fcf {
                    frame_type: FrameType::Beacon,
                    ack_request: false,
                    pan_id_compression: true,
                    seq_suppressed: true,
                    ie_present: true,
                    dst_mode: AddrMode::Short,
                    version: 0b10,
                    src_mode: AddrMode::Short,
                };
                buf.extend_from_slice(&fcf.bits().to_le_bytes());
                buf.extend_from_slice(&GTT_PAN_ID.to_le_bytes());
                buf.extend_from_slice(&BROADCAST.to_le_bytes());
                buf.extend_from_slice(&src.to_le_bytes());
                HeaderIe::TschSync {
                    asn: eb.asn & 0xff_ffff_ffff,
                    join_metric: eb.join_metric,
                }
                .encode(buf);
                HeaderIe::TschTimeslot {
                    template_id: GTT_TIMESLOT_TEMPLATE,
                }
                .encode(buf);
                HeaderIe::GttEbInfo {
                    rx_channel: eb.rx_channel,
                    rx_free: eb.rx_free,
                }
                .encode(buf);
            }
            WireFrame::Data {
                src,
                dst,
                seq,
                payload,
            } => {
                let fcf = Fcf {
                    frame_type: FrameType::Data,
                    ack_request: *dst != BROADCAST,
                    pan_id_compression: true,
                    seq_suppressed: seq.is_none(),
                    ie_present: false,
                    dst_mode: AddrMode::Short,
                    version: 0b10,
                    src_mode: AddrMode::Short,
                };
                buf.extend_from_slice(&fcf.bits().to_le_bytes());
                if let Some(seq) = seq {
                    buf.push(*seq);
                }
                buf.extend_from_slice(&GTT_PAN_ID.to_le_bytes());
                buf.extend_from_slice(&dst.to_le_bytes());
                buf.extend_from_slice(&src.to_le_bytes());
                payload.encode(buf);
            }
            WireFrame::Ack { seq } => {
                let fcf = Fcf {
                    frame_type: FrameType::Ack,
                    ack_request: false,
                    pan_id_compression: false,
                    seq_suppressed: false,
                    ie_present: false,
                    dst_mode: AddrMode::None,
                    version: 0b00,
                    src_mode: AddrMode::None,
                };
                buf.extend_from_slice(&fcf.bits().to_le_bytes());
                buf.push(*seq);
            }
        }
        let fcs = crc16(buf);
        buf.extend_from_slice(&fcs.to_le_bytes());
    }

    /// Convenience: encode into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }

    /// Decodes a full MPDU. Equivalent to
    /// `FrameView::parse(bytes)?.to_frame()`.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        FrameView::parse(bytes)?.to_frame()
    }
}

/// A zero-copy reader over one received MPDU.
///
/// `parse` validates the FCS and the header structure and records
/// field offsets; the accessors then read straight out of the borrowed
/// buffer. Nothing is allocated.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    buf: &'a [u8],
    fcf: Fcf,
    /// Offset of the sequence number, if present.
    seq_at: Option<usize>,
    /// Offset of the destination PAN ID (addressed frames only).
    addr_at: usize,
    /// Offset of the first byte after the MAC header (IE list for
    /// beacons, payload for data frames).
    body_at: usize,
}

impl<'a> FrameView<'a> {
    /// Parses and structurally validates `bytes` as one MPDU.
    ///
    /// Checks, in order: minimum length, FCS, FCF (rejecting anything
    /// the simulator never emits), field presence against the FCF, and
    /// — for ACKs — exact length. Never panics on malformed input.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, FrameError> {
        // FCF + FCS is the absolute minimum.
        if bytes.len() < 4 {
            return Err(FrameError::Truncated);
        }
        let (body, fcs_bytes) = bytes.split_at(bytes.len() - 2);
        let expected = crc16(body);
        let found = u16::from_le_bytes([fcs_bytes[0], fcs_bytes[1]]);
        if expected != found {
            return Err(FrameError::BadFcs { expected, found });
        }
        let fcf = Fcf::from_bits(u16::from_le_bytes([bytes[0], bytes[1]]))?;
        let mut at = 2;
        let seq_at = match (fcf.frame_type, fcf.seq_suppressed) {
            (FrameType::Ack, _) | (_, false) => {
                if body.len() < at + 1 {
                    return Err(FrameError::Truncated);
                }
                at += 1;
                Some(at - 1)
            }
            (_, true) => None,
        };
        let addr_at = at;
        match fcf.frame_type {
            FrameType::Ack => {
                if fcf.dst_mode != AddrMode::None
                    || fcf.src_mode != AddrMode::None
                    || fcf.version != 0b00
                    || fcf.seq_suppressed
                    || fcf.ack_request
                    || fcf.pan_id_compression
                    || fcf.ie_present
                    || body.len() != 3
                {
                    return Err(FrameError::UnsupportedFcf(fcf.bits()));
                }
            }
            FrameType::Beacon | FrameType::Data => {
                if fcf.dst_mode != AddrMode::Short
                    || fcf.src_mode != AddrMode::Short
                    || !fcf.pan_id_compression
                    || fcf.version != 0b10
                {
                    return Err(FrameError::UnsupportedFcf(fcf.bits()));
                }
                // dst PAN + dst + src, each 2 bytes.
                if body.len() < at + 6 {
                    return Err(FrameError::Truncated);
                }
                at += 6;
            }
        }
        Ok(FrameView {
            buf: bytes,
            fcf,
            seq_at,
            addr_at,
            body_at: at,
        })
    }

    /// The decoded frame control field.
    pub fn fcf(&self) -> Fcf {
        self.fcf
    }

    /// The sequence number, unless suppressed.
    pub fn seq(&self) -> Option<u8> {
        self.seq_at.map(|i| self.buf[i])
    }

    /// The destination PAN ID (addressed frames; `None` for ACKs).
    pub fn dst_pan(&self) -> Option<u16> {
        (self.fcf.frame_type != FrameType::Ack)
            .then(|| u16::from_le_bytes([self.buf[self.addr_at], self.buf[self.addr_at + 1]]))
    }

    /// The destination short address.
    pub fn dst(&self) -> Option<u16> {
        (self.fcf.frame_type != FrameType::Ack)
            .then(|| u16::from_le_bytes([self.buf[self.addr_at + 2], self.buf[self.addr_at + 3]]))
    }

    /// The source short address.
    pub fn src(&self) -> Option<u16> {
        (self.fcf.frame_type != FrameType::Ack)
            .then(|| u16::from_le_bytes([self.buf[self.addr_at + 4], self.buf[self.addr_at + 5]]))
    }

    /// Everything between the MAC header and the FCS — the header-IE
    /// list for beacons, the tagged payload for data frames.
    pub fn body(&self) -> &'a [u8] {
        &self.buf[self.body_at..self.buf.len() - 2]
    }

    /// The received FCS (already verified by [`FrameView::parse`]).
    pub fn fcs(&self) -> u16 {
        let n = self.buf.len();
        u16::from_le_bytes([self.buf[n - 2], self.buf[n - 1]])
    }

    /// Iterates the header IEs of a beacon (empty for other frames).
    pub fn header_ies(&self) -> HeaderIeIter<'a> {
        match self.fcf.frame_type {
            FrameType::Beacon => HeaderIeIter::new(self.body()),
            _ => HeaderIeIter::new(&[]),
        }
    }

    /// Fully decodes into the typed [`WireFrame`], enforcing the
    /// canonical shape (EBs carry exactly the Sync, Timeslot and gtt
    /// IEs in that order; payloads are strict).
    pub fn to_frame(&self) -> Result<WireFrame, FrameError> {
        match self.fcf.frame_type {
            FrameType::Ack => Ok(WireFrame::Ack {
                seq: self.seq().ok_or(FrameError::Truncated)?,
            }),
            FrameType::Beacon => {
                if self.dst() != Some(BROADCAST)
                    || self.dst_pan() != Some(GTT_PAN_ID)
                    || !self.fcf.seq_suppressed
                    || !self.fcf.ie_present
                    || self.fcf.ack_request
                {
                    return Err(FrameError::UnsupportedFcf(self.fcf.bits()));
                }
                let mut ies = self.header_ies();
                let (asn, join_metric) = match ies.next() {
                    Some(Ok(HeaderIe::TschSync { asn, join_metric })) => (asn, join_metric),
                    Some(Err(e)) => return Err(e),
                    _ => return Err(FrameError::BadIe),
                };
                match ies.next() {
                    Some(Ok(HeaderIe::TschTimeslot { template_id }))
                        if template_id == GTT_TIMESLOT_TEMPLATE => {}
                    Some(Err(e)) => return Err(e),
                    _ => return Err(FrameError::BadIe),
                }
                let (rx_channel, rx_free) = match ies.next() {
                    Some(Ok(HeaderIe::GttEbInfo {
                        rx_channel,
                        rx_free,
                    })) => (rx_channel, rx_free),
                    Some(Err(e)) => return Err(e),
                    _ => return Err(FrameError::BadIe),
                };
                if ies.next().is_some() {
                    return Err(FrameError::BadIe);
                }
                Ok(WireFrame::Eb {
                    src: self.src().ok_or(FrameError::Truncated)?,
                    eb: EbFields {
                        asn,
                        join_metric,
                        rx_channel,
                        rx_free,
                    },
                })
            }
            FrameType::Data => {
                let dst = self.dst().ok_or(FrameError::Truncated)?;
                if self.dst_pan() != Some(GTT_PAN_ID)
                    || self.fcf.ie_present
                    || self.fcf.ack_request != (dst != BROADCAST)
                {
                    return Err(FrameError::UnsupportedFcf(self.fcf.bits()));
                }
                Ok(WireFrame::Data {
                    src: self.src().ok_or(FrameError::Truncated)?,
                    dst,
                    seq: self.seq(),
                    payload: WirePayload::decode(self.body())?,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frames() -> Vec<WireFrame> {
        vec![
            WireFrame::Eb {
                src: 3,
                eb: EbFields {
                    asn: 123_456,
                    join_metric: 0,
                    rx_channel: Some(20),
                    rx_free: 6,
                },
            },
            WireFrame::Data {
                src: 5,
                dst: 1,
                seq: Some(0x2a),
                payload: WirePayload::App {
                    id: (5 << 48) | 42,
                    generated_us: 9_000_000,
                    hops: 0,
                },
            },
            WireFrame::Data {
                src: 2,
                dst: BROADCAST,
                seq: None,
                payload: WirePayload::Dio {
                    dodag_root: 0,
                    version: 1,
                    rank: 512,
                    rx_free: 3,
                },
            },
            WireFrame::Ack { seq: 0x2a },
        ]
    }

    #[test]
    fn frames_round_trip_byte_identically() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes();
            let decoded = WireFrame::decode(&bytes).unwrap();
            assert_eq!(decoded, frame);
            assert_eq!(decoded.to_bytes(), bytes);
        }
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes();
            for cut in 0..bytes.len() {
                assert!(
                    WireFrame::decode(&bytes[..cut]).is_err(),
                    "{frame:?} truncated to {cut} bytes was accepted"
                );
            }
        }
    }

    #[test]
    fn bad_fcs_is_rejected() {
        let mut bytes = sample_frames()[0].to_bytes();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(matches!(
            WireFrame::decode(&bytes),
            Err(FrameError::BadFcs { .. })
        ));
    }

    #[test]
    fn view_exposes_the_header_fields() {
        let frame = WireFrame::Data {
            src: 9,
            dst: 4,
            seq: Some(7),
            payload: WirePayload::Dao {
                child: 9,
                no_path: false,
            },
        };
        let bytes = frame.to_bytes();
        let view = FrameView::parse(&bytes).unwrap();
        assert_eq!(view.src(), Some(9));
        assert_eq!(view.dst(), Some(4));
        assert_eq!(view.dst_pan(), Some(GTT_PAN_ID));
        assert_eq!(view.seq(), Some(7));
        assert!(view.fcf().ack_request);
        assert_eq!(view.fcs(), crc16(&bytes[..bytes.len() - 2]));
    }

    #[test]
    fn ack_is_the_classic_five_byte_mpdu() {
        assert_eq!(WireFrame::Ack { seq: 0 }.to_bytes().len(), 5);
    }
}
