//! A classic-pcap sink for [`FrameTap`] records, plus the structural
//! validator the CI trace-smoke step uses.
//!
//! The capture is LINKTYPE 195 (`DLT_IEEE802_15_4`, FCS included — the
//! codec always appends and verifies the FCS). Timestamps are pure sim
//! time: the start of the transmission's slot (`ASN × slot length`),
//! never the wall clock, so a trace is a deterministic byte-level
//! function of the experiment that produced it — two runs of the same
//! `Experiment` yield byte-identical files (see `DETERMINISM.md`).

use std::sync::{Arc, Mutex};

use gtt_net::{FrameTap, TapRecord};

/// pcap linktype for IEEE 802.15.4 with FCS (`DLT_IEEE802_15_4`).
pub const LINKTYPE_IEEE802_15_4: u32 = 195;
/// Magic number of a little-endian classic pcap file.
pub const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// Length of the pcap global header.
pub const GLOBAL_HEADER_LEN: usize = 24;
/// Length of each per-packet record header.
pub const RECORD_HEADER_LEN: usize = 16;

/// Appends the 24-byte little-endian global header to `out`.
pub fn write_global_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_IEEE802_15_4.to_le_bytes());
}

/// Appends one packet record (header + frame bytes) to `out`, with the
/// timestamp split from `time_us` microseconds of sim time.
pub fn write_record(out: &mut Vec<u8>, time_us: u64, frame: &[u8]) {
    let len = frame.len() as u32;
    out.extend_from_slice(&((time_us / 1_000_000) as u32).to_le_bytes());
    out.extend_from_slice(&((time_us % 1_000_000) as u32).to_le_bytes());
    out.extend_from_slice(&len.to_le_bytes()); // incl_len
    out.extend_from_slice(&len.to_le_bytes()); // orig_len
    out.extend_from_slice(frame);
}

/// A [`FrameTap`] that appends each record to a shared pcap byte
/// buffer.
///
/// [`PcapTap::new`] returns the tap and the buffer it writes into
/// (already seeded with the global header); the caller keeps the
/// second `Arc` and reclaims the bytes once the tap is dropped — see
/// `Experiment::run_traced` in `gtt-workload` for the canonical flow.
#[derive(Debug)]
pub struct PcapTap {
    out: Arc<Mutex<Vec<u8>>>,
}

impl PcapTap {
    /// Creates a tap and the shared buffer it appends to.
    pub fn new() -> (PcapTap, Arc<Mutex<Vec<u8>>>) {
        let mut bytes = Vec::new();
        write_global_header(&mut bytes);
        let out = Arc::new(Mutex::new(bytes));
        (PcapTap { out: out.clone() }, out)
    }
}

impl FrameTap for PcapTap {
    fn on_transmission(&mut self, record: &TapRecord<'_>) {
        let mut out = self.out.lock().expect("pcap buffer poisoned");
        write_record(&mut out, record.time.as_micros(), record.bytes);
    }
}

/// What [`validate`] learned about a structurally valid capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapSummary {
    /// Number of packet records.
    pub packets: usize,
    /// Total frame bytes across records (headers excluded).
    pub frame_bytes: usize,
}

/// Why a byte buffer is not a valid capture of this simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Shorter than a global header, or a record header overruns.
    Truncated,
    /// Wrong magic/version/linktype for this writer.
    BadHeader,
    /// A record's lengths are inconsistent or exceed the snap length.
    BadRecord {
        /// Zero-based index of the offending record.
        index: usize,
    },
    /// A record's frame bytes fail [`crate::FrameView::parse`].
    BadFrame {
        /// Zero-based index of the offending record.
        index: usize,
        /// The codec's rejection.
        error: crate::FrameError,
    },
    /// Record timestamps went backwards (traces are slot-ordered).
    TimeRegression {
        /// Zero-based index of the offending record.
        index: usize,
    },
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Truncated => f.write_str("truncated pcap"),
            PcapError::BadHeader => f.write_str("bad pcap global header"),
            PcapError::BadRecord { index } => write!(f, "bad record header at #{index}"),
            PcapError::BadFrame { index, error } => {
                write!(f, "record #{index} is not a valid frame: {error}")
            }
            PcapError::TimeRegression { index } => {
                write!(f, "timestamp regression at record #{index}")
            }
        }
    }
}

impl std::error::Error for PcapError {}

/// Structurally validates a capture produced by this module: global
/// header, record framing, monotone timestamps, and every frame
/// re-parsed (FCS included) by the codec.
pub fn validate(bytes: &[u8]) -> Result<PcapSummary, PcapError> {
    if bytes.len() < GLOBAL_HEADER_LEN {
        return Err(PcapError::Truncated);
    }
    let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("in bounds"));
    if u32_at(0) != PCAP_MAGIC
        || u16::from_le_bytes([bytes[4], bytes[5]]) != 2
        || u16::from_le_bytes([bytes[6], bytes[7]]) != 4
        || u32_at(20) != LINKTYPE_IEEE802_15_4
    {
        return Err(PcapError::BadHeader);
    }
    let mut at = GLOBAL_HEADER_LEN;
    let mut packets = 0usize;
    let mut frame_bytes = 0usize;
    let mut last_ts = 0u64;
    while at < bytes.len() {
        if bytes.len() - at < RECORD_HEADER_LEN {
            return Err(PcapError::Truncated);
        }
        let ts = u64::from(u32_at(at)) * 1_000_000 + u64::from(u32_at(at + 4));
        let incl = u32_at(at + 8) as usize;
        let orig = u32_at(at + 12) as usize;
        if incl != orig || incl > 65_535 {
            return Err(PcapError::BadRecord { index: packets });
        }
        if bytes.len() - at - RECORD_HEADER_LEN < incl {
            return Err(PcapError::Truncated);
        }
        if ts < last_ts {
            return Err(PcapError::TimeRegression { index: packets });
        }
        last_ts = ts;
        let frame = &bytes[at + RECORD_HEADER_LEN..at + RECORD_HEADER_LEN + incl];
        crate::FrameView::parse(frame).map_err(|error| PcapError::BadFrame {
            index: packets,
            error,
        })?;
        packets += 1;
        frame_bytes += incl;
        at += RECORD_HEADER_LEN + incl;
    }
    Ok(PcapSummary {
        packets,
        frame_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EbFields, WireFrame};
    use gtt_net::{Dest, NodeId, PacketId, PhysicalChannel};
    use gtt_sim::SimTime;

    fn record(tap: &mut PcapTap, time_us: u64, bytes: &[u8]) {
        tap.on_transmission(&TapRecord {
            asn: time_us / 15_000,
            time: SimTime::from_micros(time_us),
            channel: PhysicalChannel::new(20),
            src: NodeId::new(1),
            dst: Dest::Broadcast,
            packet: PacketId::new(u64::MAX),
            acked: None,
            bytes,
        });
    }

    #[test]
    fn empty_capture_validates() {
        let (_tap, out) = PcapTap::new();
        let bytes = out.lock().unwrap().clone();
        assert_eq!(bytes.len(), GLOBAL_HEADER_LEN);
        assert_eq!(
            validate(&bytes).unwrap(),
            PcapSummary {
                packets: 0,
                frame_bytes: 0
            }
        );
    }

    #[test]
    fn records_validate_and_count() {
        let frame = WireFrame::Eb {
            src: 1,
            eb: EbFields {
                asn: 40,
                join_metric: 0,
                rx_channel: None,
                rx_free: 0,
            },
        }
        .to_bytes();
        let (mut tap, out) = PcapTap::new();
        record(&mut tap, 600_000, &frame);
        record(&mut tap, 1_500_000, &frame);
        let bytes = out.lock().unwrap().clone();
        let summary = validate(&bytes).unwrap();
        assert_eq!(summary.packets, 2);
        assert_eq!(summary.frame_bytes, 2 * frame.len());
    }

    #[test]
    fn corruption_is_detected() {
        let frame = WireFrame::Ack { seq: 9 }.to_bytes();
        let (mut tap, out) = PcapTap::new();
        record(&mut tap, 15_000, &frame);
        let good = out.lock().unwrap().clone();

        assert_eq!(validate(&good[..10]), Err(PcapError::Truncated));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(validate(&bad_magic), Err(PcapError::BadHeader));
        let mut bad_frame = good.clone();
        let n = bad_frame.len();
        bad_frame[n - 1] ^= 0x40; // breaks the frame's FCS
        assert!(matches!(
            validate(&bad_frame),
            Err(PcapError::BadFrame { index: 0, .. })
        ));
        let mut truncated_record = good;
        truncated_record.pop();
        assert_eq!(validate(&truncated_record), Err(PcapError::Truncated));
    }
}
