//! A [`FrameTap`] that histograms transmission attempts per packet.
//!
//! The MAC retransmits an unacknowledged unicast frame in later slots,
//! so one logical packet shows up on the tap once per attempt — same
//! transmitter, same origin-keyed packet id, different ASN. Counting
//! those (src, packet) pairs makes the paper's 4-retransmission cap
//! (Table II: at most `max_retries + 1 = 5` transmissions per frame)
//! directly observable from outside the MAC; `tests/paper_claims.rs`
//! asserts it on a lossy single-hop network, where each pair maps to
//! exactly one MAC frame and the bound is exact.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use gtt_net::{FrameTap, TapRecord};

/// Shared attempt counts: `(transmitter raw id, packet id) → attempts`.
pub type AttemptCounts = Arc<Mutex<BTreeMap<(u16, u64), u32>>>;

/// Counts per-(transmitter, packet) attempts of *tracked unicast*
/// frames — application data with an ACK outcome. Untracked control
/// frames (packet id `u64::MAX`) and broadcasts are ignored.
#[derive(Debug)]
pub struct AttemptLog {
    counts: AttemptCounts,
}

impl AttemptLog {
    /// Creates the tap and the shared map the caller reads afterwards.
    pub fn new() -> (AttemptLog, AttemptCounts) {
        let counts: AttemptCounts = Arc::default();
        (
            AttemptLog {
                counts: counts.clone(),
            },
            counts,
        )
    }
}

impl FrameTap for AttemptLog {
    fn on_transmission(&mut self, record: &TapRecord<'_>) {
        if record.packet.raw() == u64::MAX || record.acked.is_none() {
            return;
        }
        let key = (record.src.raw(), record.packet.raw());
        *self
            .counts
            .lock()
            .expect("attempt counts poisoned")
            .entry(key)
            .or_insert(0) += 1;
    }
}
