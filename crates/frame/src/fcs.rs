//! The 16-bit frame check sequence of IEEE 802.15.4 §7.2.10.
//!
//! The standard's FCS is the ITU-T CRC-16 with generator
//! `x^16 + x^12 + x^5 + 1`, computed LSB-first with initial value 0 and
//! no final complement — the parameter set catalogued as CRC-16/KERMIT —
//! and transmitted little-endian after the MAC payload.

/// Reflected ITU-T CRC-16 (polynomial `0x1021`, bit-reversed `0x8408`,
/// init `0x0000`) over `bytes` — the exact FCS of §7.2.10.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0;
    for &b in bytes {
        crc ^= u16::from(b);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x8408
            } else {
                crc >> 1
            };
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::crc16;

    #[test]
    fn kermit_check_value() {
        // The canonical CRC catalogue check input.
        assert_eq!(crc16(b"123456789"), 0x2189);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(crc16(b""), 0x0000);
    }

    #[test]
    fn single_bit_flips_change_the_fcs() {
        let base = crc16(&[0x61, 0x88, 0x07]);
        for byte in 0..3 {
            for bit in 0..8 {
                let mut data = [0x61, 0x88, 0x07];
                data[byte] ^= 1 << bit;
                assert_ne!(crc16(&data), base, "flip {byte}.{bit} undetected");
            }
        }
    }
}
