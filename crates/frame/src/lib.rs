//! # gtt-frame — wire-level IEEE 802.15.4 frames and trace export
//!
//! The engine's frames are abstract Rust structs; this crate gives each
//! of them its real IEEE 802.15.4e byte form and turns the medium seam
//! into a capture point:
//!
//! * **codec** — [`WireFrame`] (enhanced beacon / data / immediate ACK)
//!   with the frame control field ([`Fcf`]), short addressing under one
//!   PAN ([`GTT_PAN_ID`]), the TSCH header IEs of an EB ([`HeaderIe`]:
//!   synchronization ASN + join metric, timeslot template, and the
//!   GT-TSCH vendor IE carrying the paper's EB channel/capacity
//!   piggyback), tagged payload encodings for DIO/DAO/6P/app data
//!   ([`WirePayload`]) and the CRC-16 FCS ([`fcs::crc16`]).
//!   Representation is the buffer: [`WireFrame::encode`] writes into a
//!   reusable `Vec<u8>`, [`FrameView`] reads zero-copy from `&[u8]`,
//!   and decoding is strict enough that `encode(decode(b)) == b` for
//!   every accepted input while truncation and bad FCS never panic.
//! * **trace export** — sinks for the engine's
//!   [`FrameTap`](gtt_net::FrameTap) seam: [`PcapTap`] appends a
//!   Wireshark-openable classic pcap (linktype 195, sim-time
//!   timestamps, validated by [`pcap::validate`]), and [`AttemptLog`]
//!   histograms per-packet transmission attempts for the
//!   retransmission-cap assertions in `tests/paper_claims.rs`.
//!
//! Traces are pure functions of the experiment: records arrive in slot
//! order, timestamps come from the ASN, and the tap never feeds back
//! into the simulation (see `DETERMINISM.md`).
//!
//! # Example
//!
//! ```
//! use gtt_frame::{EbFields, FrameView, WireFrame};
//!
//! let eb = WireFrame::Eb {
//!     src: 3,
//!     eb: EbFields { asn: 1700, join_metric: 0, rx_channel: Some(20), rx_free: 6 },
//! };
//! let mut buf = Vec::new();
//! eb.encode(&mut buf); // header + IEs + FCS, standard byte order
//! let view = FrameView::parse(&buf).unwrap(); // zero-copy, FCS-checked
//! assert_eq!(view.src(), Some(3));
//! assert_eq!(view.to_frame().unwrap(), eb);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attempts;
pub mod fcf;
pub mod fcs;
mod frame;
pub mod ie;
mod payload;
pub mod pcap;

pub use attempts::{AttemptCounts, AttemptLog};
pub use fcf::{AddrMode, Fcf, FrameType};
pub use frame::{EbFields, FrameView, WireFrame, BROADCAST, GTT_PAN_ID, GTT_TIMESLOT_TEMPLATE};
pub use ie::{HeaderIe, HeaderIeIter};
pub use payload::WirePayload;
pub use pcap::{PcapError, PcapSummary, PcapTap};

use gtt_sixtop::SixpDecodeError;

/// Why a byte buffer is not a valid frame of this simulator.
///
/// Decoding never panics: every malformed input — truncated buffer,
/// corrupt FCS, reserved FCF bits, unknown IEs or payload kinds,
/// trailing bytes — maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before a required field.
    Truncated,
    /// The frame check sequence does not match the received bytes.
    BadFcs {
        /// FCS computed over the received header + payload.
        expected: u16,
        /// FCS carried in the last two bytes.
        found: u16,
    },
    /// The frame control field uses features the simulator never emits
    /// (security, extended addressing, reserved bits/versions, …).
    UnsupportedFcf(u16),
    /// A header IE is unknown, malformed, or out of canonical order.
    BadIe,
    /// The MAC payload has an unknown kind tag, a wrong length, or a
    /// non-canonical encoding.
    BadPayload,
    /// The 6P payload bytes were rejected by the 6top codec.
    BadSixp(SixpDecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => f.write_str("truncated frame"),
            FrameError::BadFcs { expected, found } => {
                write!(
                    f,
                    "FCS mismatch: computed {expected:#06x}, frame carries {found:#06x}"
                )
            }
            FrameError::UnsupportedFcf(bits) => write!(f, "unsupported FCF {bits:#06x}"),
            FrameError::BadIe => f.write_str("malformed header IE list"),
            FrameError::BadPayload => f.write_str("malformed MAC payload"),
            FrameError::BadSixp(e) => write!(f, "malformed 6P payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::BadSixp(e) => Some(e),
            _ => None,
        }
    }
}
