//! The 2-byte frame control field (IEEE 802.15.4 §7.2.2.1).
//!
//! Bit layout (transmitted little-endian):
//!
//! ```text
//! 0-2   frame type            (beacon / data / ack / MAC command)
//! 3     security enabled      (always 0 here — the simulator is open)
//! 4     frame pending         (always 0 — no indirect transmission)
//! 5     AR (ack request)
//! 6     PAN ID compression    (1 on addressed frames: one PAN field)
//! 7     reserved
//! 8     sequence number suppression   (frame version 0b10 only)
//! 9     IE present
//! 10-11 destination addressing mode   (0 none / 2 short)
//! 12-13 frame version         (0b10 = 802.15.4e-2012 for beacon/data,
//!                              0b00 for the immediate ACK)
//! 14-15 source addressing mode
//! ```

use crate::FrameError;

/// MAC frame type (FCF bits 0–2). Only the variants the simulator puts
/// on the air are modelled; MAC command frames decode but carry no
/// typed payload here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Enhanced beacon (TSCH EB).
    Beacon,
    /// Data frame (application data and the DIO/DAO/6P control plane).
    Data,
    /// Immediate acknowledgement.
    Ack,
}

impl FrameType {
    fn bits(self) -> u16 {
        match self {
            FrameType::Beacon => 0b000,
            FrameType::Data => 0b001,
            FrameType::Ack => 0b010,
        }
    }
}

/// Addressing mode of one address field (2 FCF bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrMode {
    /// No address present.
    None,
    /// 16-bit short address.
    Short,
}

impl AddrMode {
    fn bits(self) -> u16 {
        match self {
            AddrMode::None => 0b00,
            AddrMode::Short => 0b10,
        }
    }

    fn from_bits(bits: u16, raw: u16) -> Result<Self, FrameError> {
        match bits {
            0b00 => Ok(AddrMode::None),
            0b10 => Ok(AddrMode::Short),
            // 0b01 is reserved; 0b11 (extended) is never emitted here.
            _ => Err(FrameError::UnsupportedFcf(raw)),
        }
    }
}

/// Decoded frame control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fcf {
    /// Frame type (bits 0–2).
    pub frame_type: FrameType,
    /// AR bit: an acknowledgement is requested.
    pub ack_request: bool,
    /// PAN ID compression: only the destination PAN ID is carried.
    pub pan_id_compression: bool,
    /// The sequence number field is omitted (version 0b10 frames).
    pub seq_suppressed: bool,
    /// Header IEs follow the addressing fields.
    pub ie_present: bool,
    /// Destination addressing mode (bits 10–11).
    pub dst_mode: AddrMode,
    /// Frame version (bits 12–13).
    pub version: u8,
    /// Source addressing mode (bits 14–15).
    pub src_mode: AddrMode,
}

impl Fcf {
    /// Packs into the 2-byte wire value.
    pub fn bits(&self) -> u16 {
        self.frame_type.bits()
            | (u16::from(self.ack_request) << 5)
            | (u16::from(self.pan_id_compression) << 6)
            | (u16::from(self.seq_suppressed) << 8)
            | (u16::from(self.ie_present) << 9)
            | (self.dst_mode.bits() << 10)
            | (u16::from(self.version & 0b11) << 12)
            | (self.src_mode.bits() << 14)
    }

    /// Decodes a wire value, rejecting anything the simulator never
    /// emits (security, frame pending, reserved bits and addressing
    /// modes, unknown frame types) with
    /// [`FrameError::UnsupportedFcf`].
    pub fn from_bits(raw: u16) -> Result<Self, FrameError> {
        let frame_type = match raw & 0b111 {
            0b000 => FrameType::Beacon,
            0b001 => FrameType::Data,
            0b010 => FrameType::Ack,
            _ => return Err(FrameError::UnsupportedFcf(raw)),
        };
        // Security (3), frame pending (4) and the reserved bit (7) are
        // never set on simulator frames.
        if raw & 0b1001_1000 != 0 {
            return Err(FrameError::UnsupportedFcf(raw));
        }
        Ok(Fcf {
            frame_type,
            ack_request: raw & (1 << 5) != 0,
            pan_id_compression: raw & (1 << 6) != 0,
            seq_suppressed: raw & (1 << 8) != 0,
            ie_present: raw & (1 << 9) != 0,
            dst_mode: AddrMode::from_bits((raw >> 10) & 0b11, raw)?,
            version: ((raw >> 12) & 0b11) as u8,
            src_mode: AddrMode::from_bits((raw >> 14) & 0b11, raw)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_bits() {
        let fcf = Fcf {
            frame_type: FrameType::Data,
            ack_request: true,
            pan_id_compression: true,
            seq_suppressed: false,
            ie_present: false,
            dst_mode: AddrMode::Short,
            version: 0b10,
            src_mode: AddrMode::Short,
        };
        assert_eq!(Fcf::from_bits(fcf.bits()).unwrap(), fcf);
    }

    #[test]
    fn rejects_security_and_reserved_bits() {
        assert!(Fcf::from_bits(1 << 3).is_err()); // security
        assert!(Fcf::from_bits(1 << 4).is_err()); // frame pending
        assert!(Fcf::from_bits(1 << 7).is_err()); // reserved
        assert!(Fcf::from_bits(0b111).is_err()); // reserved frame type
        assert!(Fcf::from_bits(0b01 << 10).is_err()); // reserved dst mode
        assert!(Fcf::from_bits(0b11 << 14).is_err()); // extended src addr
    }
}
