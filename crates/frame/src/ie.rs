//! Header information elements (IEEE 802.15.4 §7.4.2).
//!
//! Each header IE starts with a 2-byte little-endian descriptor —
//! length in bits 0–6, element ID in bits 7–14, type bit 15 = 0 — and
//! the enhanced beacons here carry exactly three:
//!
//! * **TSCH Synchronization IE** (element `0x1a`): the 5-byte ASN of the
//!   slot the beacon goes out in, plus a 1-byte join metric,
//! * **TSCH Timeslot IE** (element `0x1c`), 1-byte form: a timeslot
//!   template ID. The simulator's 15 ms template is not the standard's
//!   default 10 ms template 0, so it advertises template `1`
//!   ("defined by the higher layer" — see `gtt_mac::airtime`),
//! * **Vendor Specific Header IE** (element `0x00`, OUI `67:74:74`,
//!   ASCII "gtt"): the GT-TSCH EB piggyback of the paper's §V-B — the
//!   advertised Rx channel and free Rx-cell count.

use crate::FrameError;

/// Element ID of the TSCH Synchronization IE.
pub const ELEMENT_TSCH_SYNC: u16 = 0x1a;
/// Element ID of the TSCH Timeslot IE.
pub const ELEMENT_TSCH_TIMESLOT: u16 = 0x1c;
/// Element ID of the Vendor Specific Header IE.
pub const ELEMENT_VENDOR: u16 = 0x00;
/// The vendor OUI under which the GT-TSCH EB piggyback travels.
pub const OUI_GTT: [u8; 3] = *b"gtt";

/// One decoded header IE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderIe {
    /// TSCH Synchronization IE: ASN (low 40 bits) + join metric.
    TschSync {
        /// Absolute slot number, as carried in the 5-byte field.
        asn: u64,
        /// Join priority advertised alongside the ASN.
        join_metric: u8,
    },
    /// TSCH Timeslot IE, short form: template ID only.
    TschTimeslot {
        /// Timeslot template identifier.
        template_id: u8,
    },
    /// The GT-TSCH vendor IE (EB channel/capacity piggyback).
    GttEbInfo {
        /// Advertised Rx channel, when the scheduler has chosen one.
        rx_channel: Option<u8>,
        /// Advertised free Rx-cell capacity.
        rx_free: u16,
    },
}

fn descriptor(element_id: u16, len: usize) -> [u8; 2] {
    debug_assert!(len <= 0x7f, "header IE content exceeds 127 bytes");
    let word = (len as u16 & 0x7f) | ((element_id & 0xff) << 7);
    word.to_le_bytes()
}

impl HeaderIe {
    /// Appends the IE (descriptor + content) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            HeaderIe::TschSync { asn, join_metric } => {
                buf.extend_from_slice(&descriptor(ELEMENT_TSCH_SYNC, 6));
                buf.extend_from_slice(&asn.to_le_bytes()[..5]);
                buf.push(join_metric);
            }
            HeaderIe::TschTimeslot { template_id } => {
                buf.extend_from_slice(&descriptor(ELEMENT_TSCH_TIMESLOT, 1));
                buf.push(template_id);
            }
            HeaderIe::GttEbInfo {
                rx_channel,
                rx_free,
            } => {
                buf.extend_from_slice(&descriptor(ELEMENT_VENDOR, 7));
                buf.extend_from_slice(&OUI_GTT);
                buf.push(u8::from(rx_channel.is_some()));
                buf.push(rx_channel.unwrap_or(0));
                buf.extend_from_slice(&rx_free.to_le_bytes());
            }
        }
    }

    fn decode(element_id: u16, content: &[u8]) -> Result<Self, FrameError> {
        match (element_id, content.len()) {
            (ELEMENT_TSCH_SYNC, 6) => {
                let mut asn_bytes = [0u8; 8];
                asn_bytes[..5].copy_from_slice(&content[..5]);
                Ok(HeaderIe::TschSync {
                    asn: u64::from_le_bytes(asn_bytes),
                    join_metric: content[5],
                })
            }
            (ELEMENT_TSCH_TIMESLOT, 1) => Ok(HeaderIe::TschTimeslot {
                template_id: content[0],
            }),
            (ELEMENT_VENDOR, 7) if content[..3] == OUI_GTT => {
                let rx_channel = match content[3] {
                    0 if content[4] == 0 => None,
                    1 => Some(content[4]),
                    _ => return Err(FrameError::BadIe),
                };
                Ok(HeaderIe::GttEbInfo {
                    rx_channel,
                    rx_free: u16::from_le_bytes([content[5], content[6]]),
                })
            }
            _ => Err(FrameError::BadIe),
        }
    }
}

/// Zero-copy iterator over the header IEs of a beacon, yielding
/// decoded elements (or the error that stopped the walk).
#[derive(Debug, Clone)]
pub struct HeaderIeIter<'a> {
    rest: &'a [u8],
}

impl<'a> HeaderIeIter<'a> {
    /// Iterates the IE list occupying exactly `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        HeaderIeIter { rest: bytes }
    }
}

impl Iterator for HeaderIeIter<'_> {
    type Item = Result<HeaderIe, FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < 2 {
            self.rest = &[];
            return Some(Err(FrameError::Truncated));
        }
        let word = u16::from_le_bytes([self.rest[0], self.rest[1]]);
        if word & 0x8000 != 0 {
            // Type bit 1 would start the payload-IE list, which these
            // frames never carry.
            self.rest = &[];
            return Some(Err(FrameError::BadIe));
        }
        let len = usize::from(word & 0x7f);
        let element_id = (word >> 7) & 0xff;
        if self.rest.len() < 2 + len {
            self.rest = &[];
            return Some(Err(FrameError::Truncated));
        }
        let content = &self.rest[2..2 + len];
        self.rest = &self.rest[2 + len..];
        Some(HeaderIe::decode(element_id, content))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_ie_round_trips() {
        let ies = [
            HeaderIe::TschSync {
                asn: 0x12_3456_789a,
                join_metric: 3,
            },
            HeaderIe::TschTimeslot { template_id: 1 },
            HeaderIe::GttEbInfo {
                rx_channel: Some(17),
                rx_free: 42,
            },
            HeaderIe::GttEbInfo {
                rx_channel: None,
                rx_free: 0,
            },
        ];
        let mut buf = Vec::new();
        for ie in &ies {
            ie.encode(&mut buf);
        }
        let decoded: Vec<HeaderIe> = HeaderIeIter::new(&buf).map(|r| r.unwrap()).collect();
        assert_eq!(decoded, ies);
    }

    #[test]
    fn truncated_ie_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        HeaderIe::TschSync {
            asn: 7,
            join_metric: 0,
        }
        .encode(&mut buf);
        for cut in 1..buf.len() {
            let items: Vec<_> = HeaderIeIter::new(&buf[..cut]).collect();
            assert!(items.iter().any(|r| r.is_err()), "cut at {cut} accepted");
        }
    }
}
