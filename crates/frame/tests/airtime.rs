//! Cross-crate validation of `gtt_mac::airtime` against what the codec
//! actually encodes: the MAC's standard-derived byte counts must agree
//! with real encoded lengths, not just with the standard's tables.

use gtt_frame::{EbFields, WireFrame, WirePayload, BROADCAST};
use gtt_mac::airtime::{airtime_us, ACK_MPDU_BYTES, MAX_MPDU_BYTES, TS_MAX_ACK_US, TS_MAX_TX_US};
use gtt_sixtop::{CellSpec, SixpBody, SixpCellKind, SixpMessage};

fn encoded_len(frame: &WireFrame) -> u32 {
    u32::try_from(frame.to_bytes().len()).unwrap()
}

#[test]
fn ack_constant_matches_the_encoder() {
    assert_eq!(encoded_len(&WireFrame::Ack { seq: 0 }), ACK_MPDU_BYTES);
    assert_eq!(airtime_us(ACK_MPDU_BYTES), 352);
    assert!(airtime_us(ACK_MPDU_BYTES) <= TS_MAX_ACK_US);
}

#[test]
fn every_frame_kind_fits_the_mpdu_and_airtime_budget() {
    // The largest 6P message the scheduler emits: an ADD request
    // proposing a full candidate list. GT-TSCH proposes at most a
    // handful of cells; 16 is a generous ceiling.
    let big_sixp = SixpMessage::new(
        255,
        SixpBody::AddRequest {
            kind: SixpCellKind::Data,
            num_cells: u16::MAX,
            cells: (0..16).map(|i| CellSpec::new(i, 15)).collect(),
        },
    );
    let frames = [
        WireFrame::Eb {
            src: u16::MAX - 1,
            eb: EbFields {
                asn: (1 << 40) - 1,
                join_metric: u8::MAX,
                rx_channel: Some(26),
                rx_free: u16::MAX,
            },
        },
        WireFrame::Data {
            src: 1,
            dst: 2,
            seq: Some(u8::MAX),
            payload: WirePayload::App {
                id: u64::MAX - 1,
                generated_us: u64::MAX,
                hops: u8::MAX,
            },
        },
        WireFrame::Data {
            src: 1,
            dst: BROADCAST,
            seq: None,
            payload: WirePayload::Dio {
                dodag_root: u16::MAX - 1,
                version: u8::MAX,
                rank: u16::MAX,
                rx_free: u16::MAX,
            },
        },
        WireFrame::Data {
            src: 1,
            dst: 2,
            seq: None,
            payload: WirePayload::Dao {
                child: 1,
                no_path: true,
            },
        },
        WireFrame::Data {
            src: 1,
            dst: 2,
            seq: None,
            payload: WirePayload::SixP(big_sixp),
        },
    ];
    for frame in &frames {
        let len = encoded_len(frame);
        assert!(
            len <= MAX_MPDU_BYTES,
            "{frame:?} encodes to {len} bytes > aMaxPhyPacketSize"
        );
        assert!(
            airtime_us(len) <= TS_MAX_TX_US,
            "{frame:?} airtime {} µs > macTsMaxTx",
            airtime_us(len)
        );
    }
}

#[test]
fn header_sizes_are_the_derived_constants() {
    // Data frame header: FCF 2 + seq 1 + dst PAN 2 + dst 2 + src 2;
    // 18-byte app payload; FCS 2.
    let data = WireFrame::Data {
        src: 1,
        dst: 2,
        seq: Some(0),
        payload: WirePayload::App {
            id: 0,
            generated_us: 0,
            hops: 0,
        },
    };
    assert_eq!(encoded_len(&data), 9 + 18 + 2);
    // EB: FCF 2 + dst PAN 2 + dst 2 + src 2, then the three IEs
    // (2+6, 2+1, 2+7) and the FCS.
    let eb = WireFrame::Eb {
        src: 1,
        eb: EbFields {
            asn: 0,
            join_metric: 0,
            rx_channel: None,
            rx_free: 0,
        },
    };
    assert_eq!(encoded_len(&eb), 8 + 8 + 3 + 9 + 2);
}
