//! Property tests pinning the codec's central contract: every frame
//! kind round-trips `encode → decode → re-encode` byte-identically,
//! and no malformed input — truncation, bit flips, byte soup — ever
//! panics the decoder.

use proptest::prelude::*;

use gtt_frame::{EbFields, FrameView, WireFrame, WirePayload, BROADCAST};
use gtt_sixtop::{CellSpec, ReturnCode, SixpBody, SixpCellKind, SixpMessage};

fn arb_addr() -> impl Strategy<Value = u16> {
    0u16..2048
}

fn arb_eb() -> impl Strategy<Value = WireFrame> {
    (
        arb_addr(),
        0u64..(1 << 40),
        any::<u8>(),
        prop_oneof![Just(None), (11u8..27).prop_map(Some)],
        any::<u16>(),
    )
        .prop_map(
            |(src, asn, join_metric, rx_channel, rx_free)| WireFrame::Eb {
                src,
                eb: EbFields {
                    asn,
                    join_metric,
                    rx_channel,
                    rx_free,
                },
            },
        )
}

fn arb_sixp() -> impl Strategy<Value = SixpMessage> {
    let cells = prop::collection::vec((0u16..128, 0u8..16), 0..6)
        .prop_map(|v| v.into_iter().map(|(s, c)| CellSpec::new(s, c)).collect());
    let kind = prop_oneof![Just(SixpCellKind::Data), Just(SixpCellKind::SixP)];
    let code = prop_oneof![
        Just(ReturnCode::Success),
        Just(ReturnCode::Err),
        Just(ReturnCode::ErrNoCells),
    ];
    let body = prop_oneof![
        (kind, 0u16..32, cells).prop_map(|(kind, num_cells, cells)| SixpBody::AddRequest {
            kind,
            num_cells,
            cells,
        }),
        Just(SixpBody::ClearRequest),
        Just(SixpBody::AskChannelRequest),
        (code, 0u8..16).prop_map(|(code, channel_offset)| SixpBody::AskChannelResponse {
            code,
            channel_offset,
        }),
    ];
    (any::<u8>(), body).prop_map(|(seqnum, body)| SixpMessage::new(seqnum, body))
}

fn arb_payload() -> impl Strategy<Value = WirePayload> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u8>()).prop_map(|(id, generated_us, hops)| {
            WirePayload::App {
                id,
                generated_us,
                hops,
            }
        }),
        (arb_addr(), any::<u8>(), any::<u16>(), any::<u16>()).prop_map(
            |(dodag_root, version, rank, rx_free)| WirePayload::Dio {
                dodag_root,
                version,
                rank,
                rx_free,
            }
        ),
        (arb_addr(), any::<bool>())
            .prop_map(|(child, no_path)| WirePayload::Dao { child, no_path }),
        arb_sixp().prop_map(WirePayload::SixP),
    ]
}

fn arb_data() -> impl Strategy<Value = WireFrame> {
    (
        arb_addr(),
        prop_oneof![arb_addr(), Just(BROADCAST)],
        prop_oneof![Just(None), any::<u8>().prop_map(Some)],
        arb_payload(),
    )
        .prop_map(|(src, dst, seq, payload)| WireFrame::Data {
            src,
            dst,
            seq,
            payload,
        })
}

fn arb_frame() -> impl Strategy<Value = WireFrame> {
    prop_oneof![
        arb_eb(),
        arb_data(),
        any::<u8>().prop_map(|seq| WireFrame::Ack { seq }),
    ]
}

proptest! {
    /// encode → decode → re-encode is byte-identical for every frame
    /// kind (the canonical-form guarantee every trace diff relies on).
    #[test]
    fn every_frame_kind_round_trips(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        let decoded = WireFrame::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// Truncating a valid frame anywhere yields an error, not a panic
    /// and not a bogus success.
    #[test]
    fn truncations_are_rejected(frame in arb_frame(), cut in any::<u16>()) {
        let bytes = frame.to_bytes();
        let cut = usize::from(cut) % bytes.len();
        prop_assert!(WireFrame::decode(&bytes[..cut]).is_err());
    }

    /// A single flipped bit is caught (FCS or structural checks) —
    /// decoding either errors or, in the astronomically unlikely CRC
    /// collision, still never panics.
    #[test]
    fn bit_flips_never_panic(frame in arb_frame(), at in any::<u16>(), bit in 0u8..8) {
        let mut bytes = frame.to_bytes();
        let at = usize::from(at) % bytes.len();
        bytes[at] ^= 1 << bit;
        let _ = WireFrame::decode(&bytes);
        let _ = FrameView::parse(&bytes);
    }

    /// Arbitrary byte soup never panics the zero-copy parser.
    #[test]
    fn parser_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..160)) {
        let _ = FrameView::parse(&bytes);
        let _ = WireFrame::decode(&bytes);
    }
}
