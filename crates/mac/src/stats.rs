//! Per-neighbor link statistics and the ETX estimator.
//!
//! The GT-TSCH game model (paper §VII-B, eq. 4) consumes
//! `ETX_{i,p_i} = 1 / PRR_{i,p_i} ≥ 1`, estimated at the MAC from
//! transmission attempts and acknowledgements. Like Contiki-NG's
//! `link-stats` module we keep an exponentially weighted moving average so
//! the metric tracks link dynamics without jittering on every loss.

/// EWMA estimator of the Expected Transmission Count of a directed link.
///
/// Each *completed transmission episode* contributes one sample: the
/// number of attempts used when the packet was finally acknowledged, or a
/// fixed penalty when it exhausted its retries.
///
/// # Example
///
/// ```
/// use gtt_mac::EtxEstimator;
///
/// let mut etx = EtxEstimator::new(0.2);
/// assert_eq!(etx.value(), 1.0); // optimistic prior
/// etx.record_success(3);        // delivered on the 3rd attempt
/// assert!(etx.value() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EtxEstimator {
    alpha: f64,
    value: f64,
    samples: u64,
}

impl EtxEstimator {
    /// Penalty sample recorded when a packet exhausts all retries,
    /// matching Contiki-NG's `ETX_NOACK_PENALTY`-style treatment
    /// (configured there as 10-ish transmissions).
    pub const FAILURE_PENALTY: f64 = 10.0;

    /// Creates an estimator with smoothing factor `alpha`
    /// (weight of the *new* sample; Contiki uses ~0.1–0.25).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        EtxEstimator {
            alpha,
            value: 1.0,
            samples: 0,
        }
    }

    /// Current ETX estimate (always ≥ 1).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of completed transmission episodes observed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Records a delivery that took `attempts` transmissions (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero.
    pub fn record_success(&mut self, attempts: u32) {
        assert!(attempts >= 1, "a delivered packet used at least 1 attempt");
        self.push_sample(attempts as f64);
    }

    /// Records a packet dropped after exhausting its retries.
    pub fn record_failure(&mut self) {
        self.push_sample(Self::FAILURE_PENALTY);
    }

    fn push_sample(&mut self, sample: f64) {
        if self.samples == 0 {
            // First sample replaces the prior outright so a genuinely bad
            // link is not masked by the optimistic initial value.
            self.value = sample;
        } else {
            self.value = (1.0 - self.alpha) * self.value + self.alpha * sample;
        }
        self.value = self.value.max(1.0);
        self.samples += 1;
    }
}

impl Default for EtxEstimator {
    fn default() -> Self {
        EtxEstimator::new(0.15)
    }
}

/// Counters and ETX for one directed neighbor link.
#[derive(Debug, Clone, Default)]
pub struct LinkStats {
    /// Unicast transmission attempts towards this neighbor.
    pub tx_attempts: u64,
    /// Acknowledged transmissions.
    pub acked: u64,
    /// Packets dropped after exhausting retransmissions.
    pub tx_failures: u64,
    /// Frames received from this neighbor.
    pub rx_frames: u64,
    /// ETX estimate for the link.
    pub etx: EtxEstimator,
}

impl LinkStats {
    /// Creates fresh statistics.
    pub fn new() -> Self {
        LinkStats::default()
    }

    /// MAC-level delivery ratio (acked / attempts), or 1.0 before any
    /// attempt — the optimistic prior mirrors [`EtxEstimator`].
    pub fn delivery_ratio(&self) -> f64 {
        if self.tx_attempts == 0 {
            1.0
        } else {
            self.acked as f64 / self.tx_attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_is_one() {
        let etx = EtxEstimator::default();
        assert_eq!(etx.value(), 1.0);
        assert_eq!(etx.samples(), 0);
    }

    #[test]
    fn first_sample_replaces_prior() {
        let mut etx = EtxEstimator::new(0.1);
        etx.record_success(4);
        assert_eq!(etx.value(), 4.0);
    }

    #[test]
    fn ewma_converges_towards_samples() {
        let mut etx = EtxEstimator::new(0.2);
        for _ in 0..200 {
            etx.record_success(2);
        }
        assert!((etx.value() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn failures_push_towards_penalty() {
        let mut etx = EtxEstimator::new(0.3);
        etx.record_success(1);
        let before = etx.value();
        etx.record_failure();
        assert!(etx.value() > before);
        for _ in 0..100 {
            etx.record_failure();
        }
        assert!((etx.value() - EtxEstimator::FAILURE_PENALTY).abs() < 1e-3);
    }

    #[test]
    fn value_never_below_one() {
        let mut etx = EtxEstimator::new(1.0);
        etx.record_success(1);
        assert_eq!(etx.value(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least 1 attempt")]
    fn zero_attempts_rejected() {
        let mut etx = EtxEstimator::default();
        etx.record_success(0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_rejected() {
        let _ = EtxEstimator::new(0.0);
    }

    #[test]
    fn link_stats_delivery_ratio() {
        let mut ls = LinkStats::new();
        assert_eq!(ls.delivery_ratio(), 1.0);
        ls.tx_attempts = 10;
        ls.acked = 7;
        assert!((ls.delivery_ratio() - 0.7).abs() < 1e-12);
    }
}
