//! TSCH cells (scheduled links).

use std::fmt;

use gtt_net::{Dest, NodeId};

use crate::asn::SlotOffset;
use crate::hopping::ChannelOffset;

/// TSCH link options for a cell (a subset of the standard's bitmap).
///
/// `shared` implies contention: several nodes may transmit in the cell and
/// losses trigger the exponential backoff of
/// [`SharedCellBackoff`](crate::SharedCellBackoff).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CellOptions {
    /// The node may transmit in this cell.
    pub tx: bool,
    /// The node must listen in this cell (when not transmitting).
    pub rx: bool,
    /// Contention-based access (CSMA/CA backoff on failure).
    pub shared: bool,
}

impl CellOptions {
    /// Transmit-only cell.
    pub const TX: CellOptions = CellOptions {
        tx: true,
        rx: false,
        shared: false,
    };

    /// Receive-only cell.
    pub const RX: CellOptions = CellOptions {
        tx: false,
        rx: true,
        shared: false,
    };

    /// Shared transmit/receive cell (contention access).
    pub const TX_RX_SHARED: CellOptions = CellOptions {
        tx: true,
        rx: true,
        shared: true,
    };
}

impl fmt::Display for CellOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.tx {
            parts.push("Tx");
        }
        if self.rx {
            parts.push("Rx");
        }
        if self.shared {
            parts.push("Sh");
        }
        if parts.is_empty() {
            parts.push("none");
        }
        f.write_str(&parts.join("|"))
    }
}

/// Scheduler-facing classification of a cell.
///
/// These are the paper's timeslot types (§IV), minus *Sleep* which is
/// simply the absence of any cell in a slot. The class selects which queue
/// the MAC serves in the cell and gives schedulers a handle for priority
/// rules and accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellClass {
    /// Cells dedicated to TSCH Enhanced Beacons (Orchestra's sender-based
    /// EB slotframe). GT-TSCH has no dedicated EB cells: its EBs ride the
    /// ordinary broadcast timeslots.
    Eb,
    /// Broadcast timeslots for RPL/TSCH control traffic (highest priority).
    Broadcast,
    /// Unicast-6P timeslots reserved for 6P schedule-update transactions.
    SixP,
    /// Unicast-Data timeslots: child → parent data forwarding.
    Data,
    /// Shared timeslots absorbing traffic bursts (CSMA/CA contention).
    Shared,
}

impl fmt::Display for CellClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellClass::Eb => "eb",
            CellClass::Broadcast => "broadcast",
            CellClass::SixP => "6p",
            CellClass::Data => "data",
            CellClass::Shared => "shared",
        };
        f.write_str(s)
    }
}

/// One scheduled cell in the CDU matrix.
///
/// # Example
///
/// ```
/// use gtt_mac::{Cell, CellClass, CellOptions, ChannelOffset, SlotOffset};
/// use gtt_net::{Dest, NodeId};
///
/// // Child n2's Tx cell towards its parent n1 at (slot 5, offset 2).
/// let cell = Cell::new(
///     SlotOffset::new(5),
///     ChannelOffset::new(2),
///     CellOptions::TX,
///     Dest::Unicast(NodeId::new(1)),
///     CellClass::Data,
/// );
/// assert!(cell.options.tx);
/// assert_eq!(cell.peer.unicast(), Some(NodeId::new(1)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Time coordinate within the owning slotframe.
    pub slot: SlotOffset,
    /// Frequency coordinate (logical; hopped each slotframe).
    pub channel_offset: ChannelOffset,
    /// Link options.
    pub options: CellOptions,
    /// The peer this cell is scheduled with. For Tx cells this is the
    /// destination; for Rx cells the expected sender ([`Dest::Broadcast`]
    /// means "any", used by receiver-based Orchestra cells and broadcast
    /// slots).
    pub peer: Dest,
    /// Scheduler-facing class.
    pub class: CellClass,
}

impl Cell {
    /// Creates a cell.
    pub const fn new(
        slot: SlotOffset,
        channel_offset: ChannelOffset,
        options: CellOptions,
        peer: Dest,
        class: CellClass,
    ) -> Self {
        Cell {
            slot,
            channel_offset,
            options,
            peer,
            class,
        }
    }

    /// Convenience: a broadcast Tx|Rx|Shared cell for control traffic.
    pub const fn broadcast(slot: SlotOffset, channel_offset: ChannelOffset) -> Self {
        Cell::new(
            slot,
            channel_offset,
            CellOptions::TX_RX_SHARED,
            Dest::Broadcast,
            CellClass::Broadcast,
        )
    }

    /// Convenience: a dedicated data Tx cell towards `parent`.
    pub const fn data_tx(slot: SlotOffset, channel_offset: ChannelOffset, parent: NodeId) -> Self {
        Cell::new(
            slot,
            channel_offset,
            CellOptions::TX,
            Dest::Unicast(parent),
            CellClass::Data,
        )
    }

    /// Convenience: a dedicated data Rx cell from `child`.
    pub const fn data_rx(slot: SlotOffset, channel_offset: ChannelOffset, child: NodeId) -> Self {
        Cell::new(
            slot,
            channel_offset,
            CellOptions::RX,
            Dest::Unicast(child),
            CellClass::Data,
        )
    }

    /// True if this cell can carry a transmission to `dest`.
    ///
    /// A Tx cell towards a specific peer carries only frames for that
    /// peer; broadcast-peer Tx cells (shared/broadcast slots) carry both
    /// broadcast frames and — in shared slots — unicast frames for any
    /// neighbor.
    pub fn matches_tx(&self, dest: Dest) -> bool {
        if !self.options.tx {
            return false;
        }
        match (self.peer, dest) {
            (Dest::Broadcast, _) => true,
            (Dest::Unicast(p), Dest::Unicast(d)) => p == d,
            (Dest::Unicast(_), Dest::Broadcast) => false,
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({},{}) {} {} {}",
            self.slot, self.channel_offset, self.options, self.class, self.peer
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(s: u16) -> SlotOffset {
        SlotOffset::new(s)
    }

    #[test]
    fn options_display() {
        assert_eq!(CellOptions::TX.to_string(), "Tx");
        assert_eq!(CellOptions::TX_RX_SHARED.to_string(), "Tx|Rx|Sh");
        assert_eq!(CellOptions::default().to_string(), "none");
    }

    #[test]
    fn matches_tx_unicast_cell() {
        let c = Cell::data_tx(slot(1), ChannelOffset::new(0), NodeId::new(5));
        assert!(c.matches_tx(Dest::Unicast(NodeId::new(5))));
        assert!(!c.matches_tx(Dest::Unicast(NodeId::new(6))));
        assert!(!c.matches_tx(Dest::Broadcast));
    }

    #[test]
    fn matches_tx_broadcast_cell_carries_anything() {
        let c = Cell::broadcast(slot(0), ChannelOffset::new(0));
        assert!(c.matches_tx(Dest::Broadcast));
        assert!(c.matches_tx(Dest::Unicast(NodeId::new(2))));
    }

    #[test]
    fn rx_cell_never_matches_tx() {
        let c = Cell::data_rx(slot(2), ChannelOffset::new(1), NodeId::new(3));
        assert!(!c.matches_tx(Dest::Unicast(NodeId::new(3))));
    }

    #[test]
    fn class_priority_order() {
        // Paper §IV: broadcast > 6P > data > shared (sleep = no cell).
        assert!(CellClass::Eb < CellClass::Broadcast);
        assert!(CellClass::Broadcast < CellClass::SixP);
        assert!(CellClass::SixP < CellClass::Data);
        assert!(CellClass::Data < CellClass::Shared);
    }
}
