//! TSCH channel hopping.

use std::fmt;

use gtt_net::PhysicalChannel;

use crate::asn::Asn;

/// A channel offset: the frequency coordinate of a cell in the CDU matrix.
///
/// Unlike a [`PhysicalChannel`], a channel offset is *logical*: the radio
/// channel actually used in a slot is
/// `sequence[(ASN + offset) mod sequence_len]`, so a fixed offset hops
/// across the whole sequence over time, de-correlating persistent
/// narrow-band interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ChannelOffset(u8);

impl ChannelOffset {
    /// Creates a channel offset.
    pub const fn new(raw: u8) -> Self {
        ChannelOffset(raw)
    }

    /// Raw offset value.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for ChannelOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "co{}", self.0)
    }
}

impl From<u8> for ChannelOffset {
    fn from(raw: u8) -> Self {
        ChannelOffset(raw)
    }
}

/// A TSCH hopping sequence: the ordered list of physical channels that
/// logical channel offsets cycle through.
///
/// # Example
///
/// ```
/// use gtt_mac::{Asn, ChannelOffset, HoppingSequence};
///
/// let hop = HoppingSequence::paper_default();
/// assert_eq!(hop.len(), 8);
/// // Offsets are congruent modulo the sequence length:
/// let c0 = hop.channel(Asn::new(3), ChannelOffset::new(2));
/// let c1 = hop.channel(Asn::new(4), ChannelOffset::new(1));
/// assert_eq!(c0, c1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoppingSequence {
    channels: Vec<PhysicalChannel>,
}

impl HoppingSequence {
    /// The sequence from the paper's Table II:
    /// `17, 23, 15, 25, 19, 11, 13, 21`.
    pub fn paper_default() -> Self {
        HoppingSequence::new([17, 23, 15, 25, 19, 11, 13, 21].map(PhysicalChannel::new))
    }

    /// A single-channel "sequence" — disables hopping; useful in tests
    /// where collision structure should not move between slotframes.
    pub fn fixed(channel: PhysicalChannel) -> Self {
        HoppingSequence::new([channel])
    }

    /// Creates a hopping sequence from physical channels.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn new<I: IntoIterator<Item = PhysicalChannel>>(channels: I) -> Self {
        let channels: Vec<_> = channels.into_iter().collect();
        assert!(!channels.is_empty(), "hopping sequence cannot be empty");
        HoppingSequence { channels }
    }

    /// Number of channels in the sequence (= number of usable channel
    /// offsets).
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Never true: sequences are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The channels in sequence order.
    pub fn channels(&self) -> &[PhysicalChannel] {
        &self.channels
    }

    /// The physical channel used by `offset` at `asn`
    /// (`sequence[(ASN + offset) mod len]`).
    pub fn channel(&self, asn: Asn, offset: ChannelOffset) -> PhysicalChannel {
        let idx = (asn.raw() + offset.raw() as u64) % self.channels.len() as u64;
        self.channels[idx as usize]
    }

    /// Number of distinct channel offsets available to a scheduler.
    pub fn offsets(&self) -> impl Iterator<Item = ChannelOffset> {
        (0..self.channels.len() as u8).map(ChannelOffset::new)
    }
}

impl Default for HoppingSequence {
    fn default() -> Self {
        HoppingSequence::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sequence_contents() {
        let hop = HoppingSequence::paper_default();
        let nums: Vec<u8> = hop.channels().iter().map(|c| c.number()).collect();
        assert_eq!(nums, vec![17, 23, 15, 25, 19, 11, 13, 21]);
    }

    #[test]
    fn hopping_covers_whole_sequence_for_fixed_offset() {
        let hop = HoppingSequence::paper_default();
        let offset = ChannelOffset::new(0);
        let mut seen: Vec<u8> = (0..8)
            .map(|asn| hop.channel(Asn::new(asn), offset).number())
            .collect();
        seen.sort_unstable();
        let mut expected = vec![11, 13, 15, 17, 19, 21, 23, 25];
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn equal_offsets_same_slot_share_a_channel() {
        // The §III collision pre-condition: two cells with equal channel
        // offsets in the same slot always occupy the same physical channel.
        let hop = HoppingSequence::paper_default();
        for asn in 0..32 {
            let a = hop.channel(Asn::new(asn), ChannelOffset::new(3));
            let b = hop.channel(Asn::new(asn), ChannelOffset::new(3));
            assert_eq!(a, b);
        }
    }

    #[test]
    fn distinct_offsets_same_slot_differ() {
        let hop = HoppingSequence::paper_default();
        for asn in 0..32 {
            let a = hop.channel(Asn::new(asn), ChannelOffset::new(0));
            let b = hop.channel(Asn::new(asn), ChannelOffset::new(1));
            assert_ne!(a, b, "paper sequence has no repeated channels");
        }
    }

    #[test]
    fn fixed_sequence_never_hops() {
        let hop = HoppingSequence::fixed(PhysicalChannel::new(26));
        for asn in 0..100 {
            assert_eq!(
                hop.channel(Asn::new(asn), ChannelOffset::new(0)).number(),
                26
            );
        }
    }

    #[test]
    fn offsets_iterator_matches_len() {
        let hop = HoppingSequence::paper_default();
        assert_eq!(hop.offsets().count(), hop.len());
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_sequence_rejected() {
        let _ = HoppingSequence::new(std::iter::empty());
    }
}
