//! Traffic classes for control-queue frames.

use std::fmt;

/// What kind of control frame an entry in the control queue is.
///
/// Cell matching pairs traffic classes with
/// [`CellClass`](crate::CellClass)es ([`CellClass::Eb`](crate::CellClass)
/// cells only serve [`TrafficClass::Eb`] frames, etc.), which is how
/// Orchestra keeps EBs in its EB slotframe and how GT-TSCH keeps 6P
/// transactions inside Unicast-6P timeslots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// TSCH Enhanced Beacon (broadcast).
    Eb,
    /// Broadcast routing control (DIO).
    Broadcast,
    /// Unicast control: DAO and 6P messages.
    ControlUnicast,
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Eb => "eb",
            TrafficClass::Broadcast => "bcast-ctrl",
            TrafficClass::ControlUnicast => "ucast-ctrl",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(TrafficClass::Eb.to_string(), "eb");
        assert_eq!(TrafficClass::Broadcast.to_string(), "bcast-ctrl");
        assert_eq!(TrafficClass::ControlUnicast.to_string(), "ucast-ctrl");
    }
}
