//! Slotframes and per-node schedules, plus the cyclic-union Rx index
//! that lets the event-driven engine treat multi-slotframe schedules
//! (Orchestra) as passive listeners: per-frame listen chains merged by
//! exact cyclic arithmetic (CRT over the frame lengths), honoring the
//! slotframe priority rule (EB < common < unicast).

use std::fmt;

use crate::asn::{Asn, SlotOffset};
use crate::cell::Cell;
use crate::hopping::ChannelOffset;

/// Identifier of a slotframe within a node's [`Schedule`].
///
/// Lower handles take priority when several slotframes schedule a cell in
/// the same slot — the rule Contiki-NG uses and that Orchestra's layered
/// slotframes (EB < common < unicast) rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotframeHandle(u8);

impl SlotframeHandle {
    /// Creates a handle.
    pub const fn new(raw: u8) -> Self {
        SlotframeHandle(raw)
    }

    /// Raw handle value.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for SlotframeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sf{}", self.0)
    }
}

/// A slotframe: a cyclic window of `length` timeslots holding cells.
///
/// # Example
///
/// ```
/// use gtt_mac::{Cell, ChannelOffset, Slotframe, SlotOffset};
/// use gtt_net::NodeId;
///
/// let mut sf = Slotframe::new(32);
/// sf.add(Cell::data_tx(SlotOffset::new(4), ChannelOffset::new(1), NodeId::new(0)));
/// assert_eq!(sf.cells_at(SlotOffset::new(4)).count(), 1);
/// assert_eq!(sf.cells_at(SlotOffset::new(5)).count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slotframe {
    length: u16,
    cells: Vec<Cell>,
}

impl Slotframe {
    /// Creates an empty slotframe of `length` slots.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(length: u16) -> Self {
        assert!(length > 0, "slotframe length must be positive");
        Slotframe {
            length,
            cells: Vec::new(),
        }
    }

    /// Slotframe length in slots.
    pub fn length(&self) -> u16 {
        self.length
    }

    /// All cells, in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Adds a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell's slot offset is outside the slotframe.
    pub fn add(&mut self, cell: Cell) {
        assert!(
            cell.slot.raw() < self.length,
            "cell slot {} outside slotframe of length {}",
            cell.slot,
            self.length
        );
        self.cells.push(cell);
    }

    /// Removes every cell matching `pred`; returns how many were removed.
    pub fn remove_where(&mut self, pred: impl Fn(&Cell) -> bool) -> usize {
        let before = self.cells.len();
        self.cells.retain(|c| !pred(c));
        before - self.cells.len()
    }

    /// Cells scheduled at `slot`, in insertion order.
    pub fn cells_at(&self, slot: SlotOffset) -> impl Iterator<Item = &Cell> {
        self.cells.iter().filter(move |c| c.slot == slot)
    }

    /// The slot offset this slotframe assigns to `asn`.
    pub fn slot_of(&self, asn: Asn) -> SlotOffset {
        asn.slot_offset(self.length)
    }

    /// The earliest slot at or after `from` holding a cell that satisfies
    /// `pred`, or `None` when no cell does.
    ///
    /// The slotframe is cyclic, so whenever at least one cell matches the
    /// answer is at most one slotframe length away.
    pub fn next_slot_matching(&self, from: Asn, pred: impl Fn(&Cell) -> bool) -> Option<Asn> {
        let len = self.length as u64;
        let from_offset = self.slot_of(from).raw() as u64;
        self.cells
            .iter()
            .filter(|c| pred(c))
            .map(|c| from + (c.slot.raw() as u64 + len - from_offset) % len)
            .min()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the slotframe holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A node's full TSCH schedule: one or more prioritized slotframes.
///
/// GT-TSCH uses a single slotframe; Orchestra layers three. The schedule
/// answers the per-slot question "which cells are candidates right now?"
/// with slotframe priority preserved (lower handle first, then insertion
/// order within a slotframe).
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    frames: Vec<(SlotframeHandle, Slotframe)>,
    /// Bumped on every mutation path (including handing out `frame_mut`,
    /// conservatively). Cheap staleness check for caches derived from the
    /// schedule — see [`Schedule::version`].
    version: u64,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Monotonic mutation counter: changes whenever the schedule *may*
    /// have changed (cell or slotframe added/removed, or mutable frame
    /// access handed out). Consumers caching schedule-derived data (the
    /// MAC's wake tables) compare versions instead of diffing cells.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Adds a slotframe under `handle`, keeping handles sorted.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is already present.
    pub fn add_slotframe(&mut self, handle: SlotframeHandle, frame: Slotframe) {
        assert!(
            self.frame(handle).is_none(),
            "slotframe handle {handle} already in use"
        );
        self.version += 1;
        self.frames.push((handle, frame));
        self.frames.sort_by_key(|(h, _)| *h);
    }

    /// Removes the slotframe under `handle`, returning it if present.
    pub fn remove_slotframe(&mut self, handle: SlotframeHandle) -> Option<Slotframe> {
        let idx = self.frames.iter().position(|(h, _)| *h == handle)?;
        self.version += 1;
        Some(self.frames.remove(idx).1)
    }

    /// The slotframe under `handle`.
    pub fn frame(&self, handle: SlotframeHandle) -> Option<&Slotframe> {
        self.frames
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, f)| f)
    }

    /// Mutable access to the slotframe under `handle`.
    ///
    /// Bumps [`Schedule::version`] even if the caller ends up not
    /// mutating — spurious cache rebuilds are cheap, stale caches are a
    /// correctness bug.
    pub fn frame_mut(&mut self, handle: SlotframeHandle) -> Option<&mut Slotframe> {
        self.version += 1;
        self.frames
            .iter_mut()
            .find(|(h, _)| *h == handle)
            .map(|(_, f)| f)
    }

    /// Iterates over `(handle, slotframe)` pairs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotframeHandle, &Slotframe)> {
        self.frames.iter().map(|(h, f)| (*h, f))
    }

    /// All candidate cells for `asn` in priority order
    /// (slotframe handle, then insertion order).
    pub fn cells_at(&self, asn: Asn) -> Vec<(SlotframeHandle, Cell)> {
        let mut out = Vec::new();
        self.cells_at_into(asn, &mut out);
        out
    }

    /// [`Schedule::cells_at`] into a caller-owned buffer (cleared first):
    /// the MAC's `plan_slot` runs this every active slot and reuses one
    /// scratch vector so the per-slot hot path does not allocate.
    pub fn cells_at_into(&self, asn: Asn, out: &mut Vec<(SlotframeHandle, Cell)>) {
        out.clear();
        for (handle, frame) in &self.frames {
            let slot = frame.slot_of(asn);
            out.extend(frame.cells_at(slot).map(|c| (*handle, *c)));
        }
    }

    /// The earliest slot at or after `from` in which *any* slotframe holds
    /// a cell satisfying `active`, or `None` when no cell in the whole
    /// schedule does.
    ///
    /// This is the schedule half of the MAC's
    /// [`next_active_asn`](crate::TschMac::next_active_asn) query: the
    /// caller supplies the per-cell relevance predicate (typically "could
    /// this cell make the radio turn on?"), the schedule does the cyclic
    /// arithmetic across slotframes of different lengths.
    pub fn next_active_asn(&self, from: Asn, active: impl Fn(&Cell) -> bool) -> Option<Asn> {
        self.frames
            .iter()
            .filter_map(|(_, f)| f.next_slot_matching(from, &active))
            .min()
    }

    /// Total number of cells across all slotframes.
    pub fn total_cells(&self) -> usize {
        self.frames.iter().map(|(_, f)| f.len()).sum()
    }

    /// Number of slotframes.
    pub fn num_slotframes(&self) -> usize {
        self.frames.len()
    }

    /// Builds the schedule's cyclic-union Rx index, if its listen slots
    /// are exactly enumerable within the [`RxUnion`] complexity caps.
    /// See [`RxUnion::build`]; chains inherit the schedule's priority
    /// order, so lookups honor the same EB < common < unicast rule as
    /// [`Schedule::cells_at`].
    pub(crate) fn rx_union(&self) -> Option<RxUnion> {
        RxUnion::build(self.frames.iter().map(|(_, f)| f))
    }
}

/// One slotframe's *listen chain*: the sorted slot offsets at which the
/// frame schedules an Rx cell, each with the channel offset of the first
/// Rx cell at that offset — exactly the listen cell
/// [`plan_slot`](crate::TschMac::plan_slot) picks when no transmission
/// takes priority.
#[derive(Debug, Clone)]
pub(crate) struct RxChain {
    /// Slotframe length in slots.
    len: u64,
    /// `(slot offset, channel offset)`, sorted by offset, deduplicated.
    slots: Vec<(u64, ChannelOffset)>,
}

impl RxChain {
    /// Extracts the listen chain of one slotframe.
    fn of(frame: &Slotframe) -> RxChain {
        let mut slots: Vec<(u64, ChannelOffset)> = Vec::new();
        for cell in frame.cells() {
            if cell.options.rx {
                let off = cell.slot.raw() as u64;
                // First Rx cell per offset wins, like plan_slot.
                if !slots.iter().any(|&(o, _)| o == off) {
                    slots.push((off, cell.channel_offset));
                }
            }
        }
        slots.sort_unstable_by_key(|&(o, _)| o);
        RxChain {
            len: frame.length() as u64,
            slots,
        }
    }

    /// The channel offset this chain listens on at `asn_raw`, if any.
    fn channel_offset_at(&self, asn_raw: u64) -> Option<ChannelOffset> {
        let off = asn_raw % self.len;
        self.slots
            .binary_search_by_key(&off, |&(o, _)| o)
            .ok()
            .map(|i| self.slots[i].1)
    }

    /// The first slot at or after `from` in which this chain listens.
    /// Chains are non-empty by construction, so an answer always exists.
    fn next_at_or_after(&self, from: u64) -> u64 {
        let off = from % self.len;
        let i = self.slots.partition_point(|&(o, _)| o < off);
        match self.slots.get(i) {
            Some(&(o, _)) => from + (o - off),
            // Wrap: the first offset of the next slotframe cycle.
            None => from + (self.len - off) + self.slots[0].0,
        }
    }

    /// How many slots in `[from, to)` this chain listens in. Pure cyclic
    /// arithmetic: O(log slots), no per-slot work.
    fn count_in(&self, from: u64, to: u64) -> u64 {
        if to <= from {
            return 0;
        }
        let k = self.slots.len() as u64;
        if k == 0 {
            return 0;
        }
        let len = self.len;
        let span = to - from;
        let offsets_below = |x: u64| self.slots.partition_point(|&(o, _)| o < x) as u64;
        let start = from % len;
        // Skipped ranges are usually shorter than one slotframe; keep the
        // hot path to a single modulo (above) and no division.
        let (full, rem) = if span < len {
            (0, span)
        } else {
            (span / len, span % len)
        };
        let end = start + rem;
        let partial = if end <= len {
            offsets_below(end) - offsets_below(start)
        } else {
            (k - offsets_below(start)) + offsets_below(end - len)
        };
        full * k + partial
    }
}

/// The cyclic union of a schedule's per-frame listen chains, in priority
/// order: the event-driven engine's exact answer to "when would this
/// (possibly multi-slotframe) node listen, and on which channel?" without
/// materializing the `lcm`-length hyperperiod.
///
/// Counting listens over a skipped range uses inclusion–exclusion across
/// chains: per-chain counts are closed-form ([`RxChain::count_in`]), and
/// every cross-chain overlap is a simultaneous congruence solved exactly
/// by the Chinese Remainder Theorem over the (not necessarily coprime)
/// frame lengths.
#[derive(Debug, Clone)]
pub(crate) struct RxUnion {
    /// Rx-bearing chains in slotframe priority order (frames without Rx
    /// cells can never supply a listen and are dropped at build time).
    chains: Vec<RxChain>,
    /// Precomputed inclusion–exclusion correction terms for cross-chain
    /// overlaps: `(sign, residue, modulus)` per solvable CRT system of a
    /// ≥2-chain subset. Solving the congruences once at build time keeps
    /// [`RxUnion::count_in`] — the engine's per-wake lazy-accounting hot
    /// path — to one closed-form count per chain plus one per overlap
    /// class, with no per-call gcd/inverse work.
    overlaps: Vec<(i8, u64, u64)>,
}

/// Inclusion–exclusion enumerates one CRT system per combination of one
/// Rx offset per chain subset; schedules whose combination count exceeds
/// this bound (or with more than [`MAX_CHAINS`] Rx-bearing frames) fall
/// back to always-wake semantics instead. Orchestra's three frames with a
/// handful of Rx cells each sit orders of magnitude below both caps.
const MAX_TUPLE_WORK: u64 = 4096;
/// Chain-count cap: 2^4 − 1 = 15 subsets at most.
const MAX_CHAINS: usize = 4;

impl RxUnion {
    /// Builds the union over `frames` (must be in priority order), or
    /// `None` when the schedule exceeds the complexity caps and the
    /// caller should treat the node as always-waking instead.
    fn build<'a>(frames: impl Iterator<Item = &'a Slotframe>) -> Option<RxUnion> {
        let mut chains = Vec::new();
        let mut tuple_work: u64 = 1;
        for frame in frames {
            let chain = RxChain::of(frame);
            if chain.slots.is_empty() {
                continue;
            }
            tuple_work = tuple_work.saturating_mul(chain.slots.len() as u64 + 1);
            chains.push(chain);
        }
        if chains.len() > MAX_CHAINS || tuple_work > MAX_TUPLE_WORK {
            return None;
        }
        // Pre-solve every ≥2-chain CRT system (schedules change rarely,
        // counts run on every wake).
        let mut overlaps = Vec::new();
        if chains.len() > 1 {
            let full = (1u32 << chains.len()) - 1;
            for mask in 1..=full {
                if mask.count_ones() < 2 {
                    continue;
                }
                let sign: i8 = if mask.count_ones() % 2 == 1 { 1 } else { -1 };
                collect_crt_tuples(&chains, mask, 0, 1, &mut |r, m| overlaps.push((sign, r, m)));
            }
        }
        Some(RxUnion { chains, overlaps })
    }

    /// The channel offset the node would listen on at `asn_raw`, or
    /// `None` when no chain schedules an Rx there. The first chain in
    /// priority order wins, matching `plan_slot`'s candidate scan.
    pub(crate) fn channel_offset_at(&self, asn_raw: u64) -> Option<ChannelOffset> {
        self.chains
            .iter()
            .find_map(|c| c.channel_offset_at(asn_raw))
    }

    /// The first slot at or after `from` in which *any* chain listens,
    /// or `None` for a union with no chains (the node never listens).
    /// Powers the MAC's listen-miss memo: one query buys O(1) "not
    /// listening" answers for every slot up to the result.
    pub(crate) fn next_listen_at_or_after(&self, from: u64) -> Option<u64> {
        self.chains.iter().map(|c| c.next_at_or_after(from)).min()
    }

    /// [`RxUnion::next_listen_at_or_after`] fused with the channel
    /// lookup: the first listen slot at or after `from` together with
    /// the channel offset used there (first chain in priority order wins
    /// on ties, matching [`RxUnion::channel_offset_at`]). One pass over
    /// the chains — this runs once per listen slot per probed node, the
    /// engine's densest recurring query.
    pub(crate) fn next_listen_with_offset(&self, from: u64) -> Option<(u64, ChannelOffset)> {
        let mut best: Option<(u64, ChannelOffset)> = None;
        for chain in &self.chains {
            let at = chain.next_at_or_after(from);
            // Strictly-less keeps the earliest (priority-first) chain on
            // ties, matching the per-slot lookup's first-wins rule.
            if best.map_or(true, |(b, _)| at < b) {
                let offset = chain
                    .channel_offset_at(at)
                    .expect("next_at_or_after returns a listen slot of the chain");
                best = Some((at, offset));
            }
        }
        best
    }

    /// Exact number of slots in `[from, to)` in which at least one chain
    /// listens: inclusion–exclusion with the single-chain terms in
    /// closed form and the pre-solved cross-chain overlap classes from
    /// build time. Chains within a subset contribute one CRT system per
    /// offset tuple; offsets within one chain are disjoint residues of
    /// the same modulus, so no finer splitting is needed.
    pub(crate) fn count_in(&self, from: u64, to: u64) -> u64 {
        if to <= from {
            return 0;
        }
        if to == from + 1 {
            // Frequently-woken nodes settle one slot at a time; a single
            // membership probe beats the inclusion–exclusion sums.
            return u64::from(self.channel_offset_at(from).is_some());
        }
        let singles: u64 = self.chains.iter().map(|c| c.count_in(from, to)).sum();
        let mut correction: i64 = 0;
        let span = to - from;
        for &(sign, r, m) in &self.overlaps {
            // Settled ranges are usually far shorter than an overlap
            // class's modulus (the lcm of ≥ 2 frame lengths): the class
            // then contributes 0 or 1, answerable with a single division
            // instead of the two in the closed-form count.
            let count = if span <= m {
                let rem = from % m;
                let mut gap = r + m - rem;
                if gap >= m {
                    gap -= m;
                }
                i64::from(gap < span)
            } else {
                count_congruent(from, to, r, m) as i64
            };
            correction += sign as i64 * count;
        }
        let total = singles as i64 + correction;
        debug_assert!(total >= 0, "inclusion-exclusion went negative");
        total as u64
    }
}

/// Walks every combination of one Rx offset per chain indexed by a set
/// bit of `mask`, calling `out(r, m)` for each solvable simultaneous
/// congruence system — the build-time half of the inclusion–exclusion in
/// [`RxUnion::count_in`].
fn collect_crt_tuples(
    chains: &[RxChain],
    mask: u32,
    r: u64,
    m: u64,
    out: &mut impl FnMut(u64, u64),
) {
    if mask == 0 {
        out(r, m);
        return;
    }
    let i = mask.trailing_zeros() as usize;
    let rest = mask & (mask - 1);
    let chain = &chains[i];
    for &(offset, _) in &chain.slots {
        if let Some((r2, m2)) = crt_combine(r, m, offset, chain.len) {
            collect_crt_tuples(chains, rest, r2, m2, out);
        }
    }
}

/// Number of `x` in `[from, to)` with `x ≡ r (mod m)` (`r < m`).
pub(crate) fn count_congruent(from: u64, to: u64, r: u64, m: u64) -> u64 {
    debug_assert!(r < m, "residue must be reduced");
    let below = |n: u64| if n > r { (n - 1 - r) / m + 1 } else { 0 };
    below(to).saturating_sub(below(from))
}

/// Solves `x ≡ r1 (mod m1)`, `x ≡ r2 (mod m2)` for possibly non-coprime
/// moduli: `Some((r, lcm(m1, m2)))` with `r < lcm`, or `None` when the
/// congruences are incompatible (`r1 ≢ r2 mod gcd`). Intermediates use
/// `u128`/`i128`: with ≤ [`MAX_CHAINS`] chains of `u16` lengths the lcm
/// stays below 2⁶⁴, but products en route do not.
pub(crate) fn crt_combine(r1: u64, m1: u64, r2: u64, m2: u64) -> Option<(u64, u64)> {
    let g = gcd(m1, m2);
    let diff = r2 as i128 - r1 as i128;
    if diff.rem_euclid(g as i128) != 0 {
        return None;
    }
    let lcm = m1 / g * m2;
    let m2g = m2 / g;
    if m2g == 1 {
        // m2 divides m1: the first congruence already implies the second.
        return Some((r1, m1));
    }
    let inv = mod_inv((m1 / g) % m2g, m2g).expect("m1/g and m2/g are coprime");
    let t =
        (diff.div_euclid(g as i128).rem_euclid(m2g as i128)) as u128 * inv as u128 % m2g as u128;
    let x = (r1 as u128 + m1 as u128 * t) % lcm as u128;
    Some((x as u64, lcm))
}

/// Greatest common divisor.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular inverse of `a` modulo `m` (extended Euclid), if it exists.
fn mod_inv(a: u64, m: u64) -> Option<u64> {
    let (mut t, mut new_t) = (0i128, 1i128);
    let (mut r, mut new_r) = (m as i128, (a % m) as i128);
    while new_r != 0 {
        let q = r / new_r;
        (t, new_t) = (new_t, t - q * new_t);
        (r, new_r) = (new_r, r - q * new_r);
    }
    if r != 1 {
        return None;
    }
    Some(t.rem_euclid(m as i128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellClass, CellOptions};
    use crate::hopping::ChannelOffset;
    use gtt_net::{Dest, NodeId};

    fn cell(slot: u16, co: u8) -> Cell {
        Cell::new(
            SlotOffset::new(slot),
            ChannelOffset::new(co),
            CellOptions::TX,
            Dest::Unicast(NodeId::new(0)),
            CellClass::Data,
        )
    }

    #[test]
    fn add_and_lookup() {
        let mut sf = Slotframe::new(10);
        sf.add(cell(3, 0));
        sf.add(cell(3, 1));
        sf.add(cell(7, 0));
        assert_eq!(sf.cells_at(SlotOffset::new(3)).count(), 2);
        assert_eq!(sf.cells_at(SlotOffset::new(7)).count(), 1);
        assert_eq!(sf.len(), 3);
        assert!(!sf.is_empty());
    }

    #[test]
    fn remove_where_counts() {
        let mut sf = Slotframe::new(10);
        sf.add(cell(1, 0));
        sf.add(cell(2, 0));
        sf.add(cell(3, 0));
        let removed = sf.remove_where(|c| c.slot.raw() >= 2);
        assert_eq!(removed, 2);
        assert_eq!(sf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside slotframe")]
    fn add_rejects_out_of_range_slot() {
        let mut sf = Slotframe::new(4);
        sf.add(cell(4, 0));
    }

    #[test]
    fn schedule_priority_order() {
        let mut sched = Schedule::new();
        let mut hi = Slotframe::new(4);
        hi.add(cell(0, 1));
        let mut lo = Slotframe::new(4);
        lo.add(cell(0, 2));
        // Insert out of order; iteration must still be handle-sorted.
        sched.add_slotframe(SlotframeHandle::new(2), lo);
        sched.add_slotframe(SlotframeHandle::new(1), hi);
        let cells = sched.cells_at(Asn::new(0));
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, SlotframeHandle::new(1));
        assert_eq!(cells[1].0, SlotframeHandle::new(2));
    }

    #[test]
    fn schedule_different_lengths_phase_independently() {
        let mut sched = Schedule::new();
        let mut sf3 = Slotframe::new(3);
        sf3.add(cell(0, 0));
        let mut sf5 = Slotframe::new(5);
        sf5.add(cell(0, 1));
        sched.add_slotframe(SlotframeHandle::new(0), sf3);
        sched.add_slotframe(SlotframeHandle::new(1), sf5);
        // ASN 15 is slot 0 of both (lcm(3,5)=15).
        assert_eq!(sched.cells_at(Asn::new(15)).len(), 2);
        // ASN 3 is slot 0 of sf3 only.
        assert_eq!(sched.cells_at(Asn::new(3)).len(), 1);
        // ASN 5 is slot 0 of sf5 only.
        assert_eq!(sched.cells_at(Asn::new(5)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_handle_rejected() {
        let mut sched = Schedule::new();
        sched.add_slotframe(SlotframeHandle::new(0), Slotframe::new(4));
        sched.add_slotframe(SlotframeHandle::new(0), Slotframe::new(8));
    }

    #[test]
    fn remove_slotframe_round_trip() {
        let mut sched = Schedule::new();
        sched.add_slotframe(SlotframeHandle::new(3), Slotframe::new(4));
        assert!(sched.frame(SlotframeHandle::new(3)).is_some());
        let f = sched.remove_slotframe(SlotframeHandle::new(3)).unwrap();
        assert_eq!(f.length(), 4);
        assert!(sched.frame(SlotframeHandle::new(3)).is_none());
        assert_eq!(sched.num_slotframes(), 0);
    }

    #[test]
    fn next_slot_matching_wraps_cyclically() {
        let mut sf = Slotframe::new(8);
        sf.add(cell(2, 0));
        sf.add(cell(5, 0));
        // Inside the frame: nearest matching slot at or after `from`.
        assert_eq!(
            sf.next_slot_matching(Asn::new(0), |_| true),
            Some(Asn::new(2))
        );
        assert_eq!(
            sf.next_slot_matching(Asn::new(2), |_| true),
            Some(Asn::new(2))
        );
        assert_eq!(
            sf.next_slot_matching(Asn::new(3), |_| true),
            Some(Asn::new(5))
        );
        // Past the last cell: wraps to slot 2 of the next cycle.
        assert_eq!(
            sf.next_slot_matching(Asn::new(6), |_| true),
            Some(Asn::new(10))
        );
        // Predicate filters.
        assert_eq!(
            sf.next_slot_matching(Asn::new(0), |c| c.slot.raw() == 5),
            Some(Asn::new(5))
        );
        assert_eq!(sf.next_slot_matching(Asn::new(0), |_| false), None);
    }

    #[test]
    fn schedule_next_active_takes_min_across_slotframes() {
        let mut sched = Schedule::new();
        let mut sf3 = Slotframe::new(3);
        sf3.add(cell(1, 0));
        let mut sf5 = Slotframe::new(5);
        sf5.add(cell(0, 1));
        sched.add_slotframe(SlotframeHandle::new(0), sf3);
        sched.add_slotframe(SlotframeHandle::new(1), sf5);
        // From asn2: sf3 fires at 4 (2→offset 2, next offset-1 slot is 4);
        // sf5 fires at 5. Min is 4.
        assert_eq!(
            sched.next_active_asn(Asn::new(2), |_| true),
            Some(Asn::new(4))
        );
        // From asn5: sf5 matches immediately (5 % 5 == 0).
        assert_eq!(
            sched.next_active_asn(Asn::new(5), |_| true),
            Some(Asn::new(5))
        );
        assert_eq!(sched.next_active_asn(Asn::new(0), |_| false), None);
        assert_eq!(Schedule::new().next_active_asn(Asn::new(0), |_| true), None);
    }

    fn rx_cell(slot: u16, co: u8) -> Cell {
        Cell::new(
            SlotOffset::new(slot),
            ChannelOffset::new(co),
            CellOptions::RX,
            Dest::Broadcast,
            CellClass::Data,
        )
    }

    /// The whole point of the cyclic-union index: its closed-form counts
    /// and priority-resolved channel lookups must agree, slot by slot,
    /// with brute-force enumeration of the schedule — including
    /// non-coprime frame lengths where CRT systems can be incompatible.
    #[test]
    fn rx_union_matches_brute_force_enumeration() {
        /// One slotframe: (length, [(rx slot, channel offset)]).
        type FrameShape = (u16, &'static [(u16, u8)]);
        // Frames of lengths 5, 3, 2 (orchestra-shaped) and 6, 4 (shared
        // factor 2) exercise both coprime and non-coprime merging.
        let shapes: &[&[FrameShape]] = &[
            &[(5, &[(0, 0), (3, 1)]), (3, &[(0, 2)]), (2, &[(1, 3)])],
            &[(6, &[(2, 0), (4, 1)]), (4, &[(0, 2), (2, 4)])],
            &[(7, &[(6, 0)]), (31, &[(0, 1)]), (41, &[(5, 2)])],
        ];
        for shape in shapes {
            let mut sched = Schedule::new();
            for (i, (len, cells)) in shape.iter().enumerate() {
                let mut f = Slotframe::new(*len);
                for &(slot, co) in *cells {
                    f.add(rx_cell(slot, co));
                }
                sched.add_slotframe(SlotframeHandle::new(i as u8), f);
            }
            let union = sched.rx_union().expect("within caps");
            // Brute-force listen map over a few hyperperiods.
            let horizon = 3 * shape.iter().map(|(l, _)| *l as u64).product::<u64>();
            let expect_co = |asn: u64| {
                sched
                    .cells_at(Asn::new(asn))
                    .into_iter()
                    .find(|(_, c)| c.options.rx)
                    .map(|(_, c)| c.channel_offset)
            };
            // prefix[a] = number of listen slots in [0, a).
            let mut prefix = vec![0u64; horizon as usize + 1];
            for asn in 0..horizon {
                let co = expect_co(asn);
                assert_eq!(
                    union.channel_offset_at(asn),
                    co,
                    "channel lookup diverges at asn {asn}"
                );
                prefix[asn as usize + 1] = prefix[asn as usize] + u64::from(co.is_some());
            }
            for from in (0..horizon).step_by(7) {
                for to in [from, from + 1, from + 13, from + 97, horizon] {
                    let to = to.min(horizon);
                    let expected = prefix[to as usize] - prefix[from as usize];
                    let got = union.count_in(from, to);
                    assert_eq!(got, expected, "count diverges on [{from}, {to})");
                }
            }
        }
    }

    #[test]
    fn rx_union_priority_prefers_lower_handles() {
        // Both frames listen at ASN 0 on different channel offsets; the
        // lower handle must win, like plan_slot's candidate scan.
        let mut sched = Schedule::new();
        let mut hi = Slotframe::new(4);
        hi.add(rx_cell(0, 7));
        let mut lo = Slotframe::new(2);
        lo.add(rx_cell(0, 9));
        sched.add_slotframe(SlotframeHandle::new(1), lo);
        sched.add_slotframe(SlotframeHandle::new(0), hi);
        let union = sched.rx_union().expect("within caps");
        assert_eq!(union.channel_offset_at(0), Some(ChannelOffset::new(7)));
        // ASN 2: only the length-2 frame listens.
        assert_eq!(union.channel_offset_at(2), Some(ChannelOffset::new(9)));
        // Overlaps are not double-counted: slots 0,2 in [0,4), not 3.
        assert_eq!(union.count_in(0, 4), 2);
    }

    #[test]
    fn rx_union_caps_degrade_to_none() {
        // 5 Rx-bearing frames exceed MAX_CHAINS.
        let mut sched = Schedule::new();
        for i in 0..5u8 {
            let mut f = Slotframe::new(2 + i as u16);
            f.add(rx_cell(0, i));
            sched.add_slotframe(SlotframeHandle::new(i), f);
        }
        assert!(sched.rx_union().is_none(), "cap exceeded ⇒ always-wake");
        // Rx-less frames do not count against the caps.
        let mut sparse = Schedule::new();
        for i in 0..6u8 {
            let mut f = Slotframe::new(2 + i as u16);
            f.add(cell(0, i)); // Tx-only
            sparse.add_slotframe(SlotframeHandle::new(i), f);
        }
        let union = sparse.rx_union().expect("tx-only frames are free");
        assert_eq!(union.count_in(0, 1_000), 0, "never listens");
        assert_eq!(union.channel_offset_at(0), None);
    }

    #[test]
    fn crt_combine_handles_non_coprime_moduli() {
        // x ≡ 2 (mod 6) ∧ x ≡ 0 (mod 4) ⇒ x ≡ 8 (mod 12).
        assert_eq!(crt_combine(2, 6, 0, 4), Some((8, 12)));
        // Incompatible parity: x ≡ 1 (mod 6) ∧ x ≡ 0 (mod 4) has no
        // solution (both constrain x mod 2 differently).
        assert_eq!(crt_combine(1, 6, 0, 4), None);
        // m2 divides m1: first congruence subsumes the second.
        assert_eq!(crt_combine(5, 12, 1, 4), Some((5, 12)));
        assert_eq!(crt_combine(5, 12, 0, 4), None);
        // Coprime: plain CRT.
        assert_eq!(crt_combine(2, 3, 3, 5), Some((8, 15)));
    }

    #[test]
    fn count_congruent_closed_form() {
        // Multiples of 5 in [0, 21): 0,5,10,15,20.
        assert_eq!(count_congruent(0, 21, 0, 5), 5);
        assert_eq!(count_congruent(1, 21, 0, 5), 4);
        assert_eq!(count_congruent(6, 6, 0, 5), 0);
        assert_eq!(count_congruent(7, 8, 2, 5), 1);
        assert_eq!(count_congruent(8, 12, 2, 5), 0);
    }

    #[test]
    fn frame_mut_allows_cell_updates() {
        let mut sched = Schedule::new();
        sched.add_slotframe(SlotframeHandle::new(0), Slotframe::new(8));
        sched
            .frame_mut(SlotframeHandle::new(0))
            .unwrap()
            .add(cell(2, 0));
        assert_eq!(sched.total_cells(), 1);
    }
}
