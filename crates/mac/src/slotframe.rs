//! Slotframes and per-node schedules.

use std::fmt;

use crate::asn::{Asn, SlotOffset};
use crate::cell::Cell;

/// Identifier of a slotframe within a node's [`Schedule`].
///
/// Lower handles take priority when several slotframes schedule a cell in
/// the same slot — the rule Contiki-NG uses and that Orchestra's layered
/// slotframes (EB < common < unicast) rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotframeHandle(u8);

impl SlotframeHandle {
    /// Creates a handle.
    pub const fn new(raw: u8) -> Self {
        SlotframeHandle(raw)
    }

    /// Raw handle value.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for SlotframeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sf{}", self.0)
    }
}

/// A slotframe: a cyclic window of `length` timeslots holding cells.
///
/// # Example
///
/// ```
/// use gtt_mac::{Cell, ChannelOffset, Slotframe, SlotOffset};
/// use gtt_net::NodeId;
///
/// let mut sf = Slotframe::new(32);
/// sf.add(Cell::data_tx(SlotOffset::new(4), ChannelOffset::new(1), NodeId::new(0)));
/// assert_eq!(sf.cells_at(SlotOffset::new(4)).count(), 1);
/// assert_eq!(sf.cells_at(SlotOffset::new(5)).count(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slotframe {
    length: u16,
    cells: Vec<Cell>,
}

impl Slotframe {
    /// Creates an empty slotframe of `length` slots.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(length: u16) -> Self {
        assert!(length > 0, "slotframe length must be positive");
        Slotframe {
            length,
            cells: Vec::new(),
        }
    }

    /// Slotframe length in slots.
    pub fn length(&self) -> u16 {
        self.length
    }

    /// All cells, in insertion order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Adds a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell's slot offset is outside the slotframe.
    pub fn add(&mut self, cell: Cell) {
        assert!(
            cell.slot.raw() < self.length,
            "cell slot {} outside slotframe of length {}",
            cell.slot,
            self.length
        );
        self.cells.push(cell);
    }

    /// Removes every cell matching `pred`; returns how many were removed.
    pub fn remove_where(&mut self, pred: impl Fn(&Cell) -> bool) -> usize {
        let before = self.cells.len();
        self.cells.retain(|c| !pred(c));
        before - self.cells.len()
    }

    /// Cells scheduled at `slot`, in insertion order.
    pub fn cells_at(&self, slot: SlotOffset) -> impl Iterator<Item = &Cell> {
        self.cells.iter().filter(move |c| c.slot == slot)
    }

    /// The slot offset this slotframe assigns to `asn`.
    pub fn slot_of(&self, asn: Asn) -> SlotOffset {
        asn.slot_offset(self.length)
    }

    /// The earliest slot at or after `from` holding a cell that satisfies
    /// `pred`, or `None` when no cell does.
    ///
    /// The slotframe is cyclic, so whenever at least one cell matches the
    /// answer is at most one slotframe length away.
    pub fn next_slot_matching(&self, from: Asn, pred: impl Fn(&Cell) -> bool) -> Option<Asn> {
        let len = self.length as u64;
        let from_offset = self.slot_of(from).raw() as u64;
        self.cells
            .iter()
            .filter(|c| pred(c))
            .map(|c| from + (c.slot.raw() as u64 + len - from_offset) % len)
            .min()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the slotframe holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// A node's full TSCH schedule: one or more prioritized slotframes.
///
/// GT-TSCH uses a single slotframe; Orchestra layers three. The schedule
/// answers the per-slot question "which cells are candidates right now?"
/// with slotframe priority preserved (lower handle first, then insertion
/// order within a slotframe).
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    frames: Vec<(SlotframeHandle, Slotframe)>,
    /// Bumped on every mutation path (including handing out `frame_mut`,
    /// conservatively). Cheap staleness check for caches derived from the
    /// schedule — see [`Schedule::version`].
    version: u64,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Monotonic mutation counter: changes whenever the schedule *may*
    /// have changed (cell or slotframe added/removed, or mutable frame
    /// access handed out). Consumers caching schedule-derived data (the
    /// MAC's wake tables) compare versions instead of diffing cells.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Adds a slotframe under `handle`, keeping handles sorted.
    ///
    /// # Panics
    ///
    /// Panics if `handle` is already present.
    pub fn add_slotframe(&mut self, handle: SlotframeHandle, frame: Slotframe) {
        assert!(
            self.frame(handle).is_none(),
            "slotframe handle {handle} already in use"
        );
        self.version += 1;
        self.frames.push((handle, frame));
        self.frames.sort_by_key(|(h, _)| *h);
    }

    /// Removes the slotframe under `handle`, returning it if present.
    pub fn remove_slotframe(&mut self, handle: SlotframeHandle) -> Option<Slotframe> {
        let idx = self.frames.iter().position(|(h, _)| *h == handle)?;
        self.version += 1;
        Some(self.frames.remove(idx).1)
    }

    /// The slotframe under `handle`.
    pub fn frame(&self, handle: SlotframeHandle) -> Option<&Slotframe> {
        self.frames
            .iter()
            .find(|(h, _)| *h == handle)
            .map(|(_, f)| f)
    }

    /// Mutable access to the slotframe under `handle`.
    ///
    /// Bumps [`Schedule::version`] even if the caller ends up not
    /// mutating — spurious cache rebuilds are cheap, stale caches are a
    /// correctness bug.
    pub fn frame_mut(&mut self, handle: SlotframeHandle) -> Option<&mut Slotframe> {
        self.version += 1;
        self.frames
            .iter_mut()
            .find(|(h, _)| *h == handle)
            .map(|(_, f)| f)
    }

    /// Iterates over `(handle, slotframe)` pairs in priority order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotframeHandle, &Slotframe)> {
        self.frames.iter().map(|(h, f)| (*h, f))
    }

    /// All candidate cells for `asn` in priority order
    /// (slotframe handle, then insertion order).
    pub fn cells_at(&self, asn: Asn) -> Vec<(SlotframeHandle, Cell)> {
        let mut out = Vec::new();
        for (handle, frame) in &self.frames {
            let slot = frame.slot_of(asn);
            out.extend(frame.cells_at(slot).map(|c| (*handle, *c)));
        }
        out
    }

    /// The earliest slot at or after `from` in which *any* slotframe holds
    /// a cell satisfying `active`, or `None` when no cell in the whole
    /// schedule does.
    ///
    /// This is the schedule half of the MAC's
    /// [`next_active_asn`](crate::TschMac::next_active_asn) query: the
    /// caller supplies the per-cell relevance predicate (typically "could
    /// this cell make the radio turn on?"), the schedule does the cyclic
    /// arithmetic across slotframes of different lengths.
    pub fn next_active_asn(&self, from: Asn, active: impl Fn(&Cell) -> bool) -> Option<Asn> {
        self.frames
            .iter()
            .filter_map(|(_, f)| f.next_slot_matching(from, &active))
            .min()
    }

    /// Total number of cells across all slotframes.
    pub fn total_cells(&self) -> usize {
        self.frames.iter().map(|(_, f)| f.len()).sum()
    }

    /// Number of slotframes.
    pub fn num_slotframes(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellClass, CellOptions};
    use crate::hopping::ChannelOffset;
    use gtt_net::{Dest, NodeId};

    fn cell(slot: u16, co: u8) -> Cell {
        Cell::new(
            SlotOffset::new(slot),
            ChannelOffset::new(co),
            CellOptions::TX,
            Dest::Unicast(NodeId::new(0)),
            CellClass::Data,
        )
    }

    #[test]
    fn add_and_lookup() {
        let mut sf = Slotframe::new(10);
        sf.add(cell(3, 0));
        sf.add(cell(3, 1));
        sf.add(cell(7, 0));
        assert_eq!(sf.cells_at(SlotOffset::new(3)).count(), 2);
        assert_eq!(sf.cells_at(SlotOffset::new(7)).count(), 1);
        assert_eq!(sf.len(), 3);
        assert!(!sf.is_empty());
    }

    #[test]
    fn remove_where_counts() {
        let mut sf = Slotframe::new(10);
        sf.add(cell(1, 0));
        sf.add(cell(2, 0));
        sf.add(cell(3, 0));
        let removed = sf.remove_where(|c| c.slot.raw() >= 2);
        assert_eq!(removed, 2);
        assert_eq!(sf.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside slotframe")]
    fn add_rejects_out_of_range_slot() {
        let mut sf = Slotframe::new(4);
        sf.add(cell(4, 0));
    }

    #[test]
    fn schedule_priority_order() {
        let mut sched = Schedule::new();
        let mut hi = Slotframe::new(4);
        hi.add(cell(0, 1));
        let mut lo = Slotframe::new(4);
        lo.add(cell(0, 2));
        // Insert out of order; iteration must still be handle-sorted.
        sched.add_slotframe(SlotframeHandle::new(2), lo);
        sched.add_slotframe(SlotframeHandle::new(1), hi);
        let cells = sched.cells_at(Asn::new(0));
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, SlotframeHandle::new(1));
        assert_eq!(cells[1].0, SlotframeHandle::new(2));
    }

    #[test]
    fn schedule_different_lengths_phase_independently() {
        let mut sched = Schedule::new();
        let mut sf3 = Slotframe::new(3);
        sf3.add(cell(0, 0));
        let mut sf5 = Slotframe::new(5);
        sf5.add(cell(0, 1));
        sched.add_slotframe(SlotframeHandle::new(0), sf3);
        sched.add_slotframe(SlotframeHandle::new(1), sf5);
        // ASN 15 is slot 0 of both (lcm(3,5)=15).
        assert_eq!(sched.cells_at(Asn::new(15)).len(), 2);
        // ASN 3 is slot 0 of sf3 only.
        assert_eq!(sched.cells_at(Asn::new(3)).len(), 1);
        // ASN 5 is slot 0 of sf5 only.
        assert_eq!(sched.cells_at(Asn::new(5)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "already in use")]
    fn duplicate_handle_rejected() {
        let mut sched = Schedule::new();
        sched.add_slotframe(SlotframeHandle::new(0), Slotframe::new(4));
        sched.add_slotframe(SlotframeHandle::new(0), Slotframe::new(8));
    }

    #[test]
    fn remove_slotframe_round_trip() {
        let mut sched = Schedule::new();
        sched.add_slotframe(SlotframeHandle::new(3), Slotframe::new(4));
        assert!(sched.frame(SlotframeHandle::new(3)).is_some());
        let f = sched.remove_slotframe(SlotframeHandle::new(3)).unwrap();
        assert_eq!(f.length(), 4);
        assert!(sched.frame(SlotframeHandle::new(3)).is_none());
        assert_eq!(sched.num_slotframes(), 0);
    }

    #[test]
    fn next_slot_matching_wraps_cyclically() {
        let mut sf = Slotframe::new(8);
        sf.add(cell(2, 0));
        sf.add(cell(5, 0));
        // Inside the frame: nearest matching slot at or after `from`.
        assert_eq!(
            sf.next_slot_matching(Asn::new(0), |_| true),
            Some(Asn::new(2))
        );
        assert_eq!(
            sf.next_slot_matching(Asn::new(2), |_| true),
            Some(Asn::new(2))
        );
        assert_eq!(
            sf.next_slot_matching(Asn::new(3), |_| true),
            Some(Asn::new(5))
        );
        // Past the last cell: wraps to slot 2 of the next cycle.
        assert_eq!(
            sf.next_slot_matching(Asn::new(6), |_| true),
            Some(Asn::new(10))
        );
        // Predicate filters.
        assert_eq!(
            sf.next_slot_matching(Asn::new(0), |c| c.slot.raw() == 5),
            Some(Asn::new(5))
        );
        assert_eq!(sf.next_slot_matching(Asn::new(0), |_| false), None);
    }

    #[test]
    fn schedule_next_active_takes_min_across_slotframes() {
        let mut sched = Schedule::new();
        let mut sf3 = Slotframe::new(3);
        sf3.add(cell(1, 0));
        let mut sf5 = Slotframe::new(5);
        sf5.add(cell(0, 1));
        sched.add_slotframe(SlotframeHandle::new(0), sf3);
        sched.add_slotframe(SlotframeHandle::new(1), sf5);
        // From asn2: sf3 fires at 4 (2→offset 2, next offset-1 slot is 4);
        // sf5 fires at 5. Min is 4.
        assert_eq!(
            sched.next_active_asn(Asn::new(2), |_| true),
            Some(Asn::new(4))
        );
        // From asn5: sf5 matches immediately (5 % 5 == 0).
        assert_eq!(
            sched.next_active_asn(Asn::new(5), |_| true),
            Some(Asn::new(5))
        );
        assert_eq!(sched.next_active_asn(Asn::new(0), |_| false), None);
        assert_eq!(Schedule::new().next_active_asn(Asn::new(0), |_| true), None);
    }

    #[test]
    fn frame_mut_allows_cell_updates() {
        let mut sched = Schedule::new();
        sched.add_slotframe(SlotframeHandle::new(0), Slotframe::new(8));
        sched
            .frame_mut(SlotframeHandle::new(0))
            .unwrap()
            .add(cell(2, 0));
        assert_eq!(sched.total_cells(), 1);
    }
}
