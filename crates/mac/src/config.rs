//! MAC configuration.

use gtt_sim::SimDuration;

/// Tunable MAC parameters, defaulting to the paper's Table II.
///
/// # Example
///
/// ```
/// use gtt_mac::MacConfig;
/// let cfg = MacConfig::paper_default();
/// assert_eq!(cfg.slot_duration.as_millis(), 15);
/// assert_eq!(cfg.max_retries, 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MacConfig {
    /// Length of one timeslot (Table II: 15 ms).
    pub slot_duration: SimDuration,
    /// Maximum retransmissions of a unicast frame before it is dropped
    /// (Table II: 4). The frame is transmitted at most `max_retries + 1`
    /// times in total.
    pub max_retries: u8,
    /// Data queue capacity in packets (Contiki-NG `QUEUEBUF_NUM`-style;
    /// the paper's `Q_Max`).
    pub data_queue_capacity: usize,
    /// Control queue capacity (EB/DIO/6P frames).
    pub control_queue_capacity: usize,
    /// Minimum backoff exponent for shared cells.
    pub min_backoff_exponent: u8,
    /// Maximum backoff exponent for shared cells.
    pub max_backoff_exponent: u8,
    /// EWMA weight for new ETX samples.
    pub etx_alpha: f64,
    /// Fraction of a slot the radio stays on during an *idle* Rx listen
    /// (guard time before giving up). Used for duty-cycle accounting; in
    /// Contiki-NG the guard is ~2.2 ms of a 10–15 ms slot.
    pub idle_listen_fraction: f64,
}

impl MacConfig {
    /// The configuration from the paper's Table II.
    pub fn paper_default() -> Self {
        MacConfig {
            slot_duration: SimDuration::from_millis(15),
            max_retries: 4,
            data_queue_capacity: 8,
            control_queue_capacity: 4,
            min_backoff_exponent: 1,
            max_backoff_exponent: 5,
            etx_alpha: 0.15,
            // TSCH guard time ≈ 2.2 ms of a 15 ms slot (Contiki-NG's
            // TSCH_GUARD_TIME): the radio cost of listening into an
            // empty cell.
            idle_listen_fraction: 0.147,
        }
    }

    /// Validates invariants; called by the MAC constructor.
    ///
    /// # Panics
    ///
    /// Panics on invalid values so that an experiment misconfiguration
    /// fails before any slot is simulated.
    pub fn validate(&self) {
        assert!(
            !self.slot_duration.is_zero(),
            "slot duration must be positive"
        );
        assert!(self.data_queue_capacity > 0, "data queue needs capacity");
        assert!(
            self.control_queue_capacity > 0,
            "control queue needs capacity"
        );
        assert!(
            self.min_backoff_exponent <= self.max_backoff_exponent,
            "backoff exponents inverted"
        );
        assert!(
            self.etx_alpha > 0.0 && self.etx_alpha <= 1.0,
            "etx_alpha must be in (0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.idle_listen_fraction),
            "idle_listen_fraction must be in [0,1]"
        );
    }
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        MacConfig::paper_default().validate();
    }

    #[test]
    #[should_panic(expected = "slot duration")]
    fn zero_slot_duration_rejected() {
        let cfg = MacConfig {
            slot_duration: SimDuration::ZERO,
            ..MacConfig::paper_default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "backoff exponents")]
    fn inverted_backoff_rejected() {
        let cfg = MacConfig {
            min_backoff_exponent: 6,
            max_backoff_exponent: 2,
            ..MacConfig::paper_default()
        };
        cfg.validate();
    }
}
