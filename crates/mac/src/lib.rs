//! # gtt-mac — IEEE 802.15.4e TSCH medium access control
//!
//! A from-scratch model of the TSCH MAC mode used by the GT-TSCH paper:
//!
//! * [`Asn`] — the absolute slot number that synchronizes the network,
//! * [`HoppingSequence`] / [`ChannelOffset`] — TSCH channel hopping
//!   (`channel = sequence[(ASN + offset) % len]`, §6.2.6.3 of the
//!   standard), defaulting to the paper's Table II sequence,
//! * [`Cell`] / [`Slotframe`] / [`Schedule`] — the Channel Distribution
//!   Usage matrix: cells addressed by (slot offset, channel offset) with
//!   TSCH link options (Tx/Rx/Shared) and a scheduler-facing class
//!   (Broadcast / SixP / Data / Shared — the paper's five timeslot types,
//!   with Sleep as the absence of a cell),
//! * [`TschMac`] — the per-node MAC state machine: slot planning, queueing,
//!   acknowledgements, retransmission (up to 4, Table II), exponential
//!   backoff in shared cells, duty-cycle accounting and per-neighbor
//!   [`LinkStats`] feeding the ETX metric of the paper's §VII-B.
//!
//! The MAC is generic over payload type `P`: upper layers (the engine)
//! define what rides inside frames; the MAC never inspects payloads.
//!
//! # Example
//!
//! ```
//! use gtt_mac::{Asn, ChannelOffset, HoppingSequence};
//!
//! let hop = HoppingSequence::paper_default();
//! // Same (slot, offset) maps to different physical channels over time —
//! // that is the "channel hopping" in Time-Slotted Channel Hopping.
//! let a = hop.channel(Asn::new(0), ChannelOffset::new(0));
//! let b = hop.channel(Asn::new(1), ChannelOffset::new(0));
//! assert_ne!(a, b);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod airtime;
pub mod asn;
pub mod backoff;
pub mod cell;
pub mod config;
pub mod hopping;
pub mod mac;
pub mod slotframe;
pub mod stats;
pub mod traffic;

pub use asn::{Asn, SlotOffset};
pub use backoff::SharedCellBackoff;
pub use cell::{Cell, CellClass, CellOptions};
pub use config::MacConfig;
pub use hopping::{ChannelOffset, HoppingSequence};
pub use mac::{MacCounters, SlotAction, SlotResult, TschMac};
pub use slotframe::{Schedule, Slotframe, SlotframeHandle};
pub use stats::{EtxEstimator, LinkStats};
pub use traffic::TrafficClass;
