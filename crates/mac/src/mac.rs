//! The per-node TSCH MAC state machine.

use gtt_net::{Dest, Frame, NodeId, PacketQueue, PhysicalChannel, RxOutcome};
use gtt_sim::Pcg32;

use crate::asn::Asn;
use crate::backoff::SharedCellBackoff;
use crate::cell::{Cell, CellClass};
use crate::config::MacConfig;
use crate::hopping::{ChannelOffset, HoppingSequence};
use crate::slotframe::{count_congruent, crt_combine, Schedule, SlotframeHandle};
use crate::stats::LinkStats;
use crate::traffic::TrafficClass;

/// What the node does in the current slot.
#[derive(Debug, Clone)]
pub enum SlotAction<P> {
    /// Radio off.
    Sleep,
    /// Transmit `frame` on `channel` using `cell`.
    Transmit {
        /// The cell that granted the transmission.
        cell: Cell,
        /// Post-hopping physical channel.
        channel: PhysicalChannel,
        /// The outgoing frame (a copy; the original is held in-flight
        /// until the slot result arrives).
        frame: Frame<P>,
    },
    /// Listen on `channel` as scheduled by `cell`.
    Listen {
        /// The cell that scheduled the listen.
        cell: Cell,
        /// Post-hopping physical channel.
        channel: PhysicalChannel,
    },
}

impl<P> SlotAction<P> {
    /// True for [`SlotAction::Sleep`].
    pub fn is_sleep(&self) -> bool {
        matches!(self, SlotAction::Sleep)
    }
}

/// What the engine reports back after the medium resolved the slot.
#[derive(Debug, Clone)]
pub enum SlotResult<P> {
    /// The node slept.
    Slept,
    /// The node transmitted; `acked` follows
    /// [`SlotOutcomes::acked`](gtt_net::SlotOutcomes) semantics
    /// (`None` = broadcast, no ACK expected).
    Transmitted {
        /// ACK status from the medium.
        acked: Option<bool>,
    },
    /// The node listened and the medium resolved this outcome.
    Listened(RxOutcome<P>),
}

/// MAC-level counters used for duty-cycle and loss accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCounters {
    /// Total slots elapsed.
    pub slots: u64,
    /// Slots spent transmitting.
    pub tx_slots: u64,
    /// Listen slots in which energy was heard.
    pub rx_busy_slots: u64,
    /// Listen slots that stayed idle (guard-time cost only).
    pub rx_idle_slots: u64,
    /// Slots with the radio off.
    pub sleep_slots: u64,
    /// Unicast transmission attempts.
    pub unicast_tx: u64,
    /// Unicast attempts that were acknowledged.
    pub unicast_acked: u64,
    /// Broadcast transmissions.
    pub broadcast_tx: u64,
    /// Packets dropped after exhausting retransmissions.
    pub drops_retry_exhausted: u64,
    /// Collisions observed while listening.
    pub collisions_heard: u64,
    /// Frames received and accepted (addressed to us or broadcast).
    pub rx_accepted: u64,
    /// Frames decoded but addressed to another node (overheard).
    pub rx_overheard: u64,
}

#[derive(Debug, Clone)]
struct Outgoing<P> {
    frame: Frame<P>,
    attempts: u32,
    control: bool,
    /// Traffic class; `None` for data-queue frames.
    class: Option<TrafficClass>,
}

#[derive(Debug, Clone)]
struct InFlight<P> {
    packet: Outgoing<P>,
    shared_cell: bool,
}

/// Schedule-derived wake tables, cached against [`Schedule::version`].
#[derive(Debug, Clone)]
struct WakeCache {
    version: u64,
    /// `Some` when the schedule's listen slots are exactly enumerable by
    /// the cyclic-union Rx index — any number of prioritized slotframes
    /// within [`RxUnion`]'s complexity caps, which covers GT-TSCH's
    /// single slotframe and Orchestra's three alike. The node is then a
    /// *passive listener*: an event-driven engine can account its idle
    /// listens without waking it (see [`TschMac::next_radio_wake`]).
    /// `None` only for pathological schedules beyond the caps, which
    /// fall back to waking on every active slot.
    rx_union: Option<crate::slotframe::RxUnion>,
    /// Listen-miss memo `(covered_from, next_listen)`: the node provably
    /// has no Rx slot in `[covered_from, next_listen)`. The engine's
    /// listener probe asks [`TschMac::listen_channel_at`] for every
    /// audible peer of every busy slot, and in dense slots the common
    /// answer — "not listening" — becomes O(1) instead of a union query.
    /// Rebuilt with the cache, so schedule changes invalidate it.
    listen_miss_memo: (u64, u64),
}

/// The TSCH MAC for one node.
///
/// Drive it slot by slot:
///
/// 1. [`TschMac::plan_slot`] — returns the node's [`SlotAction`];
/// 2. the engine resolves all actions through the
///    [`RadioMedium`](gtt_net::RadioMedium);
/// 3. [`TschMac::finish_slot`] — feeds the [`SlotResult`] back, updating
///    queues, retransmission state, backoff, link statistics and duty
///    cycle, and returning any frame to deliver to upper layers.
///
/// # Example
///
/// ```
/// use gtt_mac::*;
/// use gtt_net::{Dest, Frame, NodeId, PacketId};
/// use gtt_sim::{Pcg32, SimTime};
///
/// let mut mac: TschMac<&'static str> = TschMac::new(
///     NodeId::new(1),
///     MacConfig::paper_default(),
///     HoppingSequence::paper_default(),
///     Pcg32::new(7),
/// );
/// // Give the node one broadcast cell at slot 0 of a 4-slot frame.
/// let mut sf = Slotframe::new(4);
/// sf.add(Cell::broadcast(SlotOffset::new(0), ChannelOffset::new(0)));
/// mac.schedule_mut().add_slotframe(SlotframeHandle::new(0), sf);
///
/// // Nothing queued: the broadcast cell is Rx|Tx, so the node listens.
/// let action = mac.plan_slot(Asn::ZERO);
/// assert!(matches!(action, SlotAction::Listen { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct TschMac<P> {
    id: NodeId,
    config: MacConfig,
    hopping: HoppingSequence,
    schedule: Schedule,
    data_queue: PacketQueue<Outgoing<P>>,
    control_queue: PacketQueue<Outgoing<P>>,
    backoff: SharedCellBackoff,
    rng: Pcg32,
    in_flight: Option<InFlight<P>>,
    /// Per-neighbor link statistics, grown on demand — the RPL layer
    /// reads ETX for every neighbor on every housekeeping poll, which
    /// makes this lookup a hot path. Offset-compressed: `link_stats[k]`
    /// belongs to node id `link_stats_base + k`. Peers cluster in id
    /// space (scenario generators hand out contiguous per-DODAG id
    /// blocks), so anchoring at the lowest peer heard keeps each vector
    /// O(neighborhood id span) instead of O(own ids' magnitude) — at
    /// 10 000 nodes the difference between megabytes and gigabytes
    /// network-wide.
    link_stats: Vec<Option<LinkStats>>,
    /// Node id owning `link_stats[0]` (meaningless while empty).
    link_stats_base: usize,
    counters: MacCounters,
    wake_cache: Option<WakeCache>,
    /// Candidate-cell scratch for `plan_slot`, reused every active slot
    /// so the per-slot hot path never allocates.
    plan_scratch: Vec<(SlotframeHandle, Cell)>,
    /// Memoized [`TschMac::next_radio_wake`] answer (see
    /// [`RadioWakeMemo`]): the engine re-asks after every processed slot,
    /// and between queue/schedule mutations the answer cannot change.
    radio_wake_memo: Option<RadioWakeMemo>,
    /// First ASN whose shared-cell backoff consumption has *not* been
    /// applied yet. Between processings, queues and schedule are frozen,
    /// so the slots in which `plan_slot` would have consumed one backoff
    /// unit (some shared Tx cell with a matching queued frame) form a
    /// small union of arithmetic progressions — the engine settles whole
    /// skipped ranges in closed form ([`TschMac::settle_backoff_to`])
    /// instead of waking the node once per contended shared cell.
    backoff_anchor: u64,
    /// Scratch for the qualifying `(slot offset, frame length)`
    /// progressions, reused so settling never allocates.
    backoff_progs: Vec<(u64, u64)>,
    /// Cache key for `backoff_progs`: `(schedule version, control-queue
    /// mutations, data-queue mutations)`. The qualifying set is a pure
    /// function of those, and contended nodes are probed as listeners
    /// many times between mutations.
    backoff_progs_key: Option<(u64, u64, u64)>,
    /// Whether the cached `backoff_progs` suppressed a duplicate.
    backoff_progs_dup: bool,
}

/// Cached `next_radio_wake` answer, keyed by everything that can move
/// it: the schedule version and both queues' content-mutation counters.
/// `answer` holds for any query `from` in `[from, answer]` (and for any
/// `from ≥ from` when `answer` is `None` — "never" cannot become sooner
/// without a mutation).
#[derive(Debug, Clone, Copy)]
struct RadioWakeMemo {
    sched_version: u64,
    ctrl_mutations: u64,
    data_mutations: u64,
    /// Pending backoff window at memo time — a settled skip changes the
    /// release slot, so it is part of the key.
    pending_backoff: u32,
    from: u64,
    answer: Option<u64>,
}

/// Number of slots in `[from, to)` covered by at least one of the
/// arithmetic progressions `(offset, period)`: inclusion–exclusion with
/// CRT-combined overlap classes. Only the first 4 progressions enter the
/// exclusion terms — callers with more progressions never let the engine
/// skip a covered slot, so every range they query is covered-slot-free
/// and all terms are zero regardless.
fn count_progression_union(progs: &[(u64, u64)], from: u64, to: u64) -> u64 {
    if to <= from || progs.is_empty() {
        return 0;
    }
    if let [(off, len)] = progs {
        return count_congruent(from, to, *off, *len);
    }
    let n = progs.len().min(4);
    let mut total: i64 = 0;
    for mask in 1u32..(1 << n) {
        let mut combined: Option<(u64, u64)> = Some((0, 1));
        for (i, &(off, len)) in progs[..n].iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            combined = combined.and_then(|(r, m)| crt_combine(r, m, off, len));
        }
        let Some((r, m)) = combined else {
            continue; // incompatible congruences: empty intersection
        };
        let sign: i64 = if mask.count_ones() % 2 == 1 { 1 } else { -1 };
        total += sign * count_congruent(from, to, r, m) as i64;
    }
    total.max(0) as u64
}

/// The first slot at or after `from` covered by any progression.
fn next_progression_occurrence(progs: &[(u64, u64)], from: u64) -> u64 {
    progs
        .iter()
        .map(|&(off, len)| from + ((off + len - from % len) % len))
        .min()
        .expect("caller checks progs is non-empty")
}

/// The slot at which a node with `pending` backoff skips left may next
/// act on its shared cells: exactly the `(pending + 1)`-th qualifying
/// occurrence when the qualifying slots are a single clean progression
/// (the skips in between are provable sleeps), and conservatively the
/// `pending`-th (the last consuming slot, where `plan_slot` re-runs the
/// exact per-slot logic) when several progressions or co-located cells
/// make mid-slot exhaustion possible. `None` when nothing qualifies.
fn backoff_release_slot(progs: &[(u64, u64)], dup: bool, from: u64, pending: u32) -> Option<u64> {
    let pending = u64::from(pending);
    match progs {
        [] => None,
        [(off, len)] if !dup => {
            Some(next_progression_occurrence(&[(*off, *len)], from) + pending * len)
        }
        _ => {
            if progs.len() > 4 || pending > 256 {
                // Degenerate schedules: wake at every qualifying slot
                // (the pre-settling behavior, always sound).
                return Some(next_progression_occurrence(progs, from));
            }
            let mut cursor = from;
            let mut last = from;
            for _ in 0..pending {
                last = next_progression_occurrence(progs, cursor);
                cursor = last + 1;
            }
            Some(last)
        }
    }
}

impl<P: Clone> TschMac<P> {
    /// Creates a MAC for node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation.
    pub fn new(id: NodeId, config: MacConfig, hopping: HoppingSequence, rng: Pcg32) -> Self {
        config.validate();
        TschMac {
            id,
            data_queue: PacketQueue::new(config.data_queue_capacity),
            control_queue: PacketQueue::new(config.control_queue_capacity),
            backoff: SharedCellBackoff::new(
                config.min_backoff_exponent,
                config.max_backoff_exponent,
            ),
            config,
            hopping,
            schedule: Schedule::new(),
            rng,
            in_flight: None,
            link_stats: Vec::new(),
            link_stats_base: 0,
            counters: MacCounters::default(),
            wake_cache: None,
            plan_scratch: Vec::new(),
            radio_wake_memo: None,
            backoff_anchor: 0,
            backoff_progs: Vec::new(),
            backoff_progs_key: None,
            backoff_progs_dup: false,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The MAC configuration.
    pub fn config(&self) -> &MacConfig {
        &self.config
    }

    /// The hopping sequence in use.
    pub fn hopping(&self) -> &HoppingSequence {
        &self.hopping
    }

    /// The node's schedule (read-only).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Mutable schedule access for scheduling functions.
    pub fn schedule_mut(&mut self) -> &mut Schedule {
        &mut self.schedule
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> MacCounters {
        self.counters
    }

    /// Per-neighbor link statistics, in node-id order.
    pub fn link_stats(&self) -> impl Iterator<Item = (NodeId, &LinkStats)> + '_ {
        let base = self.link_stats_base;
        self.link_stats
            .iter()
            .enumerate()
            .filter_map(move |(k, s)| s.as_ref().map(|s| (NodeId::from_index(base + k), s)))
    }

    /// The (created-on-first-touch) stats slot for `peer`.
    fn stats_entry(&mut self, peer: NodeId) -> &mut LinkStats {
        let i = peer.index();
        if self.link_stats.is_empty() {
            self.link_stats_base = i;
        } else if i < self.link_stats_base {
            // Rare: a peer below every id heard so far. Shift the vector
            // right so the new peer becomes the anchor.
            let pad = self.link_stats_base - i;
            self.link_stats
                .splice(0..0, std::iter::repeat_with(|| None).take(pad));
            self.link_stats_base = i;
        }
        let k = i - self.link_stats_base;
        if k >= self.link_stats.len() {
            self.link_stats.resize_with(k + 1, || None);
        }
        self.link_stats[k].get_or_insert_with(LinkStats::default)
    }

    /// ETX estimate towards `neighbor` (1.0 before any sample).
    pub fn etx(&self, neighbor: NodeId) -> f64 {
        neighbor
            .index()
            .checked_sub(self.link_stats_base)
            .and_then(|k| self.link_stats.get(k))
            .and_then(|s| s.as_ref())
            .map_or(1.0, |s| s.etx.value())
    }

    /// Number of packets in the data queue — the paper's `q_i`.
    pub fn data_queue_len(&self) -> usize {
        self.data_queue.len()
    }

    /// Data-queue capacity — the paper's `Q_Max`.
    pub fn data_queue_capacity(&self) -> usize {
        self.data_queue.capacity()
    }

    /// Packets dropped on data-queue overflow so far (queue loss).
    pub fn queue_loss(&self) -> u64 {
        self.data_queue.stats().dropped
    }

    /// Enqueues an application/forwarded data frame.
    ///
    /// # Errors
    ///
    /// Returns the frame back when the data queue is full; the drop has
    /// already been counted as queue loss.
    pub fn enqueue_data(&mut self, frame: Frame<P>) -> Result<(), Frame<P>> {
        self.data_queue
            .push(Outgoing {
                frame,
                attempts: 0,
                control: false,
                class: None,
            })
            .map_err(|o| o.frame)
    }

    /// Enqueues a control frame (EB, DIO, DAO, 6P) tagged with its
    /// traffic class, which cell-matching uses to keep e.g. EBs inside
    /// Orchestra's EB slotframe.
    ///
    /// # Errors
    ///
    /// Returns the frame back when the control queue is full.
    pub fn enqueue_control(
        &mut self,
        frame: Frame<P>,
        class: TrafficClass,
    ) -> Result<(), Frame<P>> {
        self.control_queue
            .push(Outgoing {
                frame,
                attempts: 0,
                control: true,
                class: Some(class),
            })
            .map_err(|o| o.frame)
    }

    /// Number of pending control frames.
    pub fn control_queue_len(&self) -> usize {
        self.control_queue.len()
    }

    /// Removes queued *data* frames matching `pred` (e.g. re-routing after
    /// a parent switch) and returns them.
    pub fn drain_data_where(&mut self, pred: impl Fn(&Frame<P>) -> bool) -> Vec<Frame<P>> {
        self.data_queue
            .drain_where(|o| pred(&o.frame))
            .into_iter()
            .map(|o| o.frame)
            .collect()
    }

    /// Number of queued data frames currently addressed to `dest`
    /// (diagnostics; does not modify the queue).
    pub fn drain_count_to(&self, dest: Dest) -> usize {
        self.data_queue.count_where(|o| o.frame.dst == dest)
    }

    /// Fraction of elapsed time the radio was on, using slot-fraction
    /// accounting (see `DESIGN.md` §3): Tx and busy-Rx slots cost a full
    /// slot, idle listens cost [`MacConfig::idle_listen_fraction`].
    pub fn duty_cycle(&self) -> f64 {
        if self.counters.slots == 0 {
            return 0.0;
        }
        let on = self.counters.tx_slots as f64
            + self.counters.rx_busy_slots as f64
            + self.counters.rx_idle_slots as f64 * self.config.idle_listen_fraction;
        on / self.counters.slots as f64
    }

    /// The earliest slot at or after `from` in which this MAC would do
    /// anything other than an effect-free sleep — the heart of the
    /// event-driven engine's slot skipping.
    ///
    /// A slot is *active* when some scheduled cell there either
    ///
    /// * listens (`rx`), or
    /// * transmits (`tx`) **and** a queued frame matches the cell's
    ///   queue-matching rule.
    ///
    /// Shared-cell backoff deliberately does not defer the answer: a
    /// shared Tx cell with pending traffic consumes one backoff unit even
    /// when the window forbids transmitting, so the node must still wake
    /// there for [`TschMac::plan_slot`] to drain the window exactly as a
    /// slot-by-slot loop would.
    ///
    /// `None` means the node sleeps forever unless its queues or schedule
    /// change. The answer is stable while the node sleeps: queues and
    /// schedule only change when the node itself runs (upkeep, reception,
    /// scheduler hooks), so a woken engine can cache it until the node's
    /// next wake-up.
    pub fn next_active_asn(&self, from: Asn) -> Option<Asn> {
        self.schedule
            .next_active_asn(from, |cell| self.cell_is_active(cell))
    }

    /// True if `cell` would keep the radio from an effect-free sleep.
    fn cell_is_active(&self, cell: &Cell) -> bool {
        cell.options.rx || (cell.options.tx && self.has_frame_for(cell))
    }

    /// Bulk-accounts `slots` skipped slots, of which `idle_listens` were
    /// scheduled listens that would have resolved to
    /// [`RxOutcome::Idle`] (nothing audible) and the rest were sleeps.
    ///
    /// Equivalent to `slots` consecutive `plan_slot`/`finish_slot` rounds
    /// in which the node either slept or idle-listened: both touch only
    /// the duty-cycle counters — no queue, backoff, link-stat or RNG
    /// state — which is what makes them safe to skip. The caller (the
    /// event-driven engine) is responsible for the count being exact;
    /// [`TschMac::count_listen_slots`] computes it for passive listeners.
    pub fn account_skipped(&mut self, slots: u64, idle_listens: u64) {
        debug_assert!(
            self.in_flight.is_none(),
            "cannot skip slots with a packet in flight"
        );
        debug_assert!(idle_listens <= slots, "more listens than slots");
        self.counters.slots += slots;
        self.counters.rx_idle_slots += idle_listens;
        self.counters.sleep_slots += slots - idle_listens;
    }

    /// Rebuilds the schedule-derived wake tables if the schedule changed.
    fn refresh_wake_cache(&mut self) {
        let version = self.schedule.version();
        if self
            .wake_cache
            .as_ref()
            .is_some_and(|c| c.version == version)
        {
            return;
        }
        let rx_union = self.schedule.rx_union();
        self.wake_cache = Some(WakeCache {
            version,
            rx_union,
            // Empty interval: no slot is covered until the first miss.
            listen_miss_memo: (1, 0),
        });
    }

    /// True when the node's Rx slots are exactly enumerable by the
    /// cyclic-union index (single- and multi-slotframe schedules alike)
    /// so the engine may treat it as a *passive listener*: skip its idle
    /// listens and wake it only for transmissions it could hear, timers,
    /// or its own pending traffic.
    pub fn is_passive_listener(&mut self) -> bool {
        self.refresh_wake_cache();
        self.wake_cache
            .as_ref()
            .is_some_and(|c| c.rx_union.is_some())
    }

    /// The next slot at or after `from` for which the *engine* must wake
    /// this node on the MAC's account.
    ///
    /// For a passive listener ([`TschMac::is_passive_listener`]) that is
    /// only its transmission opportunities: the next slot where a Tx cell
    /// has a matching queued frame (`None` with empty queues — idle
    /// listens are accounted lazily, and audible traffic wakes the node
    /// through the transmitter's side). Only schedules beyond the Rx
    /// index's complexity caps fall back to
    /// [`TschMac::next_active_asn`], i.e. every listen slot is a wake-up.
    pub fn next_radio_wake(&mut self, from: Asn) -> Option<Asn> {
        // Memo fast path: the answer only moves on a schedule, queue or
        // backoff mutation, and a cached `Some(a)` covers every query in
        // `[memo.from, a]` (a cached `None` covers all of
        // `[memo.from, ∞)`).
        let sched_version = self.schedule.version();
        let ctrl_mutations = self.control_queue.mutations();
        let data_mutations = self.data_queue.mutations();
        let pending_backoff = self.backoff.pending();
        if let Some(memo) = self.radio_wake_memo {
            if memo.sched_version == sched_version
                && memo.ctrl_mutations == ctrl_mutations
                && memo.data_mutations == data_mutations
                && memo.pending_backoff == pending_backoff
                && memo.from <= from.raw()
                && memo.answer.map_or(true, |a| from.raw() <= a)
            {
                return memo.answer.map(Asn::new);
            }
        }
        let answer = if self.is_passive_listener() {
            if self.data_queue.is_empty() && self.control_queue.is_empty() {
                None
            } else if pending_backoff == 0 {
                self.schedule
                    .next_active_asn(from, |cell| cell.options.tx && self.has_frame_for(cell))
            } else {
                // A backoff window is pending: blocked shared Tx-only
                // cells are provable sleeps (their consumption is
                // settled in closed form — `settle_backoff_to`), and
                // blocked shared Tx+Rx cells fall back to passive
                // listens the probe already covers. Wake at the earlier
                // of the next contention-free transmission and the slot
                // where the window releases the shared cells.
                let dedicated = self.schedule.next_active_asn(from, |cell| {
                    cell.options.tx && !cell.options.shared && self.has_frame_for(cell)
                });
                self.refresh_backoff_progs();
                let release = backoff_release_slot(
                    &self.backoff_progs,
                    self.backoff_progs_dup,
                    from.raw(),
                    pending_backoff,
                );
                match (dedicated.map(Asn::raw), release) {
                    (Some(d), Some(r)) => Some(Asn::new(d.min(r))),
                    (Some(d), None) => Some(Asn::new(d)),
                    (None, Some(r)) => Some(Asn::new(r)),
                    (None, None) => None,
                }
            }
        } else {
            self.next_active_asn(from)
        };
        self.radio_wake_memo = Some(RadioWakeMemo {
            sched_version,
            ctrl_mutations,
            data_mutations,
            pending_backoff,
            from: from.raw(),
            answer: answer.map(Asn::raw),
        });
        answer
    }

    /// Settles the shared-cell backoff over `[backoff_anchor, to)`:
    /// every slot of the range in which `plan_slot` would have consumed
    /// one unit of pending window — some shared Tx cell with a matching
    /// queued frame — is counted in closed form and consumed in bulk.
    ///
    /// Must run at the *start* of processing the node (before any queue
    /// or schedule mutation of the slot): the closed form relies on the
    /// state having been frozen since the anchor, which is exactly the
    /// event-driven engine's skipped-range invariant. No-op on the naive
    /// oracle core, where every slot is processed and the range is
    /// always empty.
    pub fn settle_backoff_to(&mut self, to: u64) {
        if to <= self.backoff_anchor {
            return;
        }
        let from = self.backoff_anchor;
        self.backoff_anchor = to;
        if self.backoff.may_transmit()
            || (self.data_queue.is_empty() && self.control_queue.is_empty())
        {
            return;
        }
        self.refresh_backoff_progs();
        let progs = std::mem::take(&mut self.backoff_progs);
        if !progs.is_empty() {
            let q = count_progression_union(&progs, from, to);
            if q > 0 {
                self.backoff
                    .on_shared_cells_skipped(q.min(u64::from(u32::MAX)) as u32);
            }
        }
        self.backoff_progs = progs;
    }

    /// Rebuilds the cached qualifying-progression set if the schedule or
    /// either queue changed since it was last collected.
    fn refresh_backoff_progs(&mut self) {
        let key = (
            self.schedule.version(),
            self.control_queue.mutations(),
            self.data_queue.mutations(),
        );
        if self.backoff_progs_key == Some(key) {
            return;
        }
        let mut progs = std::mem::take(&mut self.backoff_progs);
        self.backoff_progs_dup = self.collect_backoff_progs(&mut progs);
        self.backoff_progs = progs;
        self.backoff_progs_key = Some(key);
    }

    /// Collects the `(slot offset, frame length)` progressions of the
    /// node's *qualifying* slots — slots holding at least one shared Tx
    /// cell with a matching queued frame — into `out` (deduplicated).
    /// Returns `true` when a duplicate progression was suppressed, i.e.
    /// one slot can hold several qualifying cells (the release-slot
    /// computation must then stay conservative: a second shared cell in
    /// the window-exhausting slot could transmit in it).
    fn collect_backoff_progs(&self, out: &mut Vec<(u64, u64)>) -> bool {
        out.clear();
        let mut dup = false;
        for (_, frame) in self.schedule.iter() {
            let len = u64::from(frame.length());
            for cell in frame.cells() {
                if cell.options.tx && cell.options.shared && self.has_frame_for(cell) {
                    let prog = (u64::from(cell.slot.raw()), len);
                    if out.contains(&prog) {
                        dup = true;
                    } else {
                        out.push(prog);
                    }
                }
            }
        }
        dup
    }

    /// The physical channel this node would listen on in slot `asn`, or
    /// `None` when it would not listen (no Rx cell there, or not a
    /// passive listener — the rare beyond-caps nodes are heap-woken for
    /// every listen slot, so the engine never needs to probe them).
    /// Priority across slotframes follows `plan_slot`'s candidate scan
    /// (lower handle first — Orchestra's EB < common < unicast rule).
    ///
    /// Only valid for slots in which the node has no transmission
    /// opportunity (the engine guarantees this: such slots are wake-ups,
    /// not probes).
    pub fn listen_channel_at(&mut self, asn: Asn) -> Option<PhysicalChannel> {
        self.refresh_wake_cache();
        let cache = self.wake_cache.as_mut()?;
        let union = cache.rx_union.as_ref()?;
        let a = asn.raw();
        let (covered_from, next_listen) = cache.listen_miss_memo;
        if covered_from <= a && a < next_listen {
            return None;
        }
        if let Some(offset) = union.channel_offset_at(a) {
            return Some(self.hopping.channel(asn, offset));
        }
        // Not listening at `a`: memoize the whole quiet gap, so the
        // engine's per-slot probes of this node answer in O(1) until its
        // next actual Rx slot.
        let next = union.next_listen_at_or_after(a + 1).unwrap_or(u64::MAX);
        cache.listen_miss_memo = (a, next);
        None
    }

    /// The first slot at or after `from` in which this passive listener
    /// would listen, with the channel *offset* of that listen (chain
    /// priority resolved like [`TschMac::listen_channel_at`]). `None`
    /// when the node never listens on its own (no Rx cells, or a
    /// beyond-caps schedule, which is always-wake and never probed).
    ///
    /// This is the engine's dense listener-probe index feed: one query
    /// lets the engine skip the node O(1) — without touching it — for
    /// every slot strictly before the returned one, and resolve the
    /// physical channel at that slot from the shared hopping sequence.
    pub fn next_listen(&mut self, from: Asn) -> Option<(Asn, ChannelOffset)> {
        self.refresh_wake_cache();
        self.next_listen_cached(from)
    }

    /// [`TschMac::next_listen`] without the wake-cache staleness check:
    /// for callers that track schedule changes themselves (the engine's
    /// probe index marks rows stale on any schedule mutation and only
    /// takes this path on rows it knows are fresh).
    ///
    /// # Panics
    ///
    /// Debug-asserts that the wake cache really is current.
    pub fn next_listen_cached(&self, from: Asn) -> Option<(Asn, ChannelOffset)> {
        debug_assert!(
            self.wake_cache
                .as_ref()
                .is_some_and(|c| c.version == self.schedule.version()),
            "next_listen_cached on a stale wake cache"
        );
        let union = self.wake_cache.as_ref()?.rx_union.as_ref()?;
        let (next, offset) = union.next_listen_with_offset(from.raw())?;
        Some((Asn::new(next), offset))
    }

    /// True when `plan_slot(asn)` would provably return
    /// [`SlotAction::Sleep`] with no side effect beyond the sleep
    /// counters: the node is a passive listener, both queues are empty
    /// (no transmission, no backoff consumption) and no Rx cell is
    /// scheduled at `asn`. The engine uses this to settle a timer-only
    /// wake-up with [`TschMac::account_skipped`]`(1, 0)` instead of a
    /// plan/finish round-trip.
    pub fn sleeps_at(&mut self, asn: Asn) -> bool {
        self.is_passive_listener()
            && self.data_queue.is_empty()
            && self.control_queue.is_empty()
            && self.listen_channel_at(asn).is_none()
    }

    /// Completes a probed listen slot in one call: exactly
    /// [`TschMac::plan_slot`] selecting the slot's listen cell (which
    /// only increments the slot counter and settles backoff, including
    /// this slot's own consumption if a blocked shared Tx+Rx cell with a
    /// queued frame is what schedules the listen) followed by
    /// [`TschMac::finish_slot`] with `Listened(outcome)`.
    ///
    /// Only valid when the node would listen at slot `asn`
    /// ([`TschMac::listen_channel_at`] returned the channel) — the
    /// engine's listener probe guarantees it.
    pub fn finish_probed_listen(&mut self, asn: Asn, outcome: RxOutcome<P>) -> Option<Frame<P>> {
        debug_assert!(
            self.in_flight.is_none(),
            "probed listen with a packet in flight"
        );
        // Settle *through* this slot before the delivery below can touch
        // the queues: a probed node never transmits here, so its
        // consumption (if any) is pure closed-form arithmetic.
        self.settle_backoff_to(asn.raw() + 1);
        self.counters.slots += 1;
        self.handle_rx_outcome(outcome)
    }

    /// How many slots in `[from, to)` this passive listener would listen
    /// in, assuming it is never woken inside the range (0 for beyond-caps
    /// active nodes, which are woken on every listen slot and therefore
    /// never skip one).
    ///
    /// Pure cyclic arithmetic over the cached Rx index: closed-form per
    /// slotframe, inclusion–exclusion with exact CRT overlap counts
    /// across slotframes — never per-slot work, however long the skipped
    /// range.
    pub fn count_listen_slots(&mut self, from: Asn, to: Asn) -> u64 {
        if to.raw() <= from.raw() {
            return 0;
        }
        self.refresh_wake_cache();
        let Some(union) = self.wake_cache.as_ref().and_then(|c| c.rx_union.as_ref()) else {
            return 0;
        };
        union.count_in(from.raw(), to.raw())
    }

    /// Plans the node's action for slot `asn`.
    ///
    /// Cell selection follows Contiki-NG's rule: scan candidate cells in
    /// schedule-priority order; the first Tx cell with a matching queued
    /// frame wins; otherwise the first Rx cell is used to listen;
    /// otherwise the node sleeps. Shared cells consult the backoff state
    /// before transmitting.
    ///
    /// # Panics
    ///
    /// Panics if the previous slot's [`TschMac::finish_slot`] was skipped.
    pub fn plan_slot(&mut self, asn: Asn) -> SlotAction<P> {
        assert!(
            self.in_flight.is_none(),
            "finish_slot() must be called before planning the next slot"
        );
        self.counters.slots += 1;
        // Catch up any backoff consumption the engine skipped over;
        // this slot's own consumption is the candidate scan's job, and
        // the anchor advance below marks it as handled.
        self.settle_backoff_to(asn.raw());

        // Candidate cells land in the reused scratch, taken out for the
        // scan so the queue/backoff mutations below can borrow `self`.
        let mut candidates = std::mem::take(&mut self.plan_scratch);
        self.schedule.cells_at_into(asn, &mut candidates);
        let action = self.plan_slot_from(asn, &candidates);
        self.plan_scratch = candidates;
        self.backoff_anchor = self.backoff_anchor.max(asn.raw() + 1);
        action
    }

    /// The candidate scan behind [`TschMac::plan_slot`]; `candidates` is
    /// the schedule's priority-ordered cell list for the slot.
    fn plan_slot_from(
        &mut self,
        asn: Asn,
        candidates: &[(SlotframeHandle, Cell)],
    ) -> SlotAction<P> {
        if candidates.is_empty() {
            self.counters.sleep_slots += 1;
            return SlotAction::Sleep;
        }

        let mut listen_cell: Option<Cell> = None;
        let mut backoff_consumed = false;

        for (_handle, cell) in candidates {
            if cell.options.tx {
                if cell.options.shared && !self.backoff.may_transmit() {
                    // Pending backoff: this shared cell is skipped for Tx.
                    // Consume one backoff unit (once per slot) and fall
                    // back to listening if the cell allows it.
                    if self.has_frame_for(cell) && !backoff_consumed {
                        self.backoff.on_shared_cell_skipped();
                        backoff_consumed = true;
                    }
                } else if let Some(packet) = self.take_frame_for(cell) {
                    let channel = self.hopping.channel(asn, cell.channel_offset);
                    let frame = packet.frame.clone();
                    self.counters.tx_slots += 1;
                    match frame.dst {
                        Dest::Broadcast => self.counters.broadcast_tx += 1,
                        Dest::Unicast(peer) => {
                            self.counters.unicast_tx += 1;
                            self.stats_entry(peer).tx_attempts += 1;
                        }
                    }
                    self.in_flight = Some(InFlight {
                        packet: Outgoing {
                            attempts: 0, // set below; clarity over cleverness
                            ..packet.clone()
                        },
                        shared_cell: cell.options.shared,
                    });
                    // Keep the true attempt count (pre-increment happened
                    // when the packet was queued? No: attempts counts
                    // transmissions performed, incremented here).
                    if let Some(fl) = self.in_flight.as_mut() {
                        fl.packet.attempts = packet.attempts + 1;
                    }
                    return SlotAction::Transmit {
                        cell: *cell,
                        channel,
                        frame,
                    };
                }
            }
            if cell.options.rx && listen_cell.is_none() {
                listen_cell = Some(*cell);
            }
        }

        if let Some(cell) = listen_cell {
            let channel = self.hopping.channel(asn, cell.channel_offset);
            return SlotAction::Listen { cell, channel };
        }

        self.counters.sleep_slots += 1;
        SlotAction::Sleep
    }

    fn queue_for(&mut self, control: bool) -> &mut PacketQueue<Outgoing<P>> {
        if control {
            &mut self.control_queue
        } else {
            &mut self.data_queue
        }
    }

    /// The queue-matching rule for `cell` (see [`TrafficClass`]):
    ///
    /// * `Eb` cells carry only EB frames,
    /// * `Broadcast` cells carry any control frame whose destination the
    ///   cell accepts (the common/fallback slot),
    /// * `SixP` cells carry unicast control towards their peer,
    /// * `Data` cells carry data-queue frames towards their peer,
    /// * `Shared` cells carry unicast control first, then data.
    fn control_matches(cell: &Cell, o: &Outgoing<P>) -> bool {
        match cell.class {
            CellClass::Eb => o.class == Some(TrafficClass::Eb) && cell.matches_tx(o.frame.dst),
            CellClass::Broadcast => cell.matches_tx(o.frame.dst),
            CellClass::SixP | CellClass::Shared => {
                o.class == Some(TrafficClass::ControlUnicast)
                    && !o.frame.dst.is_broadcast()
                    && cell.matches_tx(o.frame.dst)
            }
            CellClass::Data => false,
        }
    }

    fn serves_data(cell: &Cell) -> bool {
        matches!(cell.class, CellClass::Data | CellClass::Shared)
    }

    /// True if some queued frame could go out in `cell`.
    fn has_frame_for(&self, cell: &Cell) -> bool {
        if self
            .control_queue
            .peek_where(|o| Self::control_matches(cell, o))
            .is_some()
        {
            return true;
        }
        Self::serves_data(cell)
            && self
                .data_queue
                .peek_where(|o| cell.matches_tx(o.frame.dst))
                .is_some()
    }

    /// Pops the frame that should go out in `cell`, if any.
    fn take_frame_for(&mut self, cell: &Cell) -> Option<Outgoing<P>> {
        if let Some(o) = self
            .control_queue
            .pop_where(|o| Self::control_matches(cell, o))
        {
            return Some(o);
        }
        if Self::serves_data(cell) {
            return self.data_queue.pop_where(|o| cell.matches_tx(o.frame.dst));
        }
        None
    }

    /// Completes the slot, updating all MAC state.
    ///
    /// Returns a frame for the upper layers when one was received and
    /// addressed to this node (or broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `result` is inconsistent with the planned action (e.g.
    /// `Transmitted` without a pending in-flight packet).
    pub fn finish_slot(&mut self, result: SlotResult<P>) -> Option<Frame<P>> {
        match result {
            SlotResult::Slept => {
                // Sleep was already accounted in plan_slot.
                assert!(self.in_flight.is_none(), "slept with a packet in flight");
                None
            }
            SlotResult::Transmitted { acked } => {
                let fl = self
                    .in_flight
                    .take()
                    .expect("Transmitted result without an in-flight packet");
                self.handle_tx_result(fl, acked);
                None
            }
            SlotResult::Listened(outcome) => {
                assert!(self.in_flight.is_none(), "listened with a packet in flight");
                self.handle_rx_outcome(outcome)
            }
        }
    }

    fn handle_tx_result(&mut self, fl: InFlight<P>, acked: Option<bool>) {
        match (fl.packet.frame.dst, acked) {
            (Dest::Broadcast, _) => {
                // Broadcasts are fire-and-forget.
            }
            (Dest::Unicast(peer), Some(true)) => {
                let attempts = fl.packet.attempts;
                let stats = self.stats_entry(peer);
                stats.acked += 1;
                stats.etx.record_success(attempts.max(1));
                self.counters.unicast_acked += 1;
                if fl.shared_cell {
                    self.backoff.on_success();
                }
            }
            (Dest::Unicast(peer), _) => {
                // Not acknowledged: retry or drop.
                if fl.shared_cell {
                    self.backoff.on_failure(&mut self.rng);
                }
                if fl.packet.attempts > self.config.max_retries as u32 {
                    let stats = self.stats_entry(peer);
                    stats.tx_failures += 1;
                    stats.etx.record_failure();
                    self.counters.drops_retry_exhausted += 1;
                } else {
                    let control = fl.packet.control;
                    // Head-of-line requeue preserves delivery order; the
                    // queue cannot be full because this packet's slot was
                    // freed when it was popped and pushes during flight
                    // target the tail.
                    if self.queue_for(control).requeue_front(fl.packet).is_err() {
                        // The queue filled up while the packet was in
                        // flight; treat as a tail drop.
                        self.counters.drops_retry_exhausted += 1;
                    }
                }
            }
        }
    }

    fn handle_rx_outcome(&mut self, outcome: RxOutcome<P>) -> Option<Frame<P>> {
        match outcome {
            RxOutcome::Idle => {
                self.counters.rx_idle_slots += 1;
                None
            }
            RxOutcome::Faded => {
                self.counters.rx_busy_slots += 1;
                None
            }
            RxOutcome::Collision(_) => {
                self.counters.rx_busy_slots += 1;
                self.counters.collisions_heard += 1;
                None
            }
            RxOutcome::Received(frame) => {
                self.counters.rx_busy_slots += 1;
                let accept = match frame.dst {
                    Dest::Broadcast => true,
                    Dest::Unicast(dst) => dst == self.id,
                };
                if accept {
                    self.counters.rx_accepted += 1;
                    self.stats_entry(frame.src).rx_frames += 1;
                    Some(frame)
                } else {
                    self.counters.rx_overheard += 1;
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::SlotOffset;
    use crate::cell::CellOptions;
    use crate::hopping::ChannelOffset;
    use crate::slotframe::{Slotframe, SlotframeHandle};
    use gtt_net::PacketId;
    use gtt_sim::SimTime;

    fn mac() -> TschMac<u32> {
        TschMac::new(
            NodeId::new(1),
            MacConfig::paper_default(),
            HoppingSequence::paper_default(),
            Pcg32::new(42),
        )
    }

    fn data_frame(dst: u16, payload: u32) -> Frame<u32> {
        Frame::new(
            PacketId::new(payload as u64),
            NodeId::new(1),
            Dest::Unicast(NodeId::new(dst)),
            SimTime::ZERO,
            payload,
        )
    }

    fn bcast_frame(payload: u32) -> Frame<u32> {
        Frame::new(
            PacketId::new(payload as u64),
            NodeId::new(1),
            Dest::Broadcast,
            SimTime::ZERO,
            payload,
        )
    }

    /// Schedule: slot0 broadcast, slot1 data-Tx→n0, slot2 data-Rx←n2,
    /// in a 4-slot frame (slot 3 = sleep).
    fn install_schedule(m: &mut TschMac<u32>) {
        let mut sf = Slotframe::new(4);
        sf.add(Cell::broadcast(SlotOffset::new(0), ChannelOffset::new(0)));
        sf.add(Cell::data_tx(
            SlotOffset::new(1),
            ChannelOffset::new(1),
            NodeId::new(0),
        ));
        sf.add(Cell::data_rx(
            SlotOffset::new(2),
            ChannelOffset::new(1),
            NodeId::new(2),
        ));
        m.schedule_mut().add_slotframe(SlotframeHandle::new(0), sf);
    }

    #[test]
    fn empty_slot_sleeps() {
        let mut m = mac();
        install_schedule(&mut m);
        let action = m.plan_slot(Asn::new(3));
        assert!(action.is_sleep());
        m.finish_slot(SlotResult::Slept);
        assert_eq!(m.counters().sleep_slots, 1);
    }

    #[test]
    fn tx_cell_without_traffic_sleeps() {
        let mut m = mac();
        install_schedule(&mut m);
        // Slot 1 is a dedicated Tx cell but the queue is empty.
        let action = m.plan_slot(Asn::new(1));
        assert!(action.is_sleep());
    }

    #[test]
    fn data_tx_uses_dedicated_cell_and_ack_clears_queue() {
        let mut m = mac();
        install_schedule(&mut m);
        m.enqueue_data(data_frame(0, 7)).unwrap();
        let action = m.plan_slot(Asn::new(1));
        match &action {
            SlotAction::Transmit { frame, .. } => assert_eq!(frame.payload, 7),
            other => panic!("expected Transmit, got {other:?}"),
        }
        m.finish_slot(SlotResult::Transmitted { acked: Some(true) });
        assert_eq!(m.data_queue_len(), 0);
        assert_eq!(m.counters().unicast_acked, 1);
        assert_eq!(m.etx(NodeId::new(0)), 1.0);
    }

    #[test]
    fn nack_requeues_until_retry_limit() {
        let mut m = mac();
        install_schedule(&mut m);
        m.enqueue_data(data_frame(0, 9)).unwrap();
        // max_retries = 4 ⇒ 5 transmissions total, then drop.
        for round in 0..5 {
            let asn = Asn::new(1 + 4 * round);
            let action = m.plan_slot(asn);
            assert!(
                matches!(action, SlotAction::Transmit { .. }),
                "round {round} should retransmit"
            );
            m.finish_slot(SlotResult::Transmitted { acked: Some(false) });
        }
        assert_eq!(m.data_queue_len(), 0, "packet dropped after retries");
        assert_eq!(m.counters().drops_retry_exhausted, 1);
        assert!(m.etx(NodeId::new(0)) > 1.0);
        // Nothing left to send.
        assert!(m.plan_slot(Asn::new(21)).is_sleep());
    }

    #[test]
    fn broadcast_is_fire_and_forget() {
        let mut m = mac();
        install_schedule(&mut m);
        m.enqueue_control(bcast_frame(1), TrafficClass::Broadcast)
            .unwrap();
        let action = m.plan_slot(Asn::new(0));
        assert!(matches!(action, SlotAction::Transmit { .. }));
        m.finish_slot(SlotResult::Transmitted { acked: None });
        assert_eq!(m.control_queue_len(), 0);
        assert_eq!(m.counters().broadcast_tx, 1);
    }

    #[test]
    fn rx_cell_listens_and_accepts_addressed_frame() {
        let mut m = mac();
        install_schedule(&mut m);
        let action = m.plan_slot(Asn::new(2));
        assert!(matches!(action, SlotAction::Listen { .. }));
        let incoming = Frame::new(
            PacketId::new(50),
            NodeId::new(2),
            Dest::Unicast(NodeId::new(1)),
            SimTime::ZERO,
            50,
        );
        let delivered = m.finish_slot(SlotResult::Listened(RxOutcome::Received(incoming)));
        assert_eq!(delivered.unwrap().payload, 50);
        assert_eq!(m.counters().rx_accepted, 1);
    }

    #[test]
    fn overheard_unicast_is_filtered() {
        let mut m = mac();
        install_schedule(&mut m);
        m.plan_slot(Asn::new(2));
        let incoming = Frame::new(
            PacketId::new(51),
            NodeId::new(2),
            Dest::Unicast(NodeId::new(9)), // not us
            SimTime::ZERO,
            51,
        );
        let delivered = m.finish_slot(SlotResult::Listened(RxOutcome::Received(incoming)));
        assert!(delivered.is_none());
        assert_eq!(m.counters().rx_overheard, 1);
    }

    #[test]
    fn idle_listen_and_collision_accounting() {
        let mut m = mac();
        install_schedule(&mut m);
        m.plan_slot(Asn::new(2));
        m.finish_slot(SlotResult::Listened(RxOutcome::Idle));
        m.plan_slot(Asn::new(6));
        m.finish_slot(SlotResult::Listened(RxOutcome::Collision(2)));
        let c = m.counters();
        assert_eq!(c.rx_idle_slots, 1);
        assert_eq!(c.rx_busy_slots, 1);
        assert_eq!(c.collisions_heard, 1);
    }

    #[test]
    fn duty_cycle_weights_idle_listens() {
        let mut m = mac();
        install_schedule(&mut m);
        // One idle listen (slot 2), one sleep (slot 3).
        m.plan_slot(Asn::new(2));
        m.finish_slot(SlotResult::Listened(RxOutcome::Idle));
        m.plan_slot(Asn::new(3));
        m.finish_slot(SlotResult::Slept);
        let dc = m.duty_cycle();
        let expected = m.config().idle_listen_fraction / 2.0;
        assert!((dc - expected).abs() < 1e-12, "dc {dc} ≠ {expected}");
    }

    #[test]
    fn control_beats_data_in_shared_cell() {
        let mut m = mac();
        let mut sf = Slotframe::new(2);
        sf.add(Cell::new(
            SlotOffset::new(0),
            ChannelOffset::new(0),
            CellOptions::TX_RX_SHARED,
            Dest::Unicast(NodeId::new(0)),
            CellClass::Shared,
        ));
        m.schedule_mut().add_slotframe(SlotframeHandle::new(0), sf);
        m.enqueue_data(data_frame(0, 1)).unwrap();
        m.enqueue_control(data_frame(0, 2), TrafficClass::ControlUnicast)
            .unwrap(); // unicast control (6P-like)
        match m.plan_slot(Asn::new(0)) {
            SlotAction::Transmit { frame, .. } => assert_eq!(frame.payload, 2),
            other => panic!("expected control frame first, got {other:?}"),
        }
        m.finish_slot(SlotResult::Transmitted { acked: Some(true) });
    }

    #[test]
    fn shared_cell_backoff_defers_transmission() {
        let mut m = mac();
        let mut sf = Slotframe::new(1);
        sf.add(Cell::new(
            SlotOffset::new(0),
            ChannelOffset::new(0),
            CellOptions::TX_RX_SHARED,
            Dest::Unicast(NodeId::new(0)),
            CellClass::Shared,
        ));
        m.schedule_mut().add_slotframe(SlotframeHandle::new(0), sf);
        m.enqueue_data(data_frame(0, 1)).unwrap();

        // Fail once to trigger a backoff window.
        let mut asn = Asn::new(0);
        loop {
            match m.plan_slot(asn) {
                SlotAction::Transmit { .. } => {
                    m.finish_slot(SlotResult::Transmitted { acked: Some(false) });
                    break;
                }
                _ => {
                    m.finish_slot(SlotResult::Listened(RxOutcome::Idle));
                }
            }
            asn = asn.next();
        }
        // The packet is requeued; subsequent shared cells may be skipped
        // while the backoff window drains, during which the node listens
        // instead of transmitting.
        let mut transmitted = 0;
        let mut listened = 0;
        for i in 1..40 {
            match m.plan_slot(Asn::new(i)) {
                SlotAction::Transmit { .. } => {
                    transmitted += 1;
                    m.finish_slot(SlotResult::Transmitted { acked: Some(true) });
                    break;
                }
                SlotAction::Listen { .. } => {
                    listened += 1;
                    m.finish_slot(SlotResult::Listened(RxOutcome::Idle));
                }
                SlotAction::Sleep => m.finish_slot(SlotResult::Slept).map_or((), |_| ()),
            }
        }
        assert_eq!(transmitted, 1, "packet eventually retransmitted");
        // With seed 42 the first failure draws a non-zero window, so at
        // least one listen slot happens before the retry.
        assert!(listened >= 1, "backoff should defer at least one slot");
    }

    #[test]
    fn queue_loss_counted_on_overflow() {
        let mut m = mac();
        for i in 0..m.data_queue_capacity() {
            m.enqueue_data(data_frame(0, i as u32)).unwrap();
        }
        assert!(m.enqueue_data(data_frame(0, 99)).is_err());
        assert_eq!(m.queue_loss(), 1);
    }

    #[test]
    fn drain_data_where_reroutes() {
        let mut m = mac();
        m.enqueue_data(data_frame(0, 1)).unwrap();
        m.enqueue_data(data_frame(5, 2)).unwrap();
        let to_old_parent = m.drain_data_where(|f| f.dst == Dest::Unicast(NodeId::new(0)));
        assert_eq!(to_old_parent.len(), 1);
        assert_eq!(m.data_queue_len(), 1);
    }

    #[test]
    fn next_active_asn_skips_idle_tx_cells() {
        let mut m = mac();
        install_schedule(&mut m);
        // Slots 0 (broadcast, Rx) and 2 (data Rx) are always active; the
        // dedicated Tx cell at slot 1 only matters once traffic is queued.
        assert_eq!(m.next_active_asn(Asn::new(0)), Some(Asn::new(0)));
        assert_eq!(m.next_active_asn(Asn::new(1)), Some(Asn::new(2)));
        assert_eq!(m.next_active_asn(Asn::new(3)), Some(Asn::new(4)));
        m.enqueue_data(data_frame(0, 7)).unwrap();
        assert_eq!(m.next_active_asn(Asn::new(1)), Some(Asn::new(1)));
        // A frame towards a peer with no matching cell does not wake slot 1.
        let mut m2 = mac();
        install_schedule(&mut m2);
        m2.enqueue_data(data_frame(9, 8)).unwrap();
        assert_eq!(m2.next_active_asn(Asn::new(1)), Some(Asn::new(2)));
    }

    #[test]
    fn next_active_asn_none_without_schedule() {
        let m = mac();
        assert_eq!(m.next_active_asn(Asn::ZERO), None);
    }

    #[test]
    fn next_active_agrees_with_plan_slot() {
        // In every slot that next_active_asn classifies as inactive,
        // plan_slot must sleep without side effects beyond the counters.
        let mut m = mac();
        install_schedule(&mut m);
        m.enqueue_data(data_frame(0, 1)).unwrap();
        for raw in 0..32u64 {
            let asn = Asn::new(raw);
            let active = m.next_active_asn(asn) == Some(asn);
            let action = m.plan_slot(asn);
            // No shared Tx cell carries the queued unicast frame here, so
            // backoff never blocks a transmission and "active" collapses
            // to "does not sleep".
            assert_eq!(active, !action.is_sleep(), "disagreement at {asn}");
            match action {
                SlotAction::Sleep => {
                    m.finish_slot(SlotResult::Slept);
                }
                SlotAction::Transmit { .. } => {
                    m.finish_slot(SlotResult::Transmitted { acked: Some(false) });
                }
                SlotAction::Listen { .. } => {
                    m.finish_slot(SlotResult::Listened(RxOutcome::Idle));
                }
            }
        }
    }

    #[test]
    fn account_skipped_matches_planned_sleeps_and_idle_listens() {
        let mut a = mac();
        install_schedule(&mut a);
        let mut b = a.clone();
        // a: plan/finish slots 2..6 — slot 2 is an idle listen (data Rx),
        // 3 is cell-free, 4 is the broadcast listen, 5 is an empty Tx.
        for raw in 2u64..6 {
            match a.plan_slot(Asn::new(raw)) {
                SlotAction::Listen { .. } => {
                    a.finish_slot(SlotResult::Listened(RxOutcome::Idle));
                }
                SlotAction::Sleep => {
                    a.finish_slot(SlotResult::Slept);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        // b: bulk-account the same four slots (2 listens, 2 sleeps) —
        // count_listen_slots must agree with what plan_slot did.
        let listens = b.count_listen_slots(Asn::new(2), Asn::new(6));
        assert_eq!(listens, 2);
        b.account_skipped(4, listens);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn count_listen_slots_cyclic_ranges() {
        let mut m = mac();
        install_schedule(&mut m);
        // Listens at offsets 0 (broadcast) and 2 (data Rx) of a 4-slot
        // frame.
        assert_eq!(m.count_listen_slots(Asn::new(0), Asn::new(4)), 2);
        assert_eq!(m.count_listen_slots(Asn::new(0), Asn::new(40)), 20);
        assert_eq!(m.count_listen_slots(Asn::new(1), Asn::new(3)), 1);
        assert_eq!(m.count_listen_slots(Asn::new(3), Asn::new(5)), 1);
        assert_eq!(m.count_listen_slots(Asn::new(3), Asn::new(9)), 3);
        assert_eq!(m.count_listen_slots(Asn::new(5), Asn::new(5)), 0);
        // Empty schedule: never listens.
        let mut empty = mac();
        assert_eq!(empty.count_listen_slots(Asn::new(0), Asn::new(100)), 0);
    }

    #[test]
    fn passive_listener_wakes_only_for_traffic() {
        let mut m = mac();
        install_schedule(&mut m);
        assert!(m.is_passive_listener(), "single slotframe is passive");
        // Queues empty: the engine never needs to wake it for the MAC.
        assert_eq!(m.next_radio_wake(Asn::new(0)), None);
        // Queued data towards the dedicated Tx peer: wake at slot 1.
        m.enqueue_data(data_frame(0, 7)).unwrap();
        assert_eq!(m.next_radio_wake(Asn::new(0)), Some(Asn::new(1)));
        assert_eq!(m.next_radio_wake(Asn::new(2)), Some(Asn::new(5)));
        // A frame no Tx cell matches never wakes the node.
        let mut m2 = mac();
        install_schedule(&mut m2);
        m2.enqueue_data(data_frame(9, 8)).unwrap();
        assert_eq!(m2.next_radio_wake(Asn::new(0)), None);
    }

    #[test]
    fn listen_channel_matches_plan_slot() {
        let mut m = mac();
        install_schedule(&mut m);
        for raw in 0..8u64 {
            let asn = Asn::new(raw);
            let probed = m.listen_channel_at(asn);
            match m.plan_slot(asn) {
                SlotAction::Listen { channel, .. } => {
                    assert_eq!(probed, Some(channel), "slot {raw}");
                    m.finish_slot(SlotResult::Listened(RxOutcome::Idle));
                }
                SlotAction::Sleep => {
                    assert_eq!(probed, None, "slot {raw}");
                    m.finish_slot(SlotResult::Slept);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    #[test]
    fn multi_slotframe_schedule_is_passive_and_indexed_exactly() {
        // A second slotframe of coprime length no longer demotes the
        // node to always-wake: the cyclic-union index covers it.
        let mut m = mac();
        install_schedule(&mut m); // 4-slot frame, listens at offsets 0, 2
        let mut sf2 = Slotframe::new(7);
        sf2.add(Cell::data_rx(
            SlotOffset::new(5),
            ChannelOffset::new(2),
            NodeId::new(3),
        ));
        m.schedule_mut().add_slotframe(SlotframeHandle::new(1), sf2);
        assert!(m.is_passive_listener(), "multi-slotframe is passive now");
        // Queues empty ⇒ the engine never wakes it on the MAC's account.
        assert_eq!(m.next_radio_wake(Asn::new(0)), None);

        // The index must agree with plan_slot over a full hyperperiod
        // (lcm(4,7) = 28), both on channels and on counts.
        let mut reference = m.clone();
        let mut listens = 0u64;
        for raw in 0..56u64 {
            let asn = Asn::new(raw);
            let probed = m.listen_channel_at(asn);
            match reference.plan_slot(asn) {
                SlotAction::Listen { channel, .. } => {
                    assert_eq!(probed, Some(channel), "slot {raw}");
                    listens += 1;
                    reference.finish_slot(SlotResult::Listened(RxOutcome::Idle));
                }
                SlotAction::Sleep => {
                    assert_eq!(probed, None, "slot {raw}");
                    reference.finish_slot(SlotResult::Slept);
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(m.count_listen_slots(Asn::new(0), Asn::new(56)), listens);
        // Bulk accounting matches the slot-by-slot reference exactly.
        m.account_skipped(56, listens);
        assert_eq!(m.counters(), reference.counters());
    }

    #[test]
    fn listen_miss_memo_is_order_independent() {
        // The listen-miss memo inside the wake cache is an interval, not
        // a cursor: probing slots in ascending, descending or strided
        // order must give identical answers. A fresh clone per query is
        // the memo-free reference.
        let mut m = mac();
        install_schedule(&mut m); // 4-slot frame, listens at offsets 0, 2
        let mut sf2 = Slotframe::new(7);
        sf2.add(Cell::data_rx(
            SlotOffset::new(5),
            ChannelOffset::new(2),
            NodeId::new(3),
        ));
        m.schedule_mut().add_slotframe(SlotframeHandle::new(1), sf2);

        let expected: Vec<_> = (0..56u64)
            .map(|raw| m.clone().listen_channel_at(Asn::new(raw)))
            .collect();
        let ascending: Vec<_> = (0..56u64)
            .map(|raw| m.listen_channel_at(Asn::new(raw)))
            .collect();
        assert_eq!(ascending, expected);
        let mut descending: Vec<_> = (0..56u64)
            .rev()
            .map(|raw| m.listen_channel_at(Asn::new(raw)))
            .collect();
        descending.reverse();
        assert_eq!(descending, expected);
        for stride in [3u64, 5, 11] {
            for raw in (0..56).step_by(stride as usize) {
                assert_eq!(
                    m.listen_channel_at(Asn::new(raw)),
                    expected[raw as usize],
                    "stride {stride}, slot {raw}"
                );
            }
        }
    }

    #[test]
    fn beyond_caps_schedule_falls_back_to_always_wake() {
        // Five Rx-bearing slotframes exceed the union's chain cap; the
        // node degrades to the pre-index behavior: woken for every
        // active slot, no skippable listens.
        let mut m = mac();
        install_schedule(&mut m);
        for i in 1..5u8 {
            let mut sf = Slotframe::new(4 + i as u16);
            sf.add(Cell::data_rx(
                SlotOffset::new(1),
                ChannelOffset::new(i),
                NodeId::new(3),
            ));
            m.schedule_mut().add_slotframe(SlotframeHandle::new(i), sf);
        }
        assert!(!m.is_passive_listener());
        assert_eq!(
            m.next_radio_wake(Asn::new(0)),
            m.next_active_asn(Asn::new(0))
        );
        assert_eq!(m.count_listen_slots(Asn::new(0), Asn::new(64)), 0);
        assert_eq!(m.listen_channel_at(Asn::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "finish_slot")]
    fn skipping_finish_slot_panics() {
        let mut m = mac();
        install_schedule(&mut m);
        m.enqueue_data(data_frame(0, 7)).unwrap();
        let _ = m.plan_slot(Asn::new(1));
        let _ = m.plan_slot(Asn::new(2));
    }
}
