//! TSCH shared-cell backoff (IEEE 802.15.4e §6.2.5.3).
//!
//! Dedicated cells never back off — they are contention-free by
//! construction. Shared cells use a slotted CSMA/CA variant: after a
//! failed transmission in a shared cell the node skips a random number of
//! *shared* cells drawn from `[0, 2^BE − 1]`, with the backoff exponent BE
//! doubling per failure between `min_be` and `max_be`.

use gtt_sim::Pcg32;

/// Exponential backoff state for shared-cell access.
///
/// # Example
///
/// ```
/// use gtt_mac::SharedCellBackoff;
/// use gtt_sim::Pcg32;
///
/// let mut bo = SharedCellBackoff::new(1, 5);
/// let mut rng = Pcg32::new(1);
/// assert!(bo.may_transmit()); // fresh: no backoff pending
/// bo.on_failure(&mut rng);    // collision ⇒ draw a window
/// // …the node now skips up to 2^BE−1 shared cells…
/// bo.on_success();            // delivery resets BE
/// assert!(bo.may_transmit());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedCellBackoff {
    min_be: u8,
    max_be: u8,
    be: u8,
    /// Shared cells still to skip before the next attempt.
    window: u32,
}

impl SharedCellBackoff {
    /// Creates a backoff with the given exponent bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min_be > max_be` or `max_be > 16`.
    pub fn new(min_be: u8, max_be: u8) -> Self {
        assert!(min_be <= max_be, "min_be must not exceed max_be");
        assert!(max_be <= 16, "max_be above 16 would overflow the window");
        SharedCellBackoff {
            min_be,
            max_be,
            be: min_be,
            window: 0,
        }
    }

    /// The 802.15.4 defaults (BE in [1, 5]) used by Contiki-NG's TSCH.
    pub fn standard() -> Self {
        SharedCellBackoff::new(1, 5)
    }

    /// Current backoff exponent.
    pub fn exponent(&self) -> u8 {
        self.be
    }

    /// Shared cells remaining to skip.
    pub fn pending(&self) -> u32 {
        self.window
    }

    /// True if the node may transmit in the next shared cell.
    pub fn may_transmit(&self) -> bool {
        self.window == 0
    }

    /// Called when a shared cell passes without this node transmitting in
    /// it (the cell "consumed" one unit of the backoff window).
    pub fn on_shared_cell_skipped(&mut self) {
        self.window = self.window.saturating_sub(1);
    }

    /// Bulk form of [`SharedCellBackoff::on_shared_cell_skipped`]: `n`
    /// qualifying shared cells passed while the node provably slept (the
    /// event-driven engine settles skipped ranges in closed form instead
    /// of waking per cell).
    pub fn on_shared_cells_skipped(&mut self, n: u32) {
        self.window = self.window.saturating_sub(n);
    }

    /// Called after a successful (acknowledged) shared-cell transmission:
    /// resets the exponent and clears any pending window.
    pub fn on_success(&mut self) {
        self.be = self.min_be;
        self.window = 0;
    }

    /// Called after a failed shared-cell transmission: doubles the
    /// exponent (capped) and draws a fresh window from `[0, 2^BE − 1]`.
    pub fn on_failure(&mut self, rng: &mut Pcg32) {
        self.be = (self.be + 1).min(self.max_be);
        let span = 1u32 << self.be;
        self.window = rng.gen_range_u32(0, span);
    }

    /// Resets to the freshly-constructed state.
    pub fn reset(&mut self) {
        self.be = self.min_be;
        self.window = 0;
    }
}

impl Default for SharedCellBackoff {
    fn default() -> Self {
        SharedCellBackoff::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_backoff_transmits() {
        let bo = SharedCellBackoff::standard();
        assert!(bo.may_transmit());
        assert_eq!(bo.pending(), 0);
        assert_eq!(bo.exponent(), 1);
    }

    #[test]
    fn failures_grow_exponent_to_cap() {
        let mut bo = SharedCellBackoff::new(1, 3);
        let mut rng = Pcg32::new(5);
        for _ in 0..10 {
            bo.on_failure(&mut rng);
        }
        assert_eq!(bo.exponent(), 3, "exponent capped at max_be");
    }

    #[test]
    fn window_is_within_bounds() {
        let mut rng = Pcg32::new(11);
        for _ in 0..200 {
            let mut bo = SharedCellBackoff::new(2, 2);
            bo.on_failure(&mut rng);
            assert!(bo.pending() < 8, "window must be < 2^3 after one failure");
        }
    }

    #[test]
    fn skipping_cells_drains_window() {
        let mut bo = SharedCellBackoff::new(4, 5);
        let mut rng = Pcg32::new(3);
        // Draw until we get a non-zero window (overwhelmingly likely).
        while {
            bo.reset();
            bo.on_failure(&mut rng);
            bo.pending() == 0
        } {}
        let start = bo.pending();
        bo.on_shared_cell_skipped();
        assert_eq!(bo.pending(), start - 1);
        for _ in 0..start {
            bo.on_shared_cell_skipped();
        }
        assert!(bo.may_transmit());
        bo.on_shared_cell_skipped(); // extra skips are harmless
        assert_eq!(bo.pending(), 0);
    }

    #[test]
    fn success_resets() {
        let mut bo = SharedCellBackoff::standard();
        let mut rng = Pcg32::new(9);
        bo.on_failure(&mut rng);
        bo.on_failure(&mut rng);
        bo.on_success();
        assert!(bo.may_transmit());
        assert_eq!(bo.exponent(), 1);
    }

    #[test]
    #[should_panic(expected = "min_be must not exceed")]
    fn inverted_bounds_rejected() {
        let _ = SharedCellBackoff::new(6, 3);
    }
}
