//! Standard-derived airtime and frame-size constants (IEEE 802.15.4
//! O-QPSK PHY at 2.4 GHz, §12, and the TSCH timeslot template of
//! §6.5.4.2 / Table 8-96).
//!
//! The MAC model itself works in whole slots — it never needed byte
//! counts — but the wire codec (`gtt-frame`) makes frame sizes real,
//! and these constants pin the slot template against them: every
//! encodable MPDU must fit `aMaxPhyPacketSize`, its airtime must fit
//! `macTsMaxTx`, and the whole Tx + ACK exchange must fit the
//! simulator's 15 ms slot ([`MacConfig::paper_default`] — deliberately
//! longer than the standard's default 10 ms template, which is why EBs
//! advertise a non-default timeslot template ID; see
//! `gtt_frame::GTT_TIMESLOT_TEMPLATE`). The cross-crate validation
//! test lives in `crates/frame/tests/airtime.rs`, next to the encoder
//! whose lengths it checks; adding these constants changes no report
//! bytes.
//!
//! [`MacConfig::paper_default`]: crate::MacConfig::paper_default

/// Microseconds to put one byte on the air: 250 kbit/s O-QPSK
/// (2.4 GHz PHY) = 62.5 ksymbol/s, 2 symbols per byte, 16 µs/symbol.
pub const US_PER_BYTE: u32 = 32;

/// PHY overhead preceding the MPDU: 4 preamble + 1 SFD + 1 PHR bytes
/// (the synchronization header and length field of §12.1).
pub const PHY_OVERHEAD_BYTES: u32 = 6;

/// `aMaxPhyPacketSize`: the largest MPDU the PHY carries.
pub const MAX_MPDU_BYTES: u32 = 127;

/// The immediate ACK MPDU: 2 FCF + 1 sequence number + 2 FCS.
pub const ACK_MPDU_BYTES: u32 = 5;

/// Airtime of an `mpdu_bytes`-byte frame, PHY header included.
pub const fn airtime_us(mpdu_bytes: u32) -> u32 {
    (PHY_OVERHEAD_BYTES + mpdu_bytes) * US_PER_BYTE
}

/// `macTsTxOffset` of the default template: transmission starts
/// 2120 µs into the slot (the receiver's guard time straddles it).
pub const TS_TX_OFFSET_US: u32 = 2120;

/// `macTsMaxTx`: the airtime budget for the data frame — exactly the
/// airtime of a maximum-size MPDU, `(127 + 6) × 32 = 4256` µs.
pub const TS_MAX_TX_US: u32 = airtime_us(MAX_MPDU_BYTES);

/// `macTsTxAckDelay`: gap between end of frame and start of ACK.
pub const TS_TX_ACK_DELAY_US: u32 = 1000;

/// `macTsMaxAck` of the default template: the ACK airtime budget.
/// 2400 µs covers enhanced ACKs up to 69 bytes; this simulator's
/// immediate ACK needs only [`airtime_us`]`(`[`ACK_MPDU_BYTES`]`)` =
/// 352 µs of it.
pub const TS_MAX_ACK_US: u32 = 2400;

/// Worst-case busy time of a transmit slot: offset, full-size frame,
/// turnaround, full ACK budget — 9776 µs, inside even the standard's
/// 10 ms default slot and comfortably inside the paper's 15 ms one.
pub const TS_BUSY_US: u32 = TS_TX_OFFSET_US + TS_MAX_TX_US + TS_TX_ACK_DELAY_US + TS_MAX_ACK_US;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MacConfig;

    #[test]
    fn derived_values_match_the_standard_tables() {
        // Table 8-96 lists macTsMaxTx = 4256 µs; it must fall out of
        // the byte math, not be asserted independently.
        assert_eq!(TS_MAX_TX_US, 4256);
        assert_eq!(airtime_us(ACK_MPDU_BYTES), 352);
        assert_eq!(TS_BUSY_US, 9776);
        assert!(airtime_us(ACK_MPDU_BYTES) <= TS_MAX_ACK_US);
    }

    #[test]
    fn the_template_fits_the_papers_slot() {
        let config = MacConfig::paper_default();
        let slot_us = u32::try_from(config.slot_duration.as_micros()).unwrap();
        assert!(
            TS_BUSY_US <= slot_us,
            "worst-case Tx slot ({TS_BUSY_US} µs) overruns the {slot_us} µs slot"
        );
        // The idle-listen fraction models the receiver guard window
        // around TsTxOffset; it must stay within the slot's idle
        // portion or the duty-cycle accounting would double-count.
        let guard_us = (config.idle_listen_fraction * slot_us as f64) as u32;
        assert!(guard_us < slot_us - TS_MAX_TX_US);
    }
}
