//! Absolute slot numbers and slot offsets.

use std::fmt;
use std::ops::Add;

use gtt_sim::{SimDuration, SimTime};

/// The TSCH Absolute Slot Number: slots elapsed since network start.
///
/// Every node in a synchronized TSCH network agrees on the ASN; it drives
/// channel hopping and slotframe phase. The standard carries it in 5 bytes;
/// we use a `u64` and never wrap.
///
/// # Example
///
/// ```
/// use gtt_mac::Asn;
/// let asn = Asn::new(70);
/// assert_eq!(asn.slot_offset(32).raw(), 6); // 70 mod 32
/// assert_eq!(asn.next().raw(), 71);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(u64);

/// An offset within a slotframe (`0 ≤ offset < slotframe length`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SlotOffset(u16);

impl Asn {
    /// The first slot of the network.
    pub const ZERO: Asn = Asn(0);

    /// Creates an ASN from a raw slot count.
    pub const fn new(raw: u64) -> Self {
        Asn(raw)
    }

    /// Raw slot count since network start.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The following slot.
    pub const fn next(self) -> Asn {
        Asn(self.0 + 1)
    }

    /// Position of this slot within a slotframe of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn slot_offset(self, len: u16) -> SlotOffset {
        assert!(len > 0, "slotframe length must be positive");
        SlotOffset((self.0 % len as u64) as u16)
    }

    /// Simulation time at which this slot starts for the given slot length.
    pub fn start_time(self, slot_duration: SimDuration) -> SimTime {
        SimTime::ZERO + slot_duration * self.0
    }

    /// The ASN in progress at `time` for the given slot length.
    ///
    /// # Panics
    ///
    /// Panics if `slot_duration` is zero.
    pub fn at_time(time: SimTime, slot_duration: SimDuration) -> Asn {
        assert!(!slot_duration.is_zero(), "slot duration must be positive");
        Asn(time.saturating_since(SimTime::ZERO).as_micros() / slot_duration.as_micros())
    }

    /// The first slot whose *start* is at or after `time` — the slot in
    /// which a slot-synchronous loop first observes a deadline at `time`.
    /// Used by the event-driven engine to convert timer deadlines into
    /// wake-up slots.
    ///
    /// # Panics
    ///
    /// Panics if `slot_duration` is zero.
    pub fn at_or_after(time: SimTime, slot_duration: SimDuration) -> Asn {
        assert!(!slot_duration.is_zero(), "slot duration must be positive");
        let us = time.saturating_since(SimTime::ZERO).as_micros();
        let dur = slot_duration.as_micros();
        Asn(us.div_ceil(dur))
    }
}

impl SlotOffset {
    /// Creates a slot offset.
    pub const fn new(raw: u16) -> Self {
        SlotOffset(raw)
    }

    /// Raw offset value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// The offset as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl Add<u64> for Asn {
    type Output = Asn;
    fn add(self, rhs: u64) -> Asn {
        Asn(self.0 + rhs)
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asn{}", self.0)
    }
}

impl fmt::Display for SlotOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

impl From<u16> for SlotOffset {
    fn from(raw: u16) -> Self {
        SlotOffset(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_offset_wraps() {
        assert_eq!(Asn::new(0).slot_offset(32).raw(), 0);
        assert_eq!(Asn::new(31).slot_offset(32).raw(), 31);
        assert_eq!(Asn::new(32).slot_offset(32).raw(), 0);
        assert_eq!(Asn::new(100).slot_offset(7).raw(), 2);
    }

    #[test]
    fn time_round_trip() {
        let slot = SimDuration::from_millis(15);
        let asn = Asn::new(1234);
        let t = asn.start_time(slot);
        assert_eq!(Asn::at_time(t, slot), asn);
        // Mid-slot times still resolve to the same ASN.
        let mid = t + SimDuration::from_millis(7);
        assert_eq!(Asn::at_time(mid, slot), asn);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Asn::ZERO + 5, Asn::new(5));
        assert_eq!(Asn::new(5).next(), Asn::new(6));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_length_slotframe_panics() {
        let _ = Asn::new(1).slot_offset(0);
    }

    #[test]
    fn display() {
        assert_eq!(Asn::new(9).to_string(), "asn9");
        assert_eq!(SlotOffset::new(3).to_string(), "ts3");
    }
}
