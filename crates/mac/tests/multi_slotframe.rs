//! Orchestra-style multi-slotframe behaviour of the MAC: priority
//! between slotframes, EB-cell traffic-class isolation, and hopping
//! interactions across frames of different lengths.

use gtt_mac::{
    Asn, Cell, CellClass, CellOptions, ChannelOffset, HoppingSequence, MacConfig, SlotAction,
    SlotOffset, SlotResult, Slotframe, SlotframeHandle, TrafficClass, TschMac,
};
use gtt_net::{Dest, Frame, NodeId, PacketId, RxOutcome};
use gtt_sim::{Pcg32, SimTime};

type Mac = TschMac<&'static str>;

fn mac() -> Mac {
    TschMac::new(
        NodeId::new(1),
        MacConfig::paper_default(),
        HoppingSequence::paper_default(),
        Pcg32::new(5),
    )
}

fn install_orchestra_like(m: &mut Mac) {
    // EB slotframe (handle 0, length 5): Tx EB cell at slot 0.
    let mut eb = Slotframe::new(5);
    eb.add(Cell::new(
        SlotOffset::new(0),
        ChannelOffset::new(0),
        CellOptions::TX,
        Dest::Broadcast,
        CellClass::Eb,
    ));
    m.schedule_mut().add_slotframe(SlotframeHandle::new(0), eb);

    // Common slotframe (handle 1, length 3): shared slot 0.
    let mut common = Slotframe::new(3);
    common.add(Cell::new(
        SlotOffset::new(0),
        ChannelOffset::new(1),
        CellOptions::TX_RX_SHARED,
        Dest::Broadcast,
        CellClass::Broadcast,
    ));
    m.schedule_mut()
        .add_slotframe(SlotframeHandle::new(1), common);

    // Unicast slotframe (handle 2, length 2): Tx to n0 at slot 1.
    let mut unicast = Slotframe::new(2);
    unicast.add(Cell::new(
        SlotOffset::new(1),
        ChannelOffset::new(2),
        CellOptions::TX,
        Dest::Unicast(NodeId::new(0)),
        CellClass::Data,
    ));
    m.schedule_mut()
        .add_slotframe(SlotframeHandle::new(2), unicast);
}

fn eb_frame() -> Frame<&'static str> {
    Frame::new(
        PacketId::new(1),
        NodeId::new(1),
        Dest::Broadcast,
        SimTime::ZERO,
        "eb",
    )
}

fn dio_frame() -> Frame<&'static str> {
    Frame::new(
        PacketId::new(2),
        NodeId::new(1),
        Dest::Broadcast,
        SimTime::ZERO,
        "dio",
    )
}

fn data_frame() -> Frame<&'static str> {
    Frame::new(
        PacketId::new(3),
        NodeId::new(1),
        Dest::Unicast(NodeId::new(0)),
        SimTime::ZERO,
        "data",
    )
}

#[test]
fn eb_cells_only_carry_ebs() {
    let mut m = mac();
    install_orchestra_like(&mut m);
    // A DIO is queued; ASN 0 hits the EB cell (slot 0 of frame 0) and the
    // common cell (slot 0 of frame 1). The EB cell must NOT carry the
    // DIO; the common cell (lower priority but matching) does.
    m.enqueue_control(dio_frame(), TrafficClass::Broadcast)
        .unwrap();
    match m.plan_slot(Asn::new(0)) {
        SlotAction::Transmit { cell, frame, .. } => {
            assert_eq!(cell.class, CellClass::Broadcast, "DIO uses the common cell");
            assert_eq!(frame.payload, "dio");
        }
        other => panic!("expected Transmit, got {other:?}"),
    }
    m.finish_slot(SlotResult::Transmitted { acked: None });
}

#[test]
fn eb_beats_dio_for_the_eb_cell() {
    let mut m = mac();
    install_orchestra_like(&mut m);
    m.enqueue_control(eb_frame(), TrafficClass::Eb).unwrap();
    m.enqueue_control(dio_frame(), TrafficClass::Broadcast)
        .unwrap();
    // ASN 0: the EB slotframe has priority (handle 0) and its cell takes
    // the EB frame.
    match m.plan_slot(Asn::new(0)) {
        SlotAction::Transmit { cell, frame, .. } => {
            assert_eq!(cell.class, CellClass::Eb);
            assert_eq!(frame.payload, "eb");
        }
        other => panic!("expected EB Transmit, got {other:?}"),
    }
    m.finish_slot(SlotResult::Transmitted { acked: None });
}

#[test]
fn unicast_data_waits_for_its_own_slotframe_cell() {
    let mut m = mac();
    install_orchestra_like(&mut m);
    m.enqueue_data(data_frame()).unwrap();
    // ASN 0: EB cell (no EB queued) + common cell. The common
    // (Broadcast-class) cell does not carry data, so the node listens.
    match m.plan_slot(Asn::new(0)) {
        SlotAction::Listen { cell, .. } => {
            assert_eq!(cell.class, CellClass::Broadcast);
        }
        other => panic!("expected Listen, got {other:?}"),
    }
    m.finish_slot(SlotResult::Listened(RxOutcome::Idle));
    // ASN 1: the unicast Tx cell (slot 1 of the 2-slot frame) fires.
    match m.plan_slot(Asn::new(1)) {
        SlotAction::Transmit { cell, frame, .. } => {
            assert_eq!(cell.class, CellClass::Data);
            assert_eq!(frame.payload, "data");
        }
        other => panic!("expected data Transmit, got {other:?}"),
    }
    m.finish_slot(SlotResult::Transmitted { acked: Some(true) });
}

#[test]
fn different_length_slotframes_realign_at_lcm() {
    let mut m = mac();
    install_orchestra_like(&mut m);
    // Frames of length 5, 3, 2 ⇒ all three schedule slot 0 again at
    // ASN 30 (lcm). Verify via the candidate cells.
    let cells_at = |m: &Mac, asn: u64| m.schedule().cells_at(Asn::new(asn)).len();
    assert_eq!(cells_at(&m, 0), 2, "EB + common at ASN 0");
    assert_eq!(cells_at(&m, 30), 2, "same alignment at the LCM");
    // ASN 1: only the unicast Tx cell (1 % 2 == 1).
    assert_eq!(cells_at(&m, 1), 1);
    let _ = &mut m;
}

#[test]
fn hopping_moves_physical_channel_across_slotframe_cycles() {
    let m = mac();
    let hop = m.hopping();
    // A cell at (slot 1, offset 2) of a 2-slot frame occurs at ASN 1, 3,
    // 5, … — over 8 occurrences it must visit every channel of the
    // sequence exactly once (2 and 8 share a factor of 2, ASN step 2 ⇒
    // it visits 4 distinct channels twice per 16 slots; just assert > 1
    // distinct channel, i.e. the offset really hops).
    let mut seen = std::collections::BTreeSet::new();
    for k in 0..8u64 {
        let asn = Asn::new(1 + 2 * k);
        seen.insert(hop.channel(asn, ChannelOffset::new(2)).number());
    }
    assert!(seen.len() > 1, "cells must hop across cycles, saw {seen:?}");
}

#[test]
fn control_queue_overflow_is_graceful() {
    let mut m = mac();
    install_orchestra_like(&mut m);
    let cap = m.config().control_queue_capacity;
    for _ in 0..cap {
        m.enqueue_control(dio_frame(), TrafficClass::Broadcast)
            .unwrap();
    }
    assert!(
        m.enqueue_control(eb_frame(), TrafficClass::Eb).is_err(),
        "overflow hands the frame back"
    );
    assert_eq!(m.control_queue_len(), cap);
}
