//! # gtt-sixtop — the 6top (6P) protocol sublayer
//!
//! The IETF 6TiSCH stack updates TSCH schedules through pairwise 6P
//! transactions (RFC 8480). GT-TSCH is a *scheduling function* (SF) riding
//! on 6P: it issues `ADD`/`DELETE` requests to (de)allocate unicast data
//! cells and introduces a new command, **`ASK-CHANNEL` (code 0x0A)**, with
//! which a node asks its parent which channel it may use towards its own
//! children (paper §III, Fig. 4).
//!
//! This crate provides:
//!
//! * [`SixpMessage`] and its [`SixpBody`] — typed 6P messages with a
//!   binary wire format ([`SixpMessage::encode`] / [`SixpMessage::decode`])
//!   mirroring the RFC 8480 header layout,
//! * [`SixtopLayer`] — the per-node transaction engine: one outstanding
//!   transaction per neighbor, per-neighbor sequence numbers, timeout and
//!   retry handling,
//! * [`CellSpec`] — (slot offset, channel offset) pairs carried in
//!   ADD/DELETE cell lists.
//!
//! # Example
//!
//! ```
//! use gtt_net::NodeId;
//! use gtt_sixtop::{CellSpec, SixpBody, SixpMessage, SixtopConfig, SixtopLayer};
//! use gtt_sim::SimTime;
//!
//! let mut child = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
//! let msg = child
//!     .start_request(
//!         NodeId::new(1),
//!         SixpBody::AddRequest {
//!             kind: gtt_sixtop::SixpCellKind::Data,
//!             num_cells: 2,
//!             cells: vec![CellSpec::new(4, 1), CellSpec::new(9, 1)],
//!         },
//!         SimTime::ZERO,
//!     )
//!     .expect("no transaction in flight yet");
//! let bytes = msg.encode();
//! assert_eq!(SixpMessage::decode(&bytes).unwrap(), msg);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layer;
pub mod messages;

pub use layer::{SixtopConfig, SixtopEvent, SixtopLayer};
pub use messages::{
    CellSpec, ReturnCode, SixpBody, SixpCellKind, SixpDecodeError, SixpMessage, SIXP_SFID_GT_TSCH,
};
