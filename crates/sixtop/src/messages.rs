//! 6P message types and wire format.
//!
//! The wire layout follows RFC 8480 §3.2 (and the paper's Fig. 4 for
//! `ASK-CHANNEL`): a common header of Version/Type, Code, SFID and SeqNum,
//! followed by a command-specific body. Encoding exists so the frame-size
//! accounting and the round-trip property tests exercise a real codec, not
//! just Rust structs.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// The Scheduling Function Identifier GT-TSCH registers with 6P.
pub const SIXP_SFID_GT_TSCH: u8 = 0xA1;

/// 6P protocol version implemented (RFC 8480 defines version 0).
const SIXP_VERSION: u8 = 0;

/// Message type nibble (RFC 8480 §3.2.1).
const TYPE_REQUEST: u8 = 0;
const TYPE_RESPONSE: u8 = 1;

/// Command / return codes (RFC 8480 §3.2.2–3.2.3, plus the paper's 0x0A).
const CMD_ADD: u8 = 0x01;
const CMD_DELETE: u8 = 0x02;
const CMD_CLEAR: u8 = 0x05;
const CMD_ASK_CHANNEL: u8 = 0x0A;

/// Which kind of cells an ADD/DELETE transaction negotiates.
///
/// RFC 8480 carries a CellOptions field in ADD/DELETE requests; this
/// reproduction needs only the distinction GT-TSCH makes in §IV between
/// *Unicast-6P* timeslots (rule 2) and *Unicast-Data* timeslots (rule 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SixpCellKind {
    /// Unicast-Data timeslots (child → parent data forwarding).
    Data,
    /// Unicast-6P timeslots (the reliable channel for 6P itself).
    SixP,
}

impl SixpCellKind {
    fn to_wire(self) -> u8 {
        match self {
            SixpCellKind::Data => 0,
            SixpCellKind::SixP => 1,
        }
    }

    fn from_wire(raw: u8) -> Option<Self> {
        match raw {
            0 => Some(SixpCellKind::Data),
            1 => Some(SixpCellKind::SixP),
            _ => None,
        }
    }
}

impl fmt::Display for SixpCellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SixpCellKind::Data => f.write_str("data"),
            SixpCellKind::SixP => f.write_str("6p"),
        }
    }
}

/// A (slot offset, channel offset) pair in a 6P CellList.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellSpec {
    /// Slot offset within the slotframe.
    pub slot: u16,
    /// Channel offset.
    pub channel_offset: u8,
}

impl CellSpec {
    /// Creates a cell spec.
    pub const fn new(slot: u16, channel_offset: u8) -> Self {
        CellSpec {
            slot,
            channel_offset,
        }
    }
}

impl fmt::Display for CellSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.slot, self.channel_offset)
    }
}

/// 6P response return codes (subset of RFC 8480 Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReturnCode {
    /// Operation succeeded.
    Success,
    /// Generic error.
    Err,
    /// Sequence number mismatch (peer reset).
    ErrSeqnum,
    /// Requester is busy (transaction already in flight).
    ErrBusy,
    /// No cells available to satisfy the request.
    ErrNoCells,
}

impl ReturnCode {
    fn to_wire(self) -> u8 {
        match self {
            ReturnCode::Success => 0x00,
            ReturnCode::Err => 0x01,
            ReturnCode::ErrSeqnum => 0x07,
            ReturnCode::ErrBusy => 0x08,
            ReturnCode::ErrNoCells => 0x0B,
        }
    }

    fn from_wire(raw: u8) -> Option<Self> {
        Some(match raw {
            0x00 => ReturnCode::Success,
            0x01 => ReturnCode::Err,
            0x07 => ReturnCode::ErrSeqnum,
            0x08 => ReturnCode::ErrBusy,
            0x0B => ReturnCode::ErrNoCells,
            _ => return None,
        })
    }

    /// True for [`ReturnCode::Success`].
    pub fn is_success(self) -> bool {
        self == ReturnCode::Success
    }
}

impl fmt::Display for ReturnCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReturnCode::Success => "RC_SUCCESS",
            ReturnCode::Err => "RC_ERR",
            ReturnCode::ErrSeqnum => "RC_ERR_SEQNUM",
            ReturnCode::ErrBusy => "RC_ERR_BUSY",
            ReturnCode::ErrNoCells => "RC_ERR_NOCELLS",
        };
        f.write_str(s)
    }
}

/// The command-specific part of a 6P message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SixpBody {
    /// Request to add `num_cells` Tx cells, proposing candidates.
    AddRequest {
        /// What the cells will carry.
        kind: SixpCellKind,
        /// Number of cells the child needs (the game solution `l_tx_i`).
        num_cells: u16,
        /// Candidate cells proposed by the requester.
        cells: Vec<CellSpec>,
    },
    /// Response carrying the accepted subset of the proposal.
    AddResponse {
        /// Outcome.
        code: ReturnCode,
        /// Cells the responder actually reserved.
        cells: Vec<CellSpec>,
    },
    /// Request to delete the listed cells.
    DeleteRequest {
        /// What the cells carried.
        kind: SixpCellKind,
        /// Cells to release.
        cells: Vec<CellSpec>,
    },
    /// Response confirming the deletion.
    DeleteResponse {
        /// Outcome.
        code: ReturnCode,
        /// Cells released.
        cells: Vec<CellSpec>,
    },
    /// Wipe all cells scheduled with the peer (RFC 8480 CLEAR).
    ClearRequest,
    /// Response to CLEAR.
    ClearResponse {
        /// Outcome.
        code: ReturnCode,
    },
    /// The paper's ASK-CHANNEL request (Fig. 4a): "which channel may I
    /// use towards my children?"
    AskChannelRequest,
    /// The paper's ASK-CHANNEL response (Fig. 4b) carrying the allocated
    /// channel offset.
    AskChannelResponse {
        /// Outcome.
        code: ReturnCode,
        /// Channel offset `f_{i,cs_i}` allocated to the requester.
        channel_offset: u8,
    },
}

impl SixpBody {
    /// True for the request variants.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            SixpBody::AddRequest { .. }
                | SixpBody::DeleteRequest { .. }
                | SixpBody::ClearRequest
                | SixpBody::AskChannelRequest
        )
    }

    fn command_code(&self) -> u8 {
        match self {
            SixpBody::AddRequest { .. } | SixpBody::AddResponse { .. } => CMD_ADD,
            SixpBody::DeleteRequest { .. } | SixpBody::DeleteResponse { .. } => CMD_DELETE,
            SixpBody::ClearRequest | SixpBody::ClearResponse { .. } => CMD_CLEAR,
            SixpBody::AskChannelRequest | SixpBody::AskChannelResponse { .. } => CMD_ASK_CHANNEL,
        }
    }

    /// The response's return code, if this is a response.
    pub fn return_code(&self) -> Option<ReturnCode> {
        match self {
            SixpBody::AddResponse { code, .. }
            | SixpBody::DeleteResponse { code, .. }
            | SixpBody::ClearResponse { code }
            | SixpBody::AskChannelResponse { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A complete 6P message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SixpMessage {
    /// Scheduling function id (GT-TSCH uses [`SIXP_SFID_GT_TSCH`]).
    pub sfid: u8,
    /// Transaction sequence number (per neighbor pair).
    pub seqnum: u8,
    /// The command body.
    pub body: SixpBody,
}

/// Error produced by [`SixpMessage::decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SixpDecodeError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown type nibble.
    BadType(u8),
    /// Unknown command code.
    BadCommand(u8),
    /// Unknown return code.
    BadReturnCode(u8),
    /// Unknown cell kind in an ADD/DELETE request.
    BadCellKind(u8),
}

impl fmt::Display for SixpDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SixpDecodeError::Truncated => f.write_str("truncated 6P message"),
            SixpDecodeError::BadVersion(v) => write!(f, "unsupported 6P version {v}"),
            SixpDecodeError::BadType(t) => write!(f, "unknown 6P type {t}"),
            SixpDecodeError::BadCommand(c) => write!(f, "unknown 6P command {c:#04x}"),
            SixpDecodeError::BadReturnCode(c) => write!(f, "unknown 6P return code {c:#04x}"),
            SixpDecodeError::BadCellKind(c) => write!(f, "unknown 6P cell kind {c}"),
        }
    }
}

impl std::error::Error for SixpDecodeError {}

impl SixpMessage {
    /// Creates a message with the GT-TSCH SFID.
    pub fn new(seqnum: u8, body: SixpBody) -> Self {
        SixpMessage {
            sfid: SIXP_SFID_GT_TSCH,
            seqnum,
            body,
        }
    }

    /// Encodes to the RFC 8480-style wire format.
    ///
    /// Layout: `[version<<4 | type, code, sfid, seqnum, body…]`, cell
    /// lists as `count:u16` then `(slot:u16, chan:u8)` entries, all
    /// big-endian.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16);
        let type_nibble = if self.body.is_request() {
            TYPE_REQUEST
        } else {
            TYPE_RESPONSE
        };
        buf.put_u8((SIXP_VERSION << 4) | type_nibble);
        // Requests carry the command code; responses the return code.
        match self.body.return_code() {
            Some(rc) => buf.put_u8(rc.to_wire()),
            None => buf.put_u8(self.body.command_code()),
        }
        buf.put_u8(self.sfid);
        buf.put_u8(self.seqnum);
        // Responses also need the command code to be self-describing
        // (RFC 8480 infers it from transaction state; carrying it keeps
        // the codec stateless).
        buf.put_u8(self.body.command_code());

        fn put_cells(buf: &mut BytesMut, cells: &[CellSpec]) {
            buf.put_u16(cells.len() as u16);
            for c in cells {
                buf.put_u16(c.slot);
                buf.put_u8(c.channel_offset);
            }
        }

        match &self.body {
            SixpBody::AddRequest {
                kind,
                num_cells,
                cells,
            } => {
                buf.put_u8(kind.to_wire());
                buf.put_u16(*num_cells);
                put_cells(&mut buf, cells);
            }
            SixpBody::AddResponse { cells, .. } => put_cells(&mut buf, cells),
            SixpBody::DeleteRequest { kind, cells } => {
                buf.put_u8(kind.to_wire());
                put_cells(&mut buf, cells);
            }
            SixpBody::DeleteResponse { cells, .. } => put_cells(&mut buf, cells),
            SixpBody::ClearRequest | SixpBody::ClearResponse { .. } => {}
            SixpBody::AskChannelRequest => {}
            SixpBody::AskChannelResponse { channel_offset, .. } => {
                buf.put_u8(*channel_offset);
            }
        }
        buf.freeze()
    }

    /// Decodes a message encoded by [`SixpMessage::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`SixpDecodeError`] on truncation or unknown fields.
    pub fn decode(mut data: &[u8]) -> Result<Self, SixpDecodeError> {
        fn need(data: &[u8], n: usize) -> Result<(), SixpDecodeError> {
            if data.remaining() < n {
                Err(SixpDecodeError::Truncated)
            } else {
                Ok(())
            }
        }

        need(data, 5)?;
        let vt = data.get_u8();
        let version = vt >> 4;
        if version != SIXP_VERSION {
            return Err(SixpDecodeError::BadVersion(version));
        }
        let msg_type = vt & 0x0F;
        let code = data.get_u8();
        let sfid = data.get_u8();
        let seqnum = data.get_u8();
        let command = data.get_u8();

        fn get_cells(data: &mut &[u8]) -> Result<Vec<CellSpec>, SixpDecodeError> {
            if data.remaining() < 2 {
                return Err(SixpDecodeError::Truncated);
            }
            let count = data.get_u16() as usize;
            if data.remaining() < count * 3 {
                return Err(SixpDecodeError::Truncated);
            }
            let mut cells = Vec::with_capacity(count);
            for _ in 0..count {
                let slot = data.get_u16();
                let chan = data.get_u8();
                cells.push(CellSpec::new(slot, chan));
            }
            Ok(cells)
        }

        let body = match (msg_type, command) {
            (TYPE_REQUEST, CMD_ADD) => {
                need(data, 3)?;
                let kind_raw = data.get_u8();
                let kind = SixpCellKind::from_wire(kind_raw)
                    .ok_or(SixpDecodeError::BadCellKind(kind_raw))?;
                let num_cells = data.get_u16();
                SixpBody::AddRequest {
                    kind,
                    num_cells,
                    cells: get_cells(&mut data)?,
                }
            }
            (TYPE_RESPONSE, CMD_ADD) => SixpBody::AddResponse {
                code: ReturnCode::from_wire(code).ok_or(SixpDecodeError::BadReturnCode(code))?,
                cells: get_cells(&mut data)?,
            },
            (TYPE_REQUEST, CMD_DELETE) => {
                need(data, 1)?;
                let kind_raw = data.get_u8();
                let kind = SixpCellKind::from_wire(kind_raw)
                    .ok_or(SixpDecodeError::BadCellKind(kind_raw))?;
                SixpBody::DeleteRequest {
                    kind,
                    cells: get_cells(&mut data)?,
                }
            }
            (TYPE_RESPONSE, CMD_DELETE) => SixpBody::DeleteResponse {
                code: ReturnCode::from_wire(code).ok_or(SixpDecodeError::BadReturnCode(code))?,
                cells: get_cells(&mut data)?,
            },
            (TYPE_REQUEST, CMD_CLEAR) => SixpBody::ClearRequest,
            (TYPE_RESPONSE, CMD_CLEAR) => SixpBody::ClearResponse {
                code: ReturnCode::from_wire(code).ok_or(SixpDecodeError::BadReturnCode(code))?,
            },
            (TYPE_REQUEST, CMD_ASK_CHANNEL) => SixpBody::AskChannelRequest,
            (TYPE_RESPONSE, CMD_ASK_CHANNEL) => {
                need(data, 1)?;
                SixpBody::AskChannelResponse {
                    code: ReturnCode::from_wire(code)
                        .ok_or(SixpDecodeError::BadReturnCode(code))?,
                    channel_offset: data.get_u8(),
                }
            }
            (TYPE_REQUEST | TYPE_RESPONSE, c) => return Err(SixpDecodeError::BadCommand(c)),
            (t, _) => return Err(SixpDecodeError::BadType(t)),
        };

        Ok(SixpMessage { sfid, seqnum, body })
    }
}

impl fmt::Display for SixpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.body {
            SixpBody::AddRequest {
                kind, num_cells, ..
            } => format!("ADD.req({kind}, n={num_cells})"),
            SixpBody::AddResponse { code, cells } => {
                format!("ADD.rsp({code}, {} cells)", cells.len())
            }
            SixpBody::DeleteRequest { kind, cells } => {
                format!("DELETE.req({kind}, {} cells)", cells.len())
            }
            SixpBody::DeleteResponse { code, .. } => format!("DELETE.rsp({code})"),
            SixpBody::ClearRequest => "CLEAR.req".to_string(),
            SixpBody::ClearResponse { code } => format!("CLEAR.rsp({code})"),
            SixpBody::AskChannelRequest => "ASK-CHANNEL.req".to_string(),
            SixpBody::AskChannelResponse {
                code,
                channel_offset,
            } => {
                format!("ASK-CHANNEL.rsp({code}, co={channel_offset})")
            }
        };
        write!(f, "6P[sf={:#04x} seq={} {kind}]", self.sfid, self.seqnum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(body: SixpBody) {
        let msg = SixpMessage::new(7, body);
        let encoded = msg.encode();
        let decoded = SixpMessage::decode(&encoded).expect("decodes");
        assert_eq!(decoded, msg);
    }

    #[test]
    fn add_request_round_trip() {
        round_trip(SixpBody::AddRequest {
            kind: SixpCellKind::Data,
            num_cells: 3,
            cells: vec![
                CellSpec::new(4, 1),
                CellSpec::new(9, 2),
                CellSpec::new(11, 1),
            ],
        });
        round_trip(SixpBody::AddRequest {
            kind: SixpCellKind::SixP,
            num_cells: 2,
            cells: vec![],
        });
    }

    #[test]
    fn add_response_round_trip() {
        round_trip(SixpBody::AddResponse {
            code: ReturnCode::Success,
            cells: vec![CellSpec::new(4, 1)],
        });
        round_trip(SixpBody::AddResponse {
            code: ReturnCode::ErrNoCells,
            cells: vec![],
        });
    }

    #[test]
    fn delete_round_trip() {
        round_trip(SixpBody::DeleteRequest {
            kind: SixpCellKind::Data,
            cells: vec![CellSpec::new(30, 7)],
        });
        round_trip(SixpBody::DeleteResponse {
            code: ReturnCode::Success,
            cells: vec![CellSpec::new(30, 7)],
        });
    }

    #[test]
    fn clear_round_trip() {
        round_trip(SixpBody::ClearRequest);
        round_trip(SixpBody::ClearResponse {
            code: ReturnCode::Success,
        });
    }

    #[test]
    fn ask_channel_round_trip() {
        round_trip(SixpBody::AskChannelRequest);
        round_trip(SixpBody::AskChannelResponse {
            code: ReturnCode::Success,
            channel_offset: 5,
        });
    }

    #[test]
    fn truncated_rejected() {
        let msg = SixpMessage::new(
            1,
            SixpBody::AddRequest {
                kind: SixpCellKind::Data,
                num_cells: 2,
                cells: vec![CellSpec::new(1, 1), CellSpec::new(2, 2)],
            },
        );
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            let err = SixpMessage::decode(&bytes[..cut]);
            assert!(err.is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn bad_version_rejected() {
        let msg = SixpMessage::new(0, SixpBody::ClearRequest);
        let mut bytes = msg.encode().to_vec();
        bytes[0] = (3 << 4) | (bytes[0] & 0x0F);
        assert_eq!(
            SixpMessage::decode(&bytes),
            Err(SixpDecodeError::BadVersion(3))
        );
    }

    #[test]
    fn bad_command_rejected() {
        let msg = SixpMessage::new(0, SixpBody::ClearRequest);
        let mut bytes = msg.encode().to_vec();
        bytes[4] = 0x7F;
        assert_eq!(
            SixpMessage::decode(&bytes),
            Err(SixpDecodeError::BadCommand(0x7F))
        );
    }

    #[test]
    fn bad_return_code_rejected() {
        let msg = SixpMessage::new(
            0,
            SixpBody::ClearResponse {
                code: ReturnCode::Success,
            },
        );
        let mut bytes = msg.encode().to_vec();
        bytes[1] = 0x6E;
        assert_eq!(
            SixpMessage::decode(&bytes),
            Err(SixpDecodeError::BadReturnCode(0x6E))
        );
    }

    #[test]
    fn display_is_informative() {
        let msg = SixpMessage::new(
            9,
            SixpBody::AskChannelResponse {
                code: ReturnCode::Success,
                channel_offset: 3,
            },
        );
        let s = msg.to_string();
        assert!(s.contains("ASK-CHANNEL"), "{s}");
        assert!(s.contains("seq=9"), "{s}");
    }

    #[test]
    fn request_predicate() {
        assert!(SixpBody::AskChannelRequest.is_request());
        assert!(!SixpBody::ClearResponse {
            code: ReturnCode::Err
        }
        .is_request());
    }
}
