//! The per-node 6P transaction engine.

use std::collections::BTreeMap;
use std::fmt;

use gtt_net::NodeId;
use gtt_sim::{SimDuration, SimTime};

use crate::messages::{ReturnCode, SixpBody, SixpMessage};

/// 6P layer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SixtopConfig {
    /// How long to wait for a response before retrying.
    pub timeout: SimDuration,
    /// How many times a request is retried after the first timeout.
    pub max_retries: u8,
}

impl Default for SixtopConfig {
    fn default() -> Self {
        SixtopConfig {
            // Two slotframes of 32 × 15 ms ≈ 1 s, rounded up generously:
            // 6P cells occur twice per slotframe in GT-TSCH (§IV rule 2).
            timeout: SimDuration::from_secs(3),
            max_retries: 2,
        }
    }
}

/// Events surfaced to the scheduler/engine by the 6P layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SixtopEvent {
    /// A peer's request arrived; the scheduling function must produce a
    /// response body, then call [`SixtopLayer::respond`] echoing `seqnum`.
    Request {
        /// Requesting neighbor.
        from: NodeId,
        /// Sequence number to echo in the response.
        seqnum: u8,
        /// The request body.
        body: SixpBody,
    },
    /// A transaction this node initiated completed successfully.
    Completed {
        /// Responding neighbor.
        peer: NodeId,
        /// The original request.
        request: SixpBody,
        /// The peer's response.
        response: SixpBody,
    },
    /// A transaction failed (timeout after retries, or error code).
    Failed {
        /// The neighbor the transaction was with.
        peer: NodeId,
        /// The original request.
        request: SixpBody,
        /// Failure cause.
        reason: TransactionFailure,
    },
}

/// Why a transaction failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransactionFailure {
    /// No response within the timeout after all retries.
    Timeout,
    /// The peer answered with a non-success return code.
    ErrorCode(ReturnCode),
}

impl fmt::Display for TransactionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionFailure::Timeout => f.write_str("timeout"),
            TransactionFailure::ErrorCode(rc) => write!(f, "peer returned {rc}"),
        }
    }
}

#[derive(Debug, Clone)]
struct Pending {
    request: SixpBody,
    seqnum: u8,
    deadline: SimTime,
    retries_left: u8,
}

/// The 6P sublayer of one node.
///
/// RFC 8480 allows at most one outstanding transaction per neighbor pair;
/// [`SixtopLayer::start_request`] enforces it. Retries re-send the *same*
/// message (same seqnum), so duplicate responses are idempotent.
#[derive(Debug, Clone)]
pub struct SixtopLayer {
    id: NodeId,
    config: SixtopConfig,
    /// Next seqnum per neighbor.
    seqnums: BTreeMap<NodeId, u8>,
    /// Outstanding transactions per neighbor.
    pending: BTreeMap<NodeId, Pending>,
    /// Count of completed/failed transactions (for control-overhead
    /// accounting in the experiments).
    completed: u64,
    failed: u64,
}

impl SixtopLayer {
    /// Creates the layer for node `id`.
    pub fn new(id: NodeId, config: SixtopConfig) -> Self {
        SixtopLayer {
            id,
            config,
            seqnums: BTreeMap::new(),
            pending: BTreeMap::new(),
            completed: 0,
            failed: 0,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of successfully completed transactions initiated here.
    pub fn completed_transactions(&self) -> u64 {
        self.completed
    }

    /// Number of failed transactions initiated here.
    pub fn failed_transactions(&self) -> u64 {
        self.failed
    }

    /// True if a transaction with `peer` is in flight.
    pub fn is_busy_with(&self, peer: NodeId) -> bool {
        self.pending.contains_key(&peer)
    }

    /// Starts a transaction with `peer`. Returns the message to enqueue
    /// for transmission, or `None` when a transaction with that peer is
    /// already in flight (the caller should retry later — GT-TSCH's load
    /// balancer simply waits for its next period).
    pub fn start_request(
        &mut self,
        peer: NodeId,
        body: SixpBody,
        now: SimTime,
    ) -> Option<SixpMessage> {
        assert!(body.is_request(), "start_request needs a request body");
        if self.pending.contains_key(&peer) {
            return None;
        }
        let seq = self.seqnums.entry(peer).or_insert(0);
        let seqnum = *seq;
        *seq = seq.wrapping_add(1);
        self.pending.insert(
            peer,
            Pending {
                request: body.clone(),
                seqnum,
                deadline: now + self.config.timeout,
                retries_left: self.config.max_retries,
            },
        );
        Some(SixpMessage::new(seqnum, body))
    }

    /// Builds a response to a previously surfaced
    /// [`SixtopEvent::Request`].
    pub fn respond(&self, seqnum: u8, body: SixpBody) -> SixpMessage {
        assert!(!body.is_request(), "respond needs a response body");
        SixpMessage::new(seqnum, body)
    }

    /// Processes a received 6P message from `from`.
    pub fn handle_message(&mut self, from: NodeId, msg: SixpMessage) -> Option<SixtopEvent> {
        if msg.body.is_request() {
            return Some(SixtopEvent::Request {
                from,
                seqnum: msg.seqnum,
                body: msg.body,
            });
        }
        // A response: match it against the pending transaction.
        let pending = self.pending.get(&from)?;
        if pending.seqnum != msg.seqnum {
            // Stale/duplicate response; drop silently (RFC 8480 §3.4.4).
            return None;
        }
        let pending = self.pending.remove(&from).expect("checked above");
        match msg.body.return_code() {
            Some(rc) if rc.is_success() => {
                self.completed += 1;
                Some(SixtopEvent::Completed {
                    peer: from,
                    request: pending.request,
                    response: msg.body,
                })
            }
            Some(rc) => {
                self.failed += 1;
                Some(SixtopEvent::Failed {
                    peer: from,
                    request: pending.request,
                    reason: TransactionFailure::ErrorCode(rc),
                })
            }
            None => None,
        }
    }

    /// The earliest retry/failure deadline across outstanding
    /// transactions, or `None` when nothing is pending.
    ///
    /// [`SixtopLayer::poll`] is a no-op strictly before this instant, so
    /// an event-driven engine can sleep until it (or until a message
    /// arrives) instead of polling every slot.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// Drives timeouts. Returns retransmissions to enqueue and failure
    /// events for transactions that exhausted their retries.
    pub fn poll(&mut self, now: SimTime) -> (Vec<(NodeId, SixpMessage)>, Vec<SixtopEvent>) {
        let mut resend = Vec::new();
        let mut events = Vec::new();
        let mut drop_keys = Vec::new();

        for (&peer, pending) in self.pending.iter_mut() {
            if now < pending.deadline {
                continue;
            }
            if pending.retries_left > 0 {
                pending.retries_left -= 1;
                pending.deadline = now + self.config.timeout;
                resend.push((
                    peer,
                    SixpMessage::new(pending.seqnum, pending.request.clone()),
                ));
            } else {
                drop_keys.push(peer);
            }
        }
        for peer in drop_keys {
            let pending = self.pending.remove(&peer).expect("key collected above");
            self.failed += 1;
            events.push(SixtopEvent::Failed {
                peer,
                request: pending.request,
                reason: TransactionFailure::Timeout,
            });
        }
        (resend, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::CellSpec;

    fn add_req(n: u16) -> SixpBody {
        SixpBody::AddRequest {
            kind: crate::messages::SixpCellKind::Data,
            num_cells: n,
            cells: vec![CellSpec::new(1, 1)],
        }
    }

    fn add_ok() -> SixpBody {
        SixpBody::AddResponse {
            code: ReturnCode::Success,
            cells: vec![CellSpec::new(1, 1)],
        }
    }

    #[test]
    fn request_response_happy_path() {
        let mut child = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        let mut parent = SixtopLayer::new(NodeId::new(1), SixtopConfig::default());

        let req = child
            .start_request(NodeId::new(1), add_req(2), SimTime::ZERO)
            .unwrap();
        assert!(child.is_busy_with(NodeId::new(1)));

        // Parent surfaces the request to its scheduler…
        let ev = parent.handle_message(NodeId::new(2), req).unwrap();
        let SixtopEvent::Request { from, seqnum, .. } = ev else {
            panic!("expected Request event");
        };
        assert_eq!(from, NodeId::new(2));

        // …which responds.
        let rsp = parent.respond(seqnum, add_ok());
        let ev = child.handle_message(NodeId::new(1), rsp).unwrap();
        assert!(matches!(ev, SixtopEvent::Completed { .. }));
        assert!(!child.is_busy_with(NodeId::new(1)));
        assert_eq!(child.completed_transactions(), 1);
    }

    #[test]
    fn only_one_transaction_per_peer() {
        let mut l = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        assert!(l
            .start_request(NodeId::new(1), add_req(1), SimTime::ZERO)
            .is_some());
        assert!(l
            .start_request(NodeId::new(1), add_req(1), SimTime::ZERO)
            .is_none());
        // A different peer is fine.
        assert!(l
            .start_request(NodeId::new(3), add_req(1), SimTime::ZERO)
            .is_some());
    }

    #[test]
    fn seqnums_increment_per_peer() {
        let mut l = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        let m1 = l
            .start_request(NodeId::new(1), add_req(1), SimTime::ZERO)
            .unwrap();
        // Complete it.
        l.handle_message(NodeId::new(1), SixpMessage::new(m1.seqnum, add_ok()));
        let m2 = l
            .start_request(NodeId::new(1), add_req(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(m2.seqnum, m1.seqnum.wrapping_add(1));
        // Fresh peer starts at 0.
        let m3 = l
            .start_request(NodeId::new(9), add_req(1), SimTime::ZERO)
            .unwrap();
        assert_eq!(m3.seqnum, 0);
    }

    #[test]
    fn stale_response_ignored() {
        let mut l = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        let m = l
            .start_request(NodeId::new(1), add_req(1), SimTime::ZERO)
            .unwrap();
        let stale = SixpMessage::new(m.seqnum.wrapping_add(5), add_ok());
        assert_eq!(l.handle_message(NodeId::new(1), stale), None);
        assert!(l.is_busy_with(NodeId::new(1)), "transaction still pending");
        // Response from a peer with no transaction is also dropped.
        assert_eq!(
            l.handle_message(NodeId::new(7), SixpMessage::new(0, add_ok())),
            None
        );
    }

    #[test]
    fn error_code_fails_transaction() {
        let mut l = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        let m = l
            .start_request(NodeId::new(1), add_req(1), SimTime::ZERO)
            .unwrap();
        let rsp = SixpMessage::new(
            m.seqnum,
            SixpBody::AddResponse {
                code: ReturnCode::ErrNoCells,
                cells: vec![],
            },
        );
        let ev = l.handle_message(NodeId::new(1), rsp).unwrap();
        assert!(matches!(
            ev,
            SixtopEvent::Failed {
                reason: TransactionFailure::ErrorCode(ReturnCode::ErrNoCells),
                ..
            }
        ));
        assert_eq!(l.failed_transactions(), 1);
    }

    #[test]
    fn timeout_retries_then_fails() {
        let cfg = SixtopConfig {
            timeout: SimDuration::from_secs(1),
            max_retries: 2,
        };
        let mut l = SixtopLayer::new(NodeId::new(2), cfg);
        let m = l
            .start_request(NodeId::new(1), add_req(1), SimTime::ZERO)
            .unwrap();

        // First timeout: retry with the same seqnum.
        let (resend, events) = l.poll(SimTime::from_secs(1));
        assert_eq!(resend.len(), 1);
        assert_eq!(resend[0].1.seqnum, m.seqnum);
        assert!(events.is_empty());

        // Second timeout: last retry.
        let (resend, events) = l.poll(SimTime::from_secs(2));
        assert_eq!(resend.len(), 1);
        assert!(events.is_empty());

        // Third: out of retries → failure.
        let (resend, events) = l.poll(SimTime::from_secs(3));
        assert!(resend.is_empty());
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            SixtopEvent::Failed {
                reason: TransactionFailure::Timeout,
                ..
            }
        ));
        assert!(!l.is_busy_with(NodeId::new(1)));
    }

    #[test]
    fn next_deadline_tracks_earliest_pending() {
        let mut l = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        assert_eq!(l.next_deadline(), None);
        l.start_request(NodeId::new(1), add_req(1), SimTime::ZERO);
        l.start_request(NodeId::new(3), add_req(1), SimTime::from_secs(1));
        assert_eq!(
            l.next_deadline(),
            Some(SimTime::ZERO + SixtopConfig::default().timeout)
        );
        // Completing the earlier transaction moves the deadline out.
        let m = SixpMessage::new(0, add_ok());
        l.handle_message(NodeId::new(1), m);
        assert_eq!(
            l.next_deadline(),
            Some(SimTime::from_secs(1) + SixtopConfig::default().timeout)
        );
    }

    #[test]
    fn poll_before_deadline_is_quiet() {
        let mut l = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        l.start_request(NodeId::new(1), add_req(1), SimTime::ZERO);
        let (resend, events) = l.poll(SimTime::from_millis(10));
        assert!(resend.is_empty());
        assert!(events.is_empty());
    }

    #[test]
    #[should_panic(expected = "request body")]
    fn start_request_rejects_response_bodies() {
        let mut l = SixtopLayer::new(NodeId::new(2), SixtopConfig::default());
        l.start_request(NodeId::new(1), add_ok(), SimTime::ZERO);
    }
}
