//! # gtt-rpl — RPL-lite routing for the GT-TSCH reproduction
//!
//! A compact implementation of the parts of RPL (RFC 6550) that the
//! GT-TSCH paper's stack exercises:
//!
//! * [`Rank`] — the logical distance to the DODAG root, computed with the
//!   **MRHOF** objective function over **ETX** (RFC 6719), exactly the
//!   `MRHOF` row of the paper's Table II. The game model's utility (eq. 3)
//!   consumes `Rank_i`, `Rank_min` and `MinStepOfRank` from here.
//! * [`TrickleTimer`] — RFC 6206 DIO pacing.
//! * [`Dio`] / [`Dao`] — control messages. `Dio` carries the paper's new
//!   option field advertising the parent's free Rx capacity (`l_rx`),
//!   which bounds each child's strategy set in the game (§VII).
//! * [`RplNode`] — the per-node routing state machine: neighbor table,
//!   hysteretic parent selection, children tracking via DAOs.
//!
//! The crate is transport-agnostic: it never touches the radio. The engine
//! feeds it received messages and polls it for outgoing ones
//! ([`RplAction`]).
//!
//! # Example
//!
//! ```
//! use gtt_net::NodeId;
//! use gtt_rpl::{Rank, RplConfig, RplNode};
//! use gtt_sim::SimTime;
//!
//! let root = RplNode::new_root(NodeId::new(0), RplConfig::default(), SimTime::ZERO);
//! assert_eq!(root.rank(), Rank::ROOT);
//! let node = RplNode::new(NodeId::new(1), RplConfig::default());
//! assert!(node.parent().is_none()); // joins once it hears a DIO
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod messages;
pub mod node;
pub mod rank;
pub mod trickle;

pub use messages::{Dao, Dio};
pub use node::{RplAction, RplConfig, RplNode};
pub use rank::{Rank, MIN_HOP_RANK_INCREASE};
pub use trickle::TrickleTimer;
