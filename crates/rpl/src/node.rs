//! The per-node RPL state machine.

use std::collections::BTreeMap;

use gtt_net::NodeId;
use gtt_sim::{Pcg32, SimDuration, SimTime, Timer};

use crate::messages::{Dao, Dio};
use crate::rank::Rank;
use crate::trickle::TrickleTimer;

/// RPL configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RplConfig {
    /// Trickle minimum interval (RFC 6206 `Imin`).
    pub trickle_imin: SimDuration,
    /// Trickle doublings (`Imax = Imin × 2^doublings`).
    pub trickle_doublings: u8,
    /// Trickle redundancy constant `k`.
    pub trickle_k: u32,
    /// MRHOF parent-switch hysteresis (RFC 6719
    /// `PARENT_SWITCH_THRESHOLD`, in Rank units).
    pub parent_switch_threshold: u16,
    /// Forget neighbors not heard for this long.
    pub neighbor_timeout: SimDuration,
    /// Period of DAO refreshes towards the parent.
    pub dao_period: SimDuration,
    /// Forget children whose DAOs stopped for this long.
    pub child_timeout: SimDuration,
}

impl Default for RplConfig {
    fn default() -> Self {
        RplConfig {
            trickle_imin: SimDuration::from_micros(4_096_000),
            trickle_doublings: 6,
            trickle_k: 10,
            parent_switch_threshold: 192,
            neighbor_timeout: SimDuration::from_secs(600),
            dao_period: SimDuration::from_secs(60),
            child_timeout: SimDuration::from_secs(300),
        }
    }
}

/// An outgoing action requested by the RPL layer.
///
/// The engine turns these into frames (and patches the GT-TSCH `rx_free`
/// DIO option in before transmission).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RplAction {
    /// Broadcast this DIO on the control plane.
    BroadcastDio(Dio),
    /// Unicast this DAO to the given parent.
    SendDao {
        /// Destination parent.
        to: NodeId,
        /// The DAO.
        dao: Dao,
    },
    /// The preferred parent changed; scheduling functions react to this
    /// (GT-TSCH re-runs channel allocation, Orchestra re-hashes cells).
    ParentChanged {
        /// Previous parent, if any.
        old: Option<NodeId>,
        /// New preferred parent.
        new: NodeId,
    },
}

#[derive(Debug, Clone, Copy)]
struct NeighborEntry {
    rank: Rank,
    rx_free: u16,
    /// Last known ETX towards this neighbor (engine-supplied).
    etx: f64,
    last_heard: SimTime,
}

/// The RPL routing state of one node.
///
/// Feed it DIOs/DAOs as they arrive; all time-driven work (neighbor and
/// child aging, ETX-driven rank refresh, Trickle-paced DIOs, periodic
/// DAOs) is *deadline-driven*: [`RplNode::next_deadline`] reports the
/// exact earliest instant at which [`RplNode::fire_due`] would do
/// anything, and strictly before that instant `fire_due` is a provable
/// no-op — no state change, no RNG draw. The engine therefore wakes a
/// node for RPL work only when that deadline arrives, instead of polling
/// on a period.
#[derive(Debug, Clone)]
pub struct RplNode {
    id: NodeId,
    config: RplConfig,
    is_root: bool,
    rank: Rank,
    parent: Option<NodeId>,
    dodag: Option<(NodeId, u8)>,
    neighbors: BTreeMap<NodeId, NeighborEntry>,
    children: BTreeMap<NodeId, SimTime>,
    trickle: TrickleTimer,
    dao_timer: Timer,
    rng: Pcg32,
    parent_changes: u64,
    /// True when something that feeds parent selection changed since the
    /// last housekeeping reselect: a neighbor entry (rank/ETX) was
    /// inserted, refreshed to a different value or expired, a child
    /// registered or expired, or the parent was lost. While false,
    /// re-running [`RplNode::reselect_parent`] is provably a no-op (its
    /// inputs are bit-identical), so housekeeping skips it. A set flag
    /// makes [`RplNode::next_deadline`] report "due now". Never set on
    /// roots (they select no parent).
    reselect_dirty: bool,
    /// True when the MAC's link statistics may have drifted since the
    /// last ETX refresh ([`RplNode::mark_link_stats_dirty`]) — the
    /// engine sets it whenever this node completes a unicast
    /// transmission, the only event that moves an ETX estimate. A set
    /// flag makes [`RplNode::next_deadline`] report "due now"; the next
    /// [`RplNode::fire_due`] re-reads every neighbor's ETX. Never set on
    /// roots (they never consume ETX).
    etx_dirty: bool,
    /// Memoized [`RplNode::next_deadline`] result (`None` = stale).
    /// The deadline scan walks the neighbor and child maps — O(degree)
    /// per call, and the engine consults the deadline on every wake-up —
    /// but its inputs only change through the four mutating entry points
    /// (`handle_dio`, `handle_dao`, `fire_due` past its gate,
    /// `mark_link_stats_dirty`), each of which invalidates this cell.
    deadline_memo: std::cell::Cell<Option<Option<SimTime>>>,
}

impl RplNode {
    /// Creates a non-root node that will join the first DODAG it hears.
    pub fn new(id: NodeId, config: RplConfig) -> Self {
        let trickle = TrickleTimer::new(
            config.trickle_imin,
            config.trickle_doublings,
            config.trickle_k,
        );
        RplNode {
            id,
            config,
            is_root: false,
            rank: Rank::INFINITE,
            parent: None,
            dodag: None,
            neighbors: BTreeMap::new(),
            children: BTreeMap::new(),
            trickle,
            dao_timer: Timer::disarmed(),
            rng: Pcg32::with_stream(id.raw() as u64, 0x5259_0001),
            parent_changes: 0,
            reselect_dirty: false,
            etx_dirty: false,
            deadline_memo: std::cell::Cell::new(None),
        }
    }

    /// Creates a DODAG root; it starts advertising immediately.
    pub fn new_root(id: NodeId, config: RplConfig, now: SimTime) -> Self {
        let mut node = RplNode::new(id, config);
        node.is_root = true;
        node.rank = Rank::ROOT;
        node.dodag = Some((id, 1));
        let mut rng = node.rng.clone();
        node.trickle.start(now, &mut rng);
        node.rng = rng;
        node
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// True for DODAG roots.
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// Current Rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Preferred parent, if joined.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// True once the node has a route towards a root (or is one).
    pub fn is_joined(&self) -> bool {
        self.is_root || self.parent.is_some()
    }

    /// The root of the DODAG this node belongs to, if joined.
    pub fn dodag_root(&self) -> Option<NodeId> {
        self.dodag.map(|(root, _)| root)
    }

    /// Children currently registered via DAO, in id order.
    pub fn children(&self) -> Vec<NodeId> {
        self.children.keys().copied().collect()
    }

    /// Number of parent switches performed so far.
    pub fn parent_changes(&self) -> u64 {
        self.parent_changes
    }

    /// Last `l_rx` (free Rx cells) advertised by `neighbor` in a DIO.
    pub fn neighbor_rx_free(&self, neighbor: NodeId) -> Option<u16> {
        self.neighbors.get(&neighbor).map(|n| n.rx_free)
    }

    /// Last Rank heard from `neighbor`.
    pub fn neighbor_rank(&self, neighbor: NodeId) -> Option<Rank> {
        self.neighbors.get(&neighbor).map(|n| n.rank)
    }

    /// Processes a received DIO from `src` over a link whose current ETX
    /// estimate is `etx` (owning convenience wrapper around
    /// [`RplNode::handle_dio_into`]).
    pub fn handle_dio(&mut self, src: NodeId, dio: Dio, etx: f64, now: SimTime) -> Vec<RplAction> {
        let mut actions = Vec::new();
        self.handle_dio_into(src, dio, etx, now, &mut actions);
        actions
    }

    /// Processes a received DIO from `src` over a link whose current ETX
    /// estimate is `etx`, appending any resulting actions to `actions`.
    ///
    /// The out-parameter form is what the engine's steady-state hot path
    /// calls: with a reused action buffer, the overwhelmingly common
    /// no-action DIO (known neighbor, unchanged parent) performs no heap
    /// allocation.
    pub fn handle_dio_into(
        &mut self,
        src: NodeId,
        dio: Dio,
        etx: f64,
        now: SimTime,
        actions: &mut Vec<RplAction>,
    ) {
        self.deadline_memo.set(None);
        // Adopt the DODAG if we have none (non-roots only).
        if !self.is_root && self.dodag.is_none() {
            self.dodag = Some((dio.dodag_root, dio.version));
        }
        // Ignore DIOs from a different DODAG — cross-DODAG isolation
        // matters for the two-DODAG scenarios of §VIII.
        if self.dodag.map(|(root, _)| root) != Some(dio.dodag_root) {
            return;
        }

        self.neighbors.insert(
            src,
            NeighborEntry {
                rank: dio.rank,
                rx_free: dio.rx_free,
                etx: etx.max(1.0),
                last_heard: now,
            },
        );
        self.trickle.consistent_heard();

        if self.is_root {
            return;
        }
        // Settle the new information in full right here — reselect, then
        // the Rank refresh through the (possibly unchanged) parent —
        // instead of raising `reselect_dirty`: the flag would pin
        // `next_deadline` at "now" and buy one guaranteed-no-op wake-up
        // plus an O(degree) reselect over bit-identical inputs next
        // slot, per DIO heard, network-wide.
        self.reselect_parent_into(now, actions);
        if let Some(entry) = self.parent_entry() {
            let new_rank = entry.rank.advertised_through(entry.etx);
            if new_rank != self.rank {
                self.rank = new_rank;
            }
        }
    }

    /// Processes a received DAO from `src`.
    pub fn handle_dao(&mut self, src: NodeId, dao: Dao, now: SimTime) {
        self.deadline_memo.set(None);
        let changed = if dao.no_path {
            self.children.remove(&dao.child).is_some()
        } else {
            self.children.insert(dao.child, now).is_none()
        };
        // A child set change feeds parent selection (children are never
        // eligible parents) — roots select no parent, so only non-roots
        // need the reselect wake-up.
        self.reselect_dirty |= changed && !self.is_root;
        let _ = src;
    }

    /// Flags that the MAC's link statistics may have moved an ETX
    /// estimate (the engine calls this when the node completes a unicast
    /// transmission — the only event that changes an ETX). The next
    /// [`RplNode::fire_due`] refreshes every neighbor entry; until then
    /// [`RplNode::next_deadline`] reports "due now". No-op on roots,
    /// which never consume ETX.
    pub fn mark_link_stats_dirty(&mut self) {
        if !self.is_root {
            self.etx_dirty = true;
            self.deadline_memo.set(None);
        }
    }

    /// The exact earliest instant at which [`RplNode::fire_due`] would do
    /// anything: the minimum over pending reselect/ETX-refresh work
    /// ("now"), the Trickle timer's fire or interval boundary, the
    /// periodic DAO refresh, and the earliest neighbor or child expiry.
    /// `None` means this layer will never act again unless a message
    /// arrives or the engine marks the link statistics dirty. Memoized
    /// between mutations — the engine consults it on every wake-up.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if let Some(memo) = self.deadline_memo.get() {
            return memo;
        }
        let deadline = self.compute_next_deadline();
        self.deadline_memo.set(Some(deadline));
        deadline
    }

    /// The uncached deadline scan behind [`RplNode::next_deadline`].
    fn compute_next_deadline(&self) -> Option<SimTime> {
        if self.reselect_dirty || self.etx_dirty {
            return Some(SimTime::ZERO);
        }
        // Expiry uses a strict comparison (`since > timeout`), so the
        // first *effective* instant is one microsecond past the timeout.
        let tick = SimDuration::from_micros(1);
        let neighbor_expiry = self
            .neighbors
            .values()
            .map(|n| n.last_heard)
            .min()
            .map(|t| t + self.config.neighbor_timeout + tick);
        let child_expiry = self
            .children
            .values()
            .copied()
            .min()
            .map(|t| t + self.config.child_timeout + tick);
        [
            self.trickle.next_deadline(),
            self.dao_timer.deadline(),
            neighbor_expiry,
            child_expiry,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Deadline-driven housekeeping: expire neighbors/children, re-run
    /// parent selection, fire Trickle DIOs and DAO refreshes. Strictly
    /// before [`RplNode::next_deadline`] this is a provable no-op (no
    /// state change, no RNG draw), which is what lets the event-driven
    /// engine skip every slot in between.
    ///
    /// `etx` maps a neighbor id to the current MAC ETX estimate towards
    /// it (the engine closes over the MAC's link statistics); it is only
    /// consulted after [`RplNode::mark_link_stats_dirty`].
    pub fn fire_due(&mut self, now: SimTime, etx: &dyn Fn(NodeId) -> f64) -> Vec<RplAction> {
        let mut actions = Vec::new();
        self.fire_due_into(now, etx, &mut actions);
        actions
    }

    /// [`RplNode::fire_due`] appending into a caller-owned buffer — the
    /// engine's hot path reuses one per node so deadline-driven
    /// housekeeping never allocates in the steady state.
    pub fn fire_due_into(
        &mut self,
        now: SimTime,
        etx: &dyn Fn(NodeId) -> f64,
        actions: &mut Vec<RplAction>,
    ) {
        match self.next_deadline() {
            Some(d) if d <= now => {}
            _ => return,
        }

        // Expire stale neighbors (but never the root's self-knowledge).
        // When the engine flagged a completed unicast transmission,
        // refresh survivors' ETX estimates from the MAC in the same pass
        // (non-roots only — roots never consume ETX).
        let timeout = self.config.neighbor_timeout;
        let mut dirty = self.reselect_dirty;
        if self.is_root {
            self.neighbors
                .retain(|_, n| now.saturating_since(n.last_heard) <= timeout);
        } else {
            let refresh = self.etx_dirty;
            self.neighbors.retain(|&n, entry| {
                if now.saturating_since(entry.last_heard) > timeout {
                    dirty = true;
                    return false;
                }
                if refresh {
                    let refreshed = etx(n).max(1.0);
                    if refreshed != entry.etx {
                        entry.etx = refreshed;
                        dirty = true;
                    }
                }
                true
            });
            self.etx_dirty = false;
        }
        let child_timeout = self.config.child_timeout;
        let children_before = self.children.len();
        self.children
            .retain(|_, heard| now.saturating_since(*heard) <= child_timeout);
        dirty |= self.children.len() != children_before;

        if !self.is_root && dirty {
            // Parent may have expired or its metrics drifted.
            if let Some(p) = self.parent {
                if !self.neighbors.contains_key(&p) {
                    self.parent = None;
                    self.rank = Rank::INFINITE;
                }
            }
            self.reselect_parent_into(now, actions);
            // Keep Rank tracking ETX drift on the existing link.
            if let Some(entry) = self.parent_entry() {
                let new_rank = entry.rank.advertised_through(entry.etx);
                if new_rank != self.rank {
                    self.rank = new_rank;
                }
            }
            self.reselect_dirty = false;
        }

        // Trickle-paced DIO.
        let mut rng = self.rng.clone();
        if self.trickle.poll(now, &mut rng) && self.is_joined() {
            actions.push(RplAction::BroadcastDio(Dio::new(
                self.dodag.expect("joined nodes have a DODAG").0,
                self.dodag.expect("joined nodes have a DODAG").1,
                self.rank,
            )));
        }
        self.rng = rng;

        // Periodic DAO refresh.
        if self.dao_timer.fire_due(now) {
            if let Some(p) = self.parent {
                actions.push(RplAction::SendDao {
                    to: p,
                    dao: Dao::announce(self.id),
                });
            }
        }

        // Everything above may have moved a deadline input.
        self.deadline_memo.set(None);
    }

    fn parent_entry(&self) -> Option<NeighborEntry> {
        self.parent.and_then(|p| self.neighbors.get(&p)).copied()
    }

    /// MRHOF parent selection with hysteresis; any DAO/parent-change
    /// actions are appended to `actions` (nothing on the by far most
    /// common outcome, "keep the current parent").
    fn reselect_parent_into(&mut self, now: SimTime, actions: &mut Vec<RplAction>) {
        let mut best: Option<(NodeId, Rank)> = None;
        for (&cand, entry) in &self.neighbors {
            if entry.rank.is_infinite() {
                continue;
            }
            // Never pick a registered child (it lives in our sub-DODAG).
            if self.children.contains_key(&cand) {
                continue;
            }
            // Loop avoidance: a joined node only considers parents whose
            // Rank is strictly below its own.
            if self.parent.is_some() && entry.rank >= self.rank {
                continue;
            }
            let cost = entry.rank.advertised_through(entry.etx);
            if best.map_or(true, |(_, c)| cost < c) {
                best = Some((cand, cost));
            }
        }

        let Some((cand, cand_rank)) = best else {
            return;
        };

        let switch = match self.parent {
            None => true,
            Some(p) if p == cand => false,
            Some(_) => {
                // RFC 6719 hysteresis: the new path must beat the current
                // Rank by more than the threshold.
                (self.rank.raw() as i32 - cand_rank.raw() as i32)
                    > self.config.parent_switch_threshold as i32
            }
        };

        if !switch {
            // Still refresh Rank through the existing parent below (poll).
            return;
        }

        let old = self.parent;
        self.parent = Some(cand);
        self.rank = cand_rank;
        self.parent_changes += 1;

        if let Some(old_parent) = old {
            actions.push(RplAction::SendDao {
                to: old_parent,
                dao: Dao::no_path(self.id),
            });
        }
        actions.push(RplAction::SendDao {
            to: cand,
            dao: Dao::announce(self.id),
        });
        actions.push(RplAction::ParentChanged { old, new: cand });

        // Joining starts Trickle and the DAO refresh timer.
        let mut rng = self.rng.clone();
        if !self.trickle.is_running() {
            self.trickle.start(now, &mut rng);
        } else {
            self.trickle.inconsistency(now, &mut rng);
        }
        self.rng = rng;
        self.dao_timer.arm_periodic(now, self.config.dao_period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dio(root: u16, rank: Rank) -> Dio {
        Dio::new(NodeId::new(root), 1, rank)
    }

    fn flat_etx(_: NodeId) -> f64 {
        1.0
    }

    #[test]
    fn root_advertises_and_never_selects_parents() {
        let mut root = RplNode::new_root(NodeId::new(0), RplConfig::default(), SimTime::ZERO);
        assert!(root.is_root());
        assert!(root.is_joined());
        let actions = root.handle_dio(NodeId::new(1), dio(0, Rank::new(512)), 1.0, SimTime::ZERO);
        assert!(actions.is_empty());
        assert_eq!(root.parent(), None);

        // Polling through the first trickle interval eventually yields a DIO.
        let mut sent = false;
        for s in 0..200 {
            let t = SimTime::from_millis(100 * s);
            for a in root.fire_due(t, &flat_etx) {
                if matches!(a, RplAction::BroadcastDio(_)) {
                    sent = true;
                }
            }
        }
        assert!(sent, "root must broadcast DIOs");
    }

    #[test]
    fn node_joins_on_first_dio() {
        let mut n = RplNode::new(NodeId::new(1), RplConfig::default());
        let actions = n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        assert_eq!(n.parent(), Some(NodeId::new(0)));
        assert_eq!(n.rank().raw(), 512);
        assert_eq!(n.dodag_root(), Some(NodeId::new(0)));
        assert!(actions.contains(&RplAction::ParentChanged {
            old: None,
            new: NodeId::new(0)
        }));
        assert!(actions.iter().any(
            |a| matches!(a, RplAction::SendDao { to, dao } if *to == NodeId::new(0) && !dao.no_path)
        ));
        assert_eq!(n.parent_changes(), 1);
    }

    #[test]
    fn hysteresis_prevents_marginal_switches() {
        let mut n = RplNode::new(NodeId::new(2), RplConfig::default());
        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        assert_eq!(n.parent(), Some(NodeId::new(0)));
        // A slightly better candidate appears (improvement < 192): stay.
        // Our rank via n0 is 512. Candidate n1 at rank 256 with etx 1.0
        // would also give 512 — no improvement, no switch.
        let actions = n.handle_dio(NodeId::new(1), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        assert!(actions.is_empty());
        assert_eq!(n.parent(), Some(NodeId::new(0)));
    }

    #[test]
    fn big_improvement_switches_parent() {
        let mut n = RplNode::new(NodeId::new(2), RplConfig::default());
        // Join via a rank-768 neighbor: our rank = 1024.
        n.handle_dio(NodeId::new(5), dio(0, Rank::new(768)), 1.0, SimTime::ZERO);
        assert_eq!(n.rank().raw(), 1024);
        // The root itself appears: cost 512, improvement 512 > 192.
        let actions = n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        assert_eq!(n.parent(), Some(NodeId::new(0)));
        assert_eq!(n.rank().raw(), 512);
        assert!(actions.iter().any(|a| matches!(
            a,
            RplAction::SendDao { to, dao } if *to == NodeId::new(5) && dao.no_path
        )));
        assert_eq!(n.parent_changes(), 2);
    }

    #[test]
    fn lossy_links_penalized_in_selection() {
        let mut n = RplNode::new(NodeId::new(3), RplConfig::default());
        // Root heard over an ETX-3 link: cost 256 + 3*256 = 1024.
        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 3.0, SimTime::ZERO);
        assert_eq!(n.rank().raw(), 1024);
        // A rank-512 relay over a clean link: cost 768 < 1024 − 192.
        n.handle_dio(NodeId::new(1), dio(0, Rank::new(512)), 1.0, SimTime::ZERO);
        assert_eq!(n.parent(), Some(NodeId::new(1)));
        assert_eq!(n.rank().raw(), 768);
    }

    #[test]
    fn foreign_dodag_ignored() {
        let mut n = RplNode::new(NodeId::new(4), RplConfig::default());
        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        // DIO from a different DODAG (root 9) must not be adopted.
        let actions = n.handle_dio(NodeId::new(9), dio(9, Rank::ROOT), 1.0, SimTime::ZERO);
        assert!(actions.is_empty());
        assert_eq!(n.dodag_root(), Some(NodeId::new(0)));
        assert_eq!(n.parent(), Some(NodeId::new(0)));
    }

    #[test]
    fn children_tracked_via_dao() {
        let mut p = RplNode::new_root(NodeId::new(0), RplConfig::default(), SimTime::ZERO);
        p.handle_dao(NodeId::new(1), Dao::announce(NodeId::new(1)), SimTime::ZERO);
        p.handle_dao(NodeId::new(2), Dao::announce(NodeId::new(2)), SimTime::ZERO);
        assert_eq!(p.children(), vec![NodeId::new(1), NodeId::new(2)]);
        p.handle_dao(NodeId::new(1), Dao::no_path(NodeId::new(1)), SimTime::ZERO);
        assert_eq!(p.children(), vec![NodeId::new(2)]);
    }

    #[test]
    fn children_expire_without_refresh() {
        let cfg = RplConfig::default();
        let timeout = cfg.child_timeout;
        let mut p = RplNode::new_root(NodeId::new(0), cfg, SimTime::ZERO);
        p.handle_dao(NodeId::new(1), Dao::announce(NodeId::new(1)), SimTime::ZERO);
        p.fire_due(
            SimTime::ZERO + timeout + SimDuration::from_secs(1),
            &flat_etx,
        );
        assert!(p.children().is_empty());
    }

    #[test]
    fn parent_expiry_triggers_reselection() {
        let mut n = RplNode::new(NodeId::new(3), RplConfig::default());
        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        // Keep a backup relay fresh throughout.
        let late =
            SimTime::ZERO + RplConfig::default().neighbor_timeout + SimDuration::from_secs(5);
        n.handle_dio(NodeId::new(1), dio(0, Rank::new(512)), 1.0, late);
        let actions = n.fire_due(late + SimDuration::from_secs(1), &flat_etx);
        assert_eq!(n.parent(), Some(NodeId::new(1)), "fails over to the relay");
        assert!(actions
            .iter()
            .any(|a| matches!(a, RplAction::ParentChanged { .. })));
    }

    #[test]
    fn a_child_is_never_selected_as_parent() {
        let mut n = RplNode::new(NodeId::new(3), RplConfig::default());
        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        n.handle_dao(NodeId::new(7), Dao::announce(NodeId::new(7)), SimTime::ZERO);
        // The child (in our sub-DODAG) advertises a fantastic rank —
        // selecting it would form a loop.
        n.handle_dio(NodeId::new(7), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        assert_eq!(n.parent(), Some(NodeId::new(0)));
    }

    #[test]
    fn dao_refresh_fires_periodically() {
        let cfg = RplConfig {
            dao_period: SimDuration::from_secs(10),
            ..RplConfig::default()
        };
        let mut n = RplNode::new(NodeId::new(1), cfg);
        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        let mut daos = 0;
        for s in 1..=35 {
            for a in n.fire_due(SimTime::from_secs(s), &flat_etx) {
                if matches!(a, RplAction::SendDao { dao, .. } if !dao.no_path) {
                    daos += 1;
                }
            }
        }
        assert!(daos >= 3, "expected ≥3 DAO refreshes in 35 s, got {daos}");
    }

    #[test]
    fn fire_due_is_noop_strictly_before_next_deadline() {
        let mut n = RplNode::new(NodeId::new(1), RplConfig::default());
        // Fresh non-root: nothing armed, no deadline, fire_due does nothing.
        assert_eq!(n.next_deadline(), None);
        assert!(n.fire_due(SimTime::from_secs(1_000), &flat_etx).is_empty());

        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        // handle_dio settles reselect and rank inline, so the next
        // deadline is a real future instant (trickle/DAO/expiry), not a
        // pinned "wake me next slot".
        let d = n.next_deadline().expect("joined node has deadlines");
        assert!(d > SimTime::ZERO, "DIO work settles inline");
        // Strictly before the deadline the call is a provable no-op.
        let before = format!("{n:?}");
        let just_before = SimTime::from_micros(d.as_micros() - 1);
        assert!(n.fire_due(just_before, &flat_etx).is_empty());
        assert_eq!(format!("{n:?}"), before, "no state change, no RNG draw");
    }

    #[test]
    fn etx_refresh_waits_for_link_stats_dirty_mark() {
        let mut n = RplNode::new(NodeId::new(2), RplConfig::default());
        n.handle_dio(NodeId::new(0), dio(0, Rank::ROOT), 1.0, SimTime::ZERO);
        n.fire_due(SimTime::ZERO, &flat_etx);
        assert_eq!(n.rank().raw(), 512);
        // The link degrades, but without a dirty mark nothing is due and
        // the rank stays put.
        let worse = |_: NodeId| 3.0;
        let d = n.next_deadline().expect("deadline");
        assert!(n
            .fire_due(SimTime::from_micros(d.as_micros() - 1), &worse)
            .is_empty());
        assert_eq!(n.rank().raw(), 512, "no refresh without the mark");
        // Marking makes it due immediately; the refresh re-reads ETX and
        // the rank tracks the drift.
        n.mark_link_stats_dirty();
        assert_eq!(n.next_deadline(), Some(SimTime::ZERO));
        n.fire_due(SimTime::from_secs(1), &worse);
        assert_eq!(n.rank().raw(), 256 + 3 * 256, "rank tracks refreshed ETX");
    }

    #[test]
    fn roots_never_go_permanently_dirty() {
        let mut root = RplNode::new_root(NodeId::new(0), RplConfig::default(), SimTime::ZERO);
        root.handle_dio(NodeId::new(1), dio(0, Rank::new(512)), 1.0, SimTime::ZERO);
        root.handle_dao(NodeId::new(1), Dao::announce(NodeId::new(1)), SimTime::ZERO);
        root.mark_link_stats_dirty();
        // None of the above may pin the root's deadline at "now": its next
        // work is the trickle timer (and far-future expiries).
        let d = root.next_deadline().expect("trickle runs on roots");
        assert!(d > SimTime::ZERO, "root deadline must be a real instant");
    }

    #[test]
    fn neighbor_expiry_deadline_is_exact() {
        let cfg = RplConfig::default();
        let timeout = cfg.neighbor_timeout;
        let mut root = RplNode::new_root(NodeId::new(0), cfg, SimTime::ZERO);
        let heard = SimTime::from_secs(5);
        root.handle_dio(NodeId::new(1), dio(0, Rank::new(512)), 1.0, heard);
        let expiry = heard + timeout + SimDuration::from_micros(1);
        // At expiry-1µs the neighbor must survive a fire; at expiry it
        // must be dropped (strict `>` aging).
        root.fire_due(heard + timeout, &flat_etx);
        assert!(root.neighbor_rank(NodeId::new(1)).is_some());
        root.fire_due(expiry, &flat_etx);
        assert_eq!(root.neighbor_rank(NodeId::new(1)), None);
    }

    #[test]
    fn rx_free_option_remembered() {
        let mut n = RplNode::new(NodeId::new(1), RplConfig::default());
        n.handle_dio(
            NodeId::new(0),
            dio(0, Rank::ROOT).with_rx_free(6),
            1.0,
            SimTime::ZERO,
        );
        assert_eq!(n.neighbor_rx_free(NodeId::new(0)), Some(6));
        assert_eq!(n.neighbor_rank(NodeId::new(0)), Some(Rank::ROOT));
        assert_eq!(n.neighbor_rx_free(NodeId::new(9)), None);
    }
}
