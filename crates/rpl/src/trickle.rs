//! The Trickle timer (RFC 6206) pacing DIO transmissions.

use gtt_sim::{Pcg32, SimDuration, SimTime};

/// RFC 6206 Trickle timer.
///
/// Trickle adapts control-message frequency to network consistency: when
/// nothing changes, the interval doubles up to `i_max`; on inconsistency
/// (e.g. a DIO with unexpected Rank) it resets to `i_min`, flooding
/// updates quickly. Transmission within an interval is suppressed when at
/// least `k` consistent messages were already heard.
///
/// # Example
///
/// ```
/// use gtt_rpl::TrickleTimer;
/// use gtt_sim::{Pcg32, SimDuration, SimTime};
///
/// let mut rng = Pcg32::new(1);
/// let mut t = TrickleTimer::new(SimDuration::from_secs(4), 6, 10);
/// t.start(SimTime::ZERO, &mut rng);
/// assert!(t.fire_time().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct TrickleTimer {
    i_min: SimDuration,
    /// Number of doublings allowed above `i_min`.
    doublings: u8,
    /// Redundancy constant k.
    k: u32,
    /// Current interval length I.
    interval: SimDuration,
    /// Start of the current interval.
    interval_start: SimTime,
    /// Randomized fire point t ∈ [I/2, I).
    fire_at: Option<SimTime>,
    /// Consistent messages heard in this interval (c).
    heard: u32,
    running: bool,
}

impl TrickleTimer {
    /// Creates a timer with minimum interval `i_min`, `doublings`
    /// doublings (so `I_max = i_min × 2^doublings`), and redundancy `k`.
    ///
    /// # Panics
    ///
    /// Panics if `i_min` is zero or `k` is zero.
    pub fn new(i_min: SimDuration, doublings: u8, k: u32) -> Self {
        assert!(!i_min.is_zero(), "trickle i_min must be positive");
        assert!(k > 0, "trickle redundancy k must be positive");
        TrickleTimer {
            i_min,
            doublings,
            k,
            interval: i_min,
            interval_start: SimTime::ZERO,
            fire_at: None,
            heard: 0,
            running: false,
        }
    }

    /// The Contiki-NG-style defaults scaled to the paper's Table II:
    /// `I_min` = 4.096 s, 6 doublings (`I_max` ≈ 262 s ≈ the paper's
    /// "minimum DIO interval 300 s" steady state), k = 10.
    pub fn paper_default() -> Self {
        TrickleTimer::new(SimDuration::from_micros(4_096_000), 6, 10)
    }

    /// True once [`TrickleTimer::start`] has been called.
    pub fn is_running(&self) -> bool {
        self.running
    }

    /// Current interval length.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The pending fire time, if transmission is not suppressed.
    pub fn fire_time(&self) -> Option<SimTime> {
        self.fire_at
    }

    /// The earliest instant at which [`TrickleTimer::poll`] would do
    /// anything: the randomized fire point if still pending, else the end
    /// of the current interval (where the interval doubles and the next
    /// fire point is drawn). Strictly before this instant, `poll` is a
    /// no-op — no state change, no RNG draw — which lets a
    /// deadline-driven caller sleep until exactly this time instead of
    /// polling on a period.
    pub fn next_deadline(&self) -> Option<SimTime> {
        if !self.running {
            return None;
        }
        let interval_end = self.interval_start + self.interval;
        Some(match self.fire_at {
            Some(t) => t.min(interval_end),
            None => interval_end,
        })
    }

    /// Starts (or restarts) the timer at `now` from the minimum interval.
    pub fn start(&mut self, now: SimTime, rng: &mut Pcg32) {
        self.running = true;
        self.interval = self.i_min;
        self.begin_interval(now, rng);
    }

    /// Signals an inconsistency (RFC 6206 §4.2 step 6): resets to the
    /// minimum interval if not already there.
    pub fn inconsistency(&mut self, now: SimTime, rng: &mut Pcg32) {
        if !self.running {
            return;
        }
        if self.interval > self.i_min {
            self.interval = self.i_min;
            self.begin_interval(now, rng);
        }
    }

    /// Records hearing a consistent message (increments c).
    pub fn consistent_heard(&mut self) {
        self.heard = self.heard.saturating_add(1);
    }

    /// Polls the timer. Returns `true` exactly when the caller should
    /// transmit now: the randomized fire point passed and fewer than `k`
    /// consistent messages were heard. Expired intervals double and
    /// restart automatically.
    pub fn poll(&mut self, now: SimTime, rng: &mut Pcg32) -> bool {
        if !self.running {
            return false;
        }
        let interval_end = self.interval_start + self.interval;
        let mut should_send = false;
        if let Some(t) = self.fire_at {
            if now >= t {
                should_send = self.heard < self.k;
                self.fire_at = None;
            }
        }
        if now >= interval_end {
            // Double (capped) and begin the next interval.
            let max = self.i_min * (1u64 << self.doublings);
            self.interval = (self.interval * 2).min(max);
            self.begin_interval(interval_end, rng);
        }
        should_send
    }

    fn begin_interval(&mut self, start: SimTime, rng: &mut Pcg32) {
        self.interval_start = start;
        self.heard = 0;
        // t ∈ [I/2, I)
        let half = self.interval.as_micros() / 2;
        let jitter = rng.gen_range_u32(0, half.max(1) as u32) as u64;
        self.fire_at = Some(start + SimDuration::from_micros(half + jitter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer() -> (TrickleTimer, Pcg32) {
        (
            TrickleTimer::new(SimDuration::from_secs(4), 3, 10),
            Pcg32::new(99),
        )
    }

    /// Advances in 100ms steps until the timer says "send" or the limit.
    fn run_until_fire(
        t: &mut TrickleTimer,
        rng: &mut Pcg32,
        from: SimTime,
        limit_s: u64,
    ) -> Option<SimTime> {
        let step = SimDuration::from_millis(100);
        let mut now = from;
        let end = from + SimDuration::from_secs(limit_s);
        while now < end {
            if t.poll(now, rng) {
                return Some(now);
            }
            now += step;
        }
        None
    }

    #[test]
    fn fires_within_first_interval() {
        let (mut t, mut rng) = timer();
        t.start(SimTime::ZERO, &mut rng);
        let fired = run_until_fire(&mut t, &mut rng, SimTime::ZERO, 5).expect("must fire");
        // t ∈ [2s, 4s) for a 4 s interval.
        assert!(
            fired >= SimTime::from_secs(2)
                && fired < SimTime::from_secs(4) + SimDuration::from_millis(100)
        );
    }

    #[test]
    fn interval_doubles_up_to_cap() {
        let (mut t, mut rng) = timer();
        t.start(SimTime::ZERO, &mut rng);
        let step = SimDuration::from_millis(500);
        let mut now = SimTime::ZERO;
        // Run long enough to reach the cap: 4→8→16→32 (cap at 2^3).
        while now < SimTime::from_secs(200) {
            t.poll(now, &mut rng);
            now += step;
        }
        assert_eq!(t.interval(), SimDuration::from_secs(32));
    }

    #[test]
    fn inconsistency_resets_interval() {
        let (mut t, mut rng) = timer();
        t.start(SimTime::ZERO, &mut rng);
        let mut now = SimTime::ZERO;
        while now < SimTime::from_secs(100) {
            t.poll(now, &mut rng);
            now += SimDuration::from_millis(500);
        }
        assert!(t.interval() > SimDuration::from_secs(4));
        t.inconsistency(now, &mut rng);
        assert_eq!(t.interval(), SimDuration::from_secs(4));
        assert!(t.fire_time().unwrap() > now);
    }

    #[test]
    fn suppression_when_k_heard() {
        let (mut t, mut rng) = timer();
        t.start(SimTime::ZERO, &mut rng);
        for _ in 0..10 {
            t.consistent_heard();
        }
        // Poll through the entire first interval: suppressed.
        let fired = run_until_fire(&mut t, &mut rng, SimTime::ZERO, 4);
        assert_eq!(fired, None, "k consistent messages suppress the DIO");
    }

    #[test]
    fn next_deadline_is_exact_no_op_boundary() {
        let (mut t, mut rng) = timer();
        assert_eq!(t.next_deadline(), None, "not running ⇒ no deadline");
        t.start(SimTime::ZERO, &mut rng);
        // Deadline-driven polling: jumping straight from deadline to
        // deadline must fire exactly like 1 ms exhaustive polling does.
        let mut exhaustive = t.clone();
        let mut rng2 = rng.clone();
        let mut fires = Vec::new();
        let mut now = SimTime::ZERO;
        loop {
            let d = t.next_deadline().expect("running timer has a deadline");
            assert!(d > now, "deadline must be in the future");
            if d >= SimTime::from_secs(40) {
                break; // both legs observe the same [0, 40 s) window
            }
            now = d;
            if t.poll(now, &mut rng) {
                fires.push(now);
            }
        }
        let mut exhaustive_fires = Vec::new();
        let mut en = SimTime::ZERO;
        while en < SimTime::from_secs(40) {
            if exhaustive.poll(en, &mut rng2) {
                exhaustive_fires.push(en);
            }
            en += SimDuration::from_millis(1);
        }
        assert!(!fires.is_empty(), "trickle must fire in 40 s");
        // Same fires, same order; the exhaustive leg observes each fire at
        // the first grid tick at or after the exact deadline.
        assert_eq!(fires.len(), exhaustive_fires.len(), "fire counts match");
        for (f, e) in fires.iter().zip(&exhaustive_fires) {
            assert!(*e >= *f && *e < *f + SimDuration::from_millis(1));
        }
    }

    #[test]
    fn not_running_never_fires() {
        let (mut t, mut rng) = timer();
        assert!(!t.poll(SimTime::from_secs(100), &mut rng));
        assert!(!t.is_running());
        t.inconsistency(SimTime::ZERO, &mut rng); // no-op, no panic
    }

    #[test]
    fn fires_again_in_later_intervals() {
        let (mut t, mut rng) = timer();
        t.start(SimTime::ZERO, &mut rng);
        let first = run_until_fire(&mut t, &mut rng, SimTime::ZERO, 10).unwrap();
        let second = run_until_fire(&mut t, &mut rng, first + SimDuration::from_millis(100), 40)
            .expect("fires in the doubled interval too");
        assert!(second > first);
    }

    #[test]
    #[should_panic(expected = "i_min must be positive")]
    fn zero_imin_rejected() {
        let _ = TrickleTimer::new(SimDuration::ZERO, 1, 1);
    }
}
