//! RPL Rank and the MRHOF objective function.

use std::fmt;

/// RFC 6550's `MinHopRankIncrease` (also the paper's `MinStepOfRank`,
/// eq. 3): the minimum Rank growth per hop. 256 is the standard default.
pub const MIN_HOP_RANK_INCREASE: u16 = 256;

/// An RPL Rank: the node's scalar logical distance to the DODAG root.
///
/// Under MRHOF-over-ETX (RFC 6719), a node's Rank is its parent's Rank
/// plus `ETX(link) × MinHopRankIncrease`, so a perfect one-hop link adds
/// exactly [`MIN_HOP_RANK_INCREASE`].
///
/// # Example
///
/// ```
/// use gtt_rpl::Rank;
///
/// let parent = Rank::ROOT;
/// let child = parent.advertised_through(1.0); // perfect link
/// assert_eq!(child.raw() - parent.raw(), 256);
/// let lossy_child = parent.advertised_through(2.0); // ETX 2 link
/// assert!(lossy_child > child);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(u16);

impl Rank {
    /// The root's Rank. RFC 6550 roots advertise `MinHopRankIncrease`;
    /// the paper's eq. 3 calls this `Rank_min`.
    pub const ROOT: Rank = Rank(MIN_HOP_RANK_INCREASE);

    /// The infinite Rank: not reachable / no route.
    pub const INFINITE: Rank = Rank(u16::MAX);

    /// Creates a Rank from its raw value.
    pub const fn new(raw: u16) -> Self {
        Rank(raw)
    }

    /// Raw Rank value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// True for [`Rank::INFINITE`].
    pub const fn is_infinite(self) -> bool {
        self.0 == u16::MAX
    }

    /// The Rank a child obtains by selecting a parent with this Rank over
    /// a link with the given ETX (MRHOF rank increase, RFC 6719 §3.3:
    /// `Rank = parent_rank + ETX × MinHopRankIncrease`). The increase is
    /// floored at one `MinHopRankIncrease` and the result saturates at
    /// [`Rank::INFINITE`].
    ///
    /// # Panics
    ///
    /// Panics if `etx` is not finite or is below 1.0 − ε (ETX ≥ 1 by
    /// definition; eq. 4 of the paper).
    pub fn advertised_through(self, etx: f64) -> Rank {
        assert!(
            etx.is_finite() && etx >= 0.999,
            "ETX must be ≥ 1, got {etx}"
        );
        if self.is_infinite() {
            return Rank::INFINITE;
        }
        let increase = (etx * MIN_HOP_RANK_INCREASE as f64).round() as u32;
        let increase = increase.max(MIN_HOP_RANK_INCREASE as u32);
        let total = self.0 as u32 + increase;
        if total >= u16::MAX as u32 {
            Rank::INFINITE
        } else {
            Rank(total as u16)
        }
    }

    /// Approximate hop distance from the root implied by this Rank
    /// (assuming perfect links); the paper's figures label tiers this way.
    pub fn approx_hops(self) -> u16 {
        if self.is_infinite() {
            return u16::MAX;
        }
        (self.0.saturating_sub(Rank::ROOT.raw())) / MIN_HOP_RANK_INCREASE
    }

    /// The paper's eq. 3 transformation:
    /// `R̄ank_i = MinStepOfRank / (Rank_i − Rank_min)`.
    ///
    /// Nodes closer to the root (smaller Rank) get a larger weight, which
    /// prioritizes forwarders in the cell-allocation game. Returns `None`
    /// for the root itself (`Rank_i == Rank_min`, division by zero — the
    /// root plays no game because it has no parent) and for infinite Rank.
    pub fn game_weight(self) -> Option<f64> {
        if self.is_infinite() || self.0 <= Rank::ROOT.raw() {
            return None;
        }
        Some(MIN_HOP_RANK_INCREASE as f64 / (self.0 - Rank::ROOT.raw()) as f64)
    }
}

impl Default for Rank {
    fn default() -> Self {
        Rank::INFINITE
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_infinite() {
            f.write_str("rank∞")
        } else {
            write!(f, "rank{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_chain_ranks() {
        let r1 = Rank::ROOT.advertised_through(1.0);
        let r2 = r1.advertised_through(1.0);
        assert_eq!(r1.raw(), 512);
        assert_eq!(r2.raw(), 768);
        assert_eq!(r1.approx_hops(), 1);
        assert_eq!(r2.approx_hops(), 2);
    }

    #[test]
    fn lossy_links_increase_rank_proportionally() {
        let r = Rank::ROOT.advertised_through(2.0);
        assert_eq!(r.raw(), Rank::ROOT.raw() + 512);
    }

    #[test]
    fn increase_floored_at_min_step() {
        // ETX exactly 1.0 (or slightly less from float noise) still adds
        // a full MinHopRankIncrease.
        let r = Rank::ROOT.advertised_through(0.9999);
        assert_eq!(r.raw(), Rank::ROOT.raw() + MIN_HOP_RANK_INCREASE);
    }

    #[test]
    fn saturates_to_infinite() {
        let nearly = Rank::new(u16::MAX - 10);
        assert!(nearly.advertised_through(1.0).is_infinite());
        assert!(Rank::INFINITE.advertised_through(1.0).is_infinite());
    }

    #[test]
    fn game_weight_matches_eq3() {
        // First hop: MinStep/(512-256) = 1.0.
        let r1 = Rank::ROOT.advertised_through(1.0);
        assert_eq!(r1.game_weight(), Some(1.0));
        // Second hop: 256/512 = 0.5.
        let r2 = r1.advertised_through(1.0);
        assert_eq!(r2.game_weight(), Some(0.5));
        // Closer to root ⇒ larger weight (the paper's priority rule).
        assert!(r1.game_weight() > r2.game_weight());
    }

    #[test]
    fn game_weight_undefined_for_root_and_unreachable() {
        assert_eq!(Rank::ROOT.game_weight(), None);
        assert_eq!(Rank::INFINITE.game_weight(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Rank::ROOT.to_string(), "rank256");
        assert_eq!(Rank::INFINITE.to_string(), "rank∞");
    }

    #[test]
    #[should_panic(expected = "ETX must be ≥ 1")]
    fn sub_unity_etx_rejected() {
        let _ = Rank::ROOT.advertised_through(0.5);
    }
}
