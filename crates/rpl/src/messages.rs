//! RPL control messages.

use std::fmt;

use gtt_net::NodeId;

use crate::rank::Rank;

/// A DODAG Information Object, broadcast by every joined node.
///
/// Besides the standard fields, GT-TSCH adds one option (paper §VII):
/// the sender's number of free unicast Rx cells `l_rx`, which upper-bounds
/// how many Tx cells a child may request in the allocation game. For
/// schedulers that do not use the option (Orchestra) it is zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dio {
    /// The DODAG this node belongs to, identified by its root.
    pub dodag_root: NodeId,
    /// DODAG version (incremented on global repair; constant here).
    pub version: u8,
    /// The sender's Rank.
    pub rank: Rank,
    /// GT-TSCH option: sender's free unicast Rx capacity (`l_rx`), in
    /// cells per slotframe.
    pub rx_free: u16,
}

impl Dio {
    /// Creates a DIO without the GT-TSCH option.
    pub fn new(dodag_root: NodeId, version: u8, rank: Rank) -> Self {
        Dio {
            dodag_root,
            version,
            rank,
            rx_free: 0,
        }
    }

    /// Attaches the GT-TSCH `l_rx` option.
    pub fn with_rx_free(mut self, rx_free: u16) -> Self {
        self.rx_free = rx_free;
        self
    }
}

impl fmt::Display for Dio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DIO(root={}, v{}, {}, l_rx={})",
            self.dodag_root, self.version, self.rank, self.rx_free
        )
    }
}

/// A Destination Advertisement Object, unicast from a child to its parent.
///
/// In this reproduction DAOs serve their RFC 6550 role of announcing
/// reachability upward, which is how a parent learns its children set
/// `cs_i` — an input to both the GT-TSCH channel-allocation algorithm
/// (Algorithm 1) and the slotframe-creation rules (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dao {
    /// The child announcing itself.
    pub child: NodeId,
    /// `true` for a no-path DAO: the child is leaving this parent.
    pub no_path: bool,
}

impl Dao {
    /// A DAO announcing `child` to its (new) parent.
    pub fn announce(child: NodeId) -> Self {
        Dao {
            child,
            no_path: false,
        }
    }

    /// A no-path DAO: `child` detaches from the parent.
    pub fn no_path(child: NodeId) -> Self {
        Dao {
            child,
            no_path: true,
        }
    }
}

impl fmt::Display for Dao {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.no_path {
            write!(f, "DAO(no-path, {})", self.child)
        } else {
            write!(f, "DAO({})", self.child)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dio_builder() {
        let dio = Dio::new(NodeId::new(0), 1, Rank::ROOT).with_rx_free(5);
        assert_eq!(dio.rx_free, 5);
        assert_eq!(dio.rank, Rank::ROOT);
        assert!(dio.to_string().contains("l_rx=5"));
    }

    #[test]
    fn dao_kinds() {
        assert!(!Dao::announce(NodeId::new(3)).no_path);
        assert!(Dao::no_path(NodeId::new(3)).no_path);
        assert!(Dao::no_path(NodeId::new(3)).to_string().contains("no-path"));
    }
}
