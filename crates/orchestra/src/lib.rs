//! # gtt-orchestra — the Orchestra autonomous scheduler (baseline)
//!
//! Orchestra (Duquennoy et al., SenSys 2015) is the comparison baseline in
//! every figure of the GT-TSCH paper. It computes each node's schedule
//! *autonomously* from routing state — no negotiation, no signalling —
//! using hash functions over node addresses, with one slotframe per
//! traffic plane:
//!
//! * **EB slotframe** (sender-based): a node transmits its Enhanced
//!   Beacons in slot `hash(self) mod L_eb` and listens for its time
//!   source's EBs in `hash(parent) mod L_eb`;
//! * **common slotframe**: one shared slot for broadcast control traffic
//!   (DIOs) and fallback unicast (DAOs);
//! * **unicast slotframe** (receiver-based by default): every node listens
//!   on slot `hash(self) mod L_u` and transmits to a neighbor `n` in slot
//!   `hash(n) mod L_u`.
//!
//! Each slotframe uses one fixed channel offset. Because both the slot and
//! the channel are hash-derived, distinct senders regularly land on the
//! same (slot, channel) — the §III interference problems GT-TSCH fixes —
//! and all children of one parent share that parent's single Rx slot,
//! which is the §VIII bottleneck that collapses Orchestra's PDR under
//! load. This implementation follows the Contiki-NG one the paper
//! compared against (receiver-based unicast, default rule set).
//!
//! Because every cell lives in one of three short prioritized
//! slotframes, an Orchestra node's Rx slots vastly outnumber audible
//! transmissions. The MAC's cyclic-union Rx index enumerates the
//! three-frame listen union exactly, so the event-driven engine treats
//! Orchestra nodes as *passive listeners* — asleep through inaudible Rx
//! slots, with idle-listen energy settled lazily — the same way it
//! treats GT-TSCH's single slotframe (see
//! `gtt_engine`'s engine docs; pinned by `orchestra_macs_are_passive_listeners`
//! below and the 120-node `step_equivalence` suites).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gtt_engine::{SchedulingFunction, SfContext};
use gtt_mac::{
    Cell, CellClass, CellOptions, ChannelOffset, SlotOffset, Slotframe, SlotframeHandle,
};
use gtt_net::{Dest, NodeId};

/// Slotframe handles, in Contiki-NG priority order (EB first).
const EB_SF: SlotframeHandle = SlotframeHandle::new(0);
const COMMON_SF: SlotframeHandle = SlotframeHandle::new(1);
const UNICAST_SF: SlotframeHandle = SlotframeHandle::new(2);

/// Orchestra configuration (lengths of the three slotframes).
///
/// Defaults follow the Contiki-NG rule set scaled to the paper's
/// experiments; Fig. 10 sweeps `unicast_len` in {8, 12, 16, 20}.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchestraConfig {
    /// EB slotframe length (sender-based EB cells).
    pub eb_len: u16,
    /// Common/broadcast slotframe length (one shared slot).
    pub common_len: u16,
    /// Unicast slotframe length (receiver-based cells).
    pub unicast_len: u16,
    /// Use sender-based instead of receiver-based unicast cells
    /// (Contiki's `ORCHESTRA_UNICAST_SENDER_BASED`); the paper's
    /// comparison uses receiver-based, the default here.
    pub sender_based: bool,
}

impl OrchestraConfig {
    /// The configuration matching the paper's Fig. 8/9 setup: the
    /// classic Orchestra unicast period 7 (prime, so receiver-based
    /// cells actually hop across the 8-entry channel sequence instead of
    /// locking to one frequency), EB and common slotframes as in
    /// Contiki-NG.
    pub fn paper_default() -> Self {
        OrchestraConfig {
            eb_len: 41,
            common_len: 31,
            unicast_len: 7,
            sender_based: false,
        }
    }

    /// Same rule set with a different unicast slotframe length (Fig. 10).
    ///
    /// # Panics
    ///
    /// Panics if `unicast_len` is zero.
    pub fn with_unicast_len(unicast_len: u16) -> Self {
        assert!(unicast_len > 0, "unicast slotframe cannot be empty");
        OrchestraConfig {
            unicast_len,
            ..OrchestraConfig::paper_default()
        }
    }

    /// Validates the lengths.
    ///
    /// # Panics
    ///
    /// Panics when any slotframe length is zero.
    pub fn validate(&self) {
        assert!(self.eb_len > 0, "EB slotframe cannot be empty");
        assert!(self.common_len > 0, "common slotframe cannot be empty");
        assert!(self.unicast_len > 0, "unicast slotframe cannot be empty");
    }
}

impl Default for OrchestraConfig {
    fn default() -> Self {
        OrchestraConfig::paper_default()
    }
}

/// Orchestra's address hash (Contiki uses the link-address LSB; node ids
/// serve that role here).
fn orchestra_hash(node: NodeId) -> u16 {
    // Knuth multiplicative mixing keeps adjacent ids from mapping to
    // adjacent slots, like hashing the address bytes does in Contiki.
    ((node.raw() as u32).wrapping_mul(2654435761) >> 16) as u16
}

/// The Orchestra scheduling function.
#[derive(Debug, Clone)]
pub struct OrchestraSf {
    cfg: OrchestraConfig,
    /// The parent whose EB-Rx and unicast-Tx cells are installed.
    tracked_parent: Option<NodeId>,
}

impl OrchestraSf {
    /// Creates the SF.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(cfg: OrchestraConfig) -> Self {
        cfg.validate();
        OrchestraSf {
            cfg,
            tracked_parent: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &OrchestraConfig {
        &self.cfg
    }

    /// The node's own EB transmission slot.
    pub fn eb_tx_slot(&self, node: NodeId) -> u16 {
        orchestra_hash(node) % self.cfg.eb_len
    }

    /// The node's receiver-based unicast Rx slot.
    pub fn unicast_rx_slot(&self, node: NodeId) -> u16 {
        orchestra_hash(node) % self.cfg.unicast_len
    }
}

impl SchedulingFunction for OrchestraSf {
    fn name(&self) -> &'static str {
        "orchestra"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn init(&mut self, ctx: &mut SfContext<'_>) {
        let me = ctx.mac.id();

        // EB slotframe: sender-based Tx cell for our own beacons.
        let mut eb = Slotframe::new(self.cfg.eb_len);
        eb.add(Cell::new(
            SlotOffset::new(self.eb_tx_slot(me)),
            ChannelOffset::new(0),
            CellOptions::TX,
            Dest::Broadcast,
            CellClass::Eb,
        ));
        ctx.mac.schedule_mut().add_slotframe(EB_SF, eb);

        // Common slotframe: one shared broadcast/fallback slot.
        let mut common = Slotframe::new(self.cfg.common_len);
        common.add(Cell::new(
            SlotOffset::new(0),
            ChannelOffset::new(1),
            CellOptions::TX_RX_SHARED,
            Dest::Broadcast,
            CellClass::Broadcast,
        ));
        ctx.mac.schedule_mut().add_slotframe(COMMON_SF, common);

        // Unicast slotframe: receiver-based Rx cell on our own hash
        // (sender-based mode instead installs the Tx side on our hash).
        let mut unicast = Slotframe::new(self.cfg.unicast_len);
        unicast.add(Cell::new(
            SlotOffset::new(self.unicast_rx_slot(me)),
            ChannelOffset::new(2),
            CellOptions::RX,
            Dest::Broadcast, // any neighbor may address us here
            CellClass::Data,
        ));
        ctx.mac.schedule_mut().add_slotframe(UNICAST_SF, unicast);
    }

    fn on_parent_changed(&mut self, ctx: &mut SfContext<'_>, _old: Option<NodeId>, new: NodeId) {
        let me = ctx.mac.id();
        // Remove cells tracking the previous parent.
        if let Some(old) = self.tracked_parent.take() {
            if let Some(f) = ctx.mac.schedule_mut().frame_mut(EB_SF) {
                f.remove_where(|c| c.options.rx && c.peer == Dest::Unicast(old));
            }
            if let Some(f) = ctx.mac.schedule_mut().frame_mut(UNICAST_SF) {
                f.remove_where(|c| c.options.tx && c.peer == Dest::Unicast(old));
            }
        }

        // Listen for the new time source's EBs (sender-based).
        let eb_rx_slot = orchestra_hash(new) % self.cfg.eb_len;
        if let Some(f) = ctx.mac.schedule_mut().frame_mut(EB_SF) {
            // Tolerate hash collisions with our own EB Tx slot: Tx wins
            // by Contiki's rule, so skip the Rx cell then.
            if eb_rx_slot != self.eb_tx_slot(me) {
                f.add(Cell::new(
                    SlotOffset::new(eb_rx_slot),
                    ChannelOffset::new(0),
                    CellOptions::RX,
                    Dest::Unicast(new),
                    CellClass::Eb,
                ));
            }
        }

        // Transmit slot towards the new parent.
        let tx_slot = if self.cfg.sender_based {
            orchestra_hash(me) % self.cfg.unicast_len
        } else {
            orchestra_hash(new) % self.cfg.unicast_len
        };
        if let Some(f) = ctx.mac.schedule_mut().frame_mut(UNICAST_SF) {
            // Receiver-based cells are contention cells: every child of
            // `new` transmits in this same slot. Contiki-NG marks them
            // LINK_OPTION_SHARED so collisions trigger the TSCH backoff;
            // without it siblings would collide deterministically on
            // every retry.
            f.add(Cell::new(
                SlotOffset::new(tx_slot),
                ChannelOffset::new(2),
                CellOptions {
                    tx: true,
                    rx: false,
                    shared: !self.cfg.sender_based,
                },
                Dest::Unicast(new),
                CellClass::Data,
            ));
        }
        self.tracked_parent = Some(new);
    }

    fn on_dao(&mut self, ctx: &mut SfContext<'_>, child: NodeId, no_path: bool) {
        // Sender-based mode: the receiver listens in each child's own
        // hash slot (receiver-based mode needs no per-child state — all
        // children share our single Rx cell).
        if !self.cfg.sender_based {
            return;
        }
        let rx_slot = orchestra_hash(child) % self.cfg.unicast_len;
        if let Some(f) = ctx.mac.schedule_mut().frame_mut(UNICAST_SF) {
            f.remove_where(|c| c.options.rx && c.peer == Dest::Unicast(child));
            if !no_path {
                f.add(Cell::new(
                    SlotOffset::new(rx_slot),
                    ChannelOffset::new(2),
                    CellOptions::RX,
                    Dest::Unicast(child),
                    CellClass::Data,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_engine::{EngineConfig, Payload};
    use gtt_mac::{HoppingSequence, MacConfig, TschMac};
    use gtt_rpl::{Dio, Rank, RplConfig, RplNode};
    use gtt_sim::{Pcg32, SimTime};
    use gtt_sixtop::{SixtopConfig, SixtopLayer};

    struct Harness {
        sf: OrchestraSf,
        mac: TschMac<Payload>,
        rpl: RplNode,
        sixtop: SixtopLayer,
        rng: Pcg32,
        out: Vec<gtt_engine::OutgoingControl>,
    }

    impl Harness {
        fn new(id: u16) -> Self {
            let id = NodeId::new(id);
            let mut h = Harness {
                sf: OrchestraSf::new(OrchestraConfig::paper_default()),
                mac: TschMac::new(
                    id,
                    MacConfig::paper_default(),
                    HoppingSequence::paper_default(),
                    Pcg32::new(7),
                ),
                rpl: RplNode::new(id, RplConfig::default()),
                sixtop: SixtopLayer::new(id, SixtopConfig::default()),
                rng: Pcg32::new(id.raw() as u64),
                out: Vec::new(),
            };
            h.with(|sf, ctx| sf.init(ctx));
            h
        }

        fn with(&mut self, f: impl FnOnce(&mut OrchestraSf, &mut SfContext<'_>)) {
            let mut ctx = SfContext {
                mac: &mut self.mac,
                rpl: &self.rpl,
                sixtop: &mut self.sixtop,
                rng: &mut self.rng,
                now: SimTime::from_secs(5),
                app_rate_ppm: 0.0,
                out: &mut self.out,
            };
            f(&mut self.sf, &mut ctx);
        }

        fn join(&mut self, parent: u16) {
            let p = NodeId::new(parent);
            self.rpl.handle_dio(
                p,
                Dio::new(NodeId::new(0), 1, Rank::ROOT),
                1.0,
                SimTime::from_secs(1),
            );
            self.with(|sf, ctx| sf.on_parent_changed(ctx, None, p));
        }
    }

    #[test]
    fn init_installs_three_slotframes() {
        let h = Harness::new(4);
        assert_eq!(h.mac.schedule().num_slotframes(), 3);
        assert_eq!(h.mac.schedule().frame(EB_SF).unwrap().length(), 41);
        assert_eq!(h.mac.schedule().frame(COMMON_SF).unwrap().length(), 31);
        assert_eq!(h.mac.schedule().frame(UNICAST_SF).unwrap().length(), 7);
    }

    #[test]
    fn own_rx_cell_is_receiver_based_hash() {
        let h = Harness::new(4);
        let rx_slot = h.sf.unicast_rx_slot(NodeId::new(4));
        let f = h.mac.schedule().frame(UNICAST_SF).unwrap();
        let cells: Vec<_> = f.cells_at(SlotOffset::new(rx_slot)).collect();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].options.rx);
        assert_eq!(cells[0].channel_offset.raw(), 2);
    }

    #[test]
    fn join_installs_parent_tx_and_eb_rx() {
        let mut h = Harness::new(4);
        h.join(1);
        let f = h.mac.schedule().frame(UNICAST_SF).unwrap();
        let parent_slot = h.sf.unicast_rx_slot(NodeId::new(1));
        let tx: Vec<_> = f
            .cells()
            .iter()
            .filter(|c| c.options.tx && c.peer == Dest::Unicast(NodeId::new(1)))
            .collect();
        assert_eq!(tx.len(), 1, "one Tx cell towards the parent");
        assert_eq!(tx[0].slot.raw(), parent_slot, "RB: Tx at hash(parent)");

        let eb = h.mac.schedule().frame(EB_SF).unwrap();
        assert!(
            eb.cells().iter().any(|c| c.options.rx),
            "EB Rx cell for the time source"
        );
    }

    #[test]
    fn siblings_share_the_parents_rx_slot() {
        // The §VIII bottleneck: all children transmit to the parent in
        // the same (slot, channel offset) cell.
        let mut a = Harness::new(4);
        let mut b = Harness::new(5);
        a.join(1);
        b.join(1);
        let slot_a = a
            .mac
            .schedule()
            .frame(UNICAST_SF)
            .unwrap()
            .cells()
            .iter()
            .find(|c| c.options.tx)
            .unwrap()
            .slot;
        let slot_b = b
            .mac
            .schedule()
            .frame(UNICAST_SF)
            .unwrap()
            .cells()
            .iter()
            .find(|c| c.options.tx)
            .unwrap()
            .slot;
        assert_eq!(slot_a, slot_b, "same destination ⇒ same RB slot");
    }

    #[test]
    fn parent_switch_replaces_cells() {
        let mut h = Harness::new(4);
        h.join(9);
        // Second join towards node 1 (simulating an RPL switch).
        h.with(|sf, ctx| sf.on_parent_changed(ctx, Some(NodeId::new(9)), NodeId::new(1)));
        let f = h.mac.schedule().frame(UNICAST_SF).unwrap();
        let tx: Vec<_> = f.cells().iter().filter(|c| c.options.tx).collect();
        assert_eq!(tx.len(), 1, "exactly one parent Tx cell: {tx:?}");
        assert_eq!(tx[0].peer, Dest::Unicast(NodeId::new(1)));
    }

    #[test]
    fn sender_based_mode_uses_own_hash() {
        let mut h = Harness::new(4);
        h.sf = OrchestraSf::new(OrchestraConfig {
            sender_based: true,
            ..OrchestraConfig::paper_default()
        });
        h.join(1);
        let f = h.mac.schedule().frame(UNICAST_SF).unwrap();
        let tx = f.cells().iter().find(|c| c.options.tx).unwrap();
        assert_eq!(
            tx.slot.raw(),
            h.sf.unicast_rx_slot(NodeId::new(4)),
            "SB: Tx at hash(self)"
        );
    }

    #[test]
    fn sender_based_receiver_installs_per_child_rx_cells() {
        let mut h = Harness::new(4);
        h.sf = OrchestraSf::new(OrchestraConfig {
            sender_based: true,
            ..OrchestraConfig::paper_default()
        });
        // Two children announce themselves via DAO.
        h.with(|sf, ctx| sf.on_dao(ctx, NodeId::new(7), false));
        h.with(|sf, ctx| sf.on_dao(ctx, NodeId::new(9), false));
        let f = h.mac.schedule().frame(UNICAST_SF).unwrap();
        let rx: Vec<_> = f
            .cells()
            .iter()
            .filter(|c| c.options.rx && !c.peer.is_broadcast())
            .collect();
        assert_eq!(rx.len(), 2, "one Rx cell per child: {rx:?}");
        // A no-path DAO removes the cell again.
        h.with(|sf, ctx| sf.on_dao(ctx, NodeId::new(7), true));
        let f = h.mac.schedule().frame(UNICAST_SF).unwrap();
        let rx = f
            .cells()
            .iter()
            .filter(|c| c.options.rx && !c.peer.is_broadcast())
            .count();
        assert_eq!(rx, 1);
    }

    #[test]
    fn receiver_based_mode_ignores_daos() {
        let mut h = Harness::new(4);
        let before = h.mac.schedule().total_cells();
        h.with(|sf, ctx| sf.on_dao(ctx, NodeId::new(7), false));
        assert_eq!(h.mac.schedule().total_cells(), before);
    }

    #[test]
    fn orchestra_macs_are_passive_listeners() {
        use gtt_mac::{Asn, SlotAction, SlotResult};
        use gtt_net::RxOutcome;

        // Joined non-root: all three slotframes installed, EB-Rx and
        // unicast-Tx cells tracking the parent.
        let mut h = Harness::new(4);
        h.join(1);
        assert!(
            h.mac.is_passive_listener(),
            "three-slotframe Orchestra schedule must be indexable"
        );
        // With empty queues the engine never wakes it on the MAC's
        // account: its listens are driven purely by audible traffic.
        assert_eq!(h.mac.next_radio_wake(Asn::new(0)), None);

        // The index must agree with plan_slot across one full
        // hyperperiod of the three frames (41 × 31 × 7 = 8897 slots),
        // honoring the EB < common < unicast priority rule.
        let mut reference = h.mac.clone();
        let mut listens = 0u64;
        let hyper = 41 * 31 * 7u64;
        for raw in 0..hyper {
            let asn = Asn::new(raw);
            let probed = h.mac.listen_channel_at(asn);
            match reference.plan_slot(asn) {
                SlotAction::Listen { channel, .. } => {
                    assert_eq!(probed, Some(channel), "slot {raw}");
                    listens += 1;
                    reference.finish_slot(SlotResult::Listened(RxOutcome::Idle));
                }
                SlotAction::Sleep => {
                    assert_eq!(probed, None, "slot {raw}");
                    reference.finish_slot(SlotResult::Slept);
                }
                other => panic!("queues are empty, got {other:?}"),
            }
        }
        assert_eq!(
            h.mac.count_listen_slots(Asn::new(0), Asn::new(hyper)),
            listens,
            "cyclic-union count must match the exhaustive walk"
        );
        assert!(listens > 0, "orchestra nodes do listen");

        // A sender-based root with several per-child Rx cells stays
        // within the index caps too.
        let mut root = Harness::new(1);
        root.sf = OrchestraSf::new(OrchestraConfig {
            sender_based: true,
            ..OrchestraConfig::paper_default()
        });
        for child in [7, 9, 12] {
            root.with(|sf, ctx| sf.on_dao(ctx, NodeId::new(child), false));
        }
        assert!(root.mac.is_passive_listener());
    }

    #[test]
    fn engine_smoke_test_with_orchestra() {
        use gtt_net::{LinkModel, Position, TopologyBuilder};
        let topo = TopologyBuilder::new(40.0)
            .link_model(LinkModel::Perfect)
            .nodes((0..4).map(|i| Position::new(i as f64 * 20.0, 0.0)))
            .build();
        let mut net = gtt_engine::Network::builder(topo, EngineConfig::default())
            .root(NodeId::new(0))
            .traffic_ppm(10.0)
            .scheduler_factory(|_, _| Box::new(OrchestraSf::new(OrchestraConfig::paper_default())))
            .build();
        net.run_for(gtt_sim::SimDuration::from_secs(60));
        assert_eq!(net.join_ratio(), 1.0, "orchestra network must form");
        net.start_measurement();
        net.run_for(gtt_sim::SimDuration::from_secs(60));
        net.finish_measurement();
        let report = net.report();
        assert!(report.delivered > 0, "data must reach the root");
    }

    #[test]
    #[should_panic(expected = "unicast slotframe cannot be empty")]
    fn zero_unicast_len_rejected() {
        let _ = OrchestraConfig::with_unicast_len(0);
    }
}
