//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal substitute (see `crates/compat/README.md`). The derives
//! accept the same positions as the real ones and expand to nothing:
//! nothing in this repository serializes at runtime yet — the
//! `#[derive(Serialize, Deserialize)]` attributes in the sources mark
//! the intended wire/report types so the real serde can be dropped in
//! later without touching call sites.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
