//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal substitute (see `crates/compat/README.md`). It provides the
//! two trait names and the derive macros under the paths the sources
//! import (`use serde::{Deserialize, Serialize}`). The traits are empty
//! markers with blanket impls and the derives expand to nothing; swap
//! this path dependency for the real crate to get actual serialization.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
