//! The case loop behind `proptest!`: deterministic RNG, rejection
//! accounting, failure reporting.

use crate::TestCaseError;

/// Cases generated per property (the real proptest defaults to 256; this
/// stand-in trades a little coverage for suite speed). Override with the
/// `PROPTEST_CASES` environment variable.
pub const CASES: u32 = 64;

/// Rejected cases (`prop_assume!`) tolerated per *requested* case before
/// the property gives up, mirroring proptest's global rejection cap.
/// Scales with the `PROPTEST_CASES` override.
pub const REJECTS_PER_CASE: u32 = 16;

/// A small deterministic generator (SplitMix64) — good enough statistics
/// for test-input generation, trivially seedable and portable.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        // Modulo bias is ≤ bound/2^64 — irrelevant for test generation.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn cases_from_env() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(CASES)
}

/// Runs `property` over deterministically seeded cases; called by the
/// `proptest!` expansion.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when a case fails or when
/// too many cases are rejected by `prop_assume!`.
pub fn run<F>(name: &str, property: F)
where
    F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Stable per-property base seed so failures reproduce across runs
    // and are independent of test execution order.
    let base = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    });
    let cases = cases_from_env();
    let max_rejects = cases.saturating_mul(REJECTS_PER_CASE);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while passed < cases {
        if rejected > max_rejects {
            panic!(
                "property `{name}`: too many rejected cases \
                 ({rejected} rejects for {passed}/{cases} passes) — \
                 loosen prop_assume! or the strategies"
            );
        }
        let seed = base ^ case;
        case += 1;
        let mut rng = TestRng::new(seed);
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {case} (seed {seed:#x}): {msg}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_passes_trivial_property() {
        run("trivial", |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_reports_failure() {
        run("always_fails", |_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn runner_caps_rejections() {
        run("always_rejects", |_| Err(TestCaseError::Reject));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }
}
