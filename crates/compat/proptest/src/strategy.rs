//! Value-generation strategies: the subset of proptest's combinator
//! algebra the workspace tests use.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Object-safe core is [`Strategy::sample`]; the combinators are
/// `Sized`-gated provided methods so `Box<dyn Strategy<Value = T>>`
/// works.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $ty
                }
            }
        )+
    };
}

signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($ty:ty),+) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (full-range integers, fair bools).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose length is drawn from `len` and whose elements
/// come from `element` (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u16..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let s = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut rng = TestRng::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn vec_lengths_in_range() {
        let s = vec(0u8..10, 2..5);
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let s = (1u8..3, 10u16..20).prop_map(|(a, b)| a as u32 + b as u32);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((11..22).contains(&v));
        }
    }
}
