//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal substitute (see `crates/compat/README.md`). It is a real —
//! if small — property-testing engine: the `proptest!` macro runs each
//! property over [`test_runner::CASES`] deterministically generated
//! inputs, `prop_assume!` rejects uninteresting cases, and failures
//! report the case number and per-case seed for reproduction. What it
//! deliberately lacks versus the real crate is input *shrinking* and
//! persistence of failing seeds; the subset of the strategy combinator
//! API implemented is exactly what `tests/properties.rs` exercises
//! (ranges, tuples, `prop_map`, `Just`, `any`, `prop_oneof!`,
//! `prop::collection::vec`).

pub mod strategy;
pub mod test_runner;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Namespace mirror of `proptest::prop` (collection strategies etc.).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// The usual single-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (both: {:?})",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Rejects the current case (it is re-drawn) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Picks uniformly between the given strategies (all must yield the same
/// value type). Weighted arms are not supported by this stand-in.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
}
