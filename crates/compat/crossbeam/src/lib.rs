//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal substitute (see `crates/compat/README.md`). Only
//! `crossbeam::thread` (scoped threads) is used here, and since Rust 1.63
//! the standard library provides the same capability — this crate adapts
//! `std::thread::scope` to crossbeam's signature, where the spawn closure
//! receives a `&Scope` for nested spawning and `scope` returns a
//! `Result`.
//!
//! One behavioral difference: if a spawned thread panics, the real
//! crossbeam returns `Err` from `scope` while `std::thread::scope`
//! re-raises the panic. Both abort the sweep loudly, which is what the
//! caller wants (`.expect("sweep worker panicked")`).

pub mod thread {
    //! Scoped thread API compatible with `crossbeam::thread`.

    use std::any::Any;
    use std::thread as std_thread;

    /// Error payload of a panicked scope (never produced by this
    /// stand-in; see the crate docs).
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle; closures spawned through it may borrow from the
    /// enclosing stack frame.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so it
        /// can spawn further threads, mirroring crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a [`Scope`]; joins every spawned thread before
    /// returning.
    ///
    /// # Errors
    ///
    /// The real crossbeam returns `Err` when a child thread panicked;
    /// this adapter propagates the panic instead (see the crate docs) and
    /// therefore only ever returns `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u32, 2, 3, 4];
            let sum = std::sync::atomic::AtomicU32::new(0);
            super::scope(|s| {
                for chunk in data.chunks(2) {
                    s.spawn(|_| {
                        let part: u32 = chunk.iter().sum();
                        sum.fetch_add(part, std::sync::atomic::Ordering::Relaxed);
                    });
                }
            })
            .expect("no panics");
            assert_eq!(sum.into_inner(), 10);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let flag = std::sync::atomic::AtomicBool::new(false);
            super::scope(|s| {
                s.spawn(|inner| {
                    inner.spawn(|_| flag.store(true, std::sync::atomic::Ordering::Relaxed));
                });
            })
            .expect("no panics");
            assert!(flag.into_inner());
        }
    }
}
