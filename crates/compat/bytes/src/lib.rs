//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal substitute (see `crates/compat/README.md`). Unlike the
//! `serde` stand-in this one is *functional*: the 6P codec really encodes
//! and decodes through it. [`Bytes`]/[`BytesMut`] are thin wrappers over
//! `Vec<u8>` (no refcounted zero-copy slicing — the one semantic the real
//! crate adds that nothing here needs), and [`Buf`]/[`BufMut`] cover the
//! big-endian cursor operations the codec uses.

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// A growable byte buffer under construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read access to a byte cursor; big-endian, like the real crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Consumes one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consumes a big-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Consumes a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write access to a byte sink; big-endian, like the real crate.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(0xAB);
        buf.put_u16(0x0102);
        buf.put_u32(0xDEADBEEF);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 7);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x0102);
        assert_eq!(cursor.get_u32(), 0xDEADBEEF);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn advance_narrows_slice() {
        let data = [1u8, 2, 3, 4];
        let mut cursor: &[u8] = &data;
        cursor.advance(2);
        assert_eq!(cursor.chunk(), &[3, 4]);
    }
}
