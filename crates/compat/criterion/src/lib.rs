//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a minimal substitute (see `crates/compat/README.md`). The macro and
//! type surface matches what `crates/bench/benches/` uses, so the bench
//! targets compile and run under `cargo bench` unchanged; measurement is
//! a plain wall-clock mean over a time-boxed batch of iterations —
//! no warm-up modeling, outlier rejection, or HTML reports. Numbers are
//! indicative, not publication-grade; swap in the real criterion for
//! serious measurement.

use std::time::{Duration, Instant};

/// Target measuring time per benchmark (the real criterion defaults to
/// 5 s; this stand-in favors fast smoke runs).
const TARGET_TIME: Duration = Duration::from_millis(300);

/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u64 = 100_000;

/// How a batched setup's cost is amortized. Accepted for API parity;
/// this stand-in re-runs the setup before every routine call regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Identifies one benchmark; converts from the string-ish types the
/// bench sources pass.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the measured closure; drives the iteration loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time box fills.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < TARGET_TIME && iters < MAX_ITERS {
            std::hint::black_box(routine());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` over fresh inputs from `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let wall = Instant::now();
        while wall.elapsed() < TARGET_TIME && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = measured;
    }
}

fn report(name: &str, b: &Bencher) {
    let iters = b.iters.max(1);
    let per_iter = b.elapsed.as_nanos() / iters as u128;
    println!("bench {name:<45} {per_iter:>12} ns/iter ({iters} iters)");
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&id.0, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; the stand-in is time-boxed rather than
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark inside the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group (no-op here; reports print eagerly).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a bench target (`harness = false`), mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("compat/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0, "routine must have been driven");
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}
