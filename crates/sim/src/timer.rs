//! One-shot and periodic timers.
//!
//! TSCH simulations are slot-synchronous: the engine advances one timeslot
//! at a time and, at each boundary, asks which timers fired. [`Timer`] is
//! the single-timer primitive (EB period, scheduling-function period, app
//! generation); [`TimerWheel`] multiplexes many named timers for components
//! that juggle several (e.g. per-neighbor 6P timeouts).

use crate::time::{SimDuration, SimTime};

/// A timer that can be one-shot or periodic.
///
/// # Example
///
/// ```
/// use gtt_sim::{Timer, SimTime, SimDuration};
///
/// let mut eb = Timer::periodic(SimTime::ZERO, SimDuration::from_secs(2));
/// assert!(!eb.fire_due(SimTime::from_secs(1)));
/// assert!(eb.fire_due(SimTime::from_secs(2)));
/// // After firing, it re-arms one period later.
/// assert!(!eb.fire_due(SimTime::from_secs(3)));
/// assert!(eb.fire_due(SimTime::from_secs(4)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timer {
    deadline: SimTime,
    period: Option<SimDuration>,
    armed: bool,
}

impl Timer {
    /// Creates a one-shot timer firing at `deadline`.
    pub fn one_shot(deadline: SimTime) -> Self {
        Timer {
            deadline,
            period: None,
            armed: true,
        }
    }

    /// Creates a periodic timer whose first deadline is `start + period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn periodic(start: SimTime, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "periodic timer needs a non-zero period");
        Timer {
            deadline: start + period,
            period: Some(period),
            armed: true,
        }
    }

    /// Creates a disarmed timer; arm it later with [`Timer::arm`].
    pub fn disarmed() -> Self {
        Timer {
            deadline: SimTime::MAX,
            period: None,
            armed: false,
        }
    }

    /// True if the timer is armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The next deadline, or `None` if disarmed.
    pub fn deadline(&self) -> Option<SimTime> {
        self.armed.then_some(self.deadline)
    }

    /// (Re-)arms the timer as a one-shot at `deadline`, clearing any period.
    pub fn arm(&mut self, deadline: SimTime) {
        self.deadline = deadline;
        self.period = None;
        self.armed = true;
    }

    /// (Re-)arms the timer to fire every `period` starting from `now`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn arm_periodic(&mut self, now: SimTime, period: SimDuration) {
        assert!(!period.is_zero(), "periodic timer needs a non-zero period");
        self.deadline = now + period;
        self.period = Some(period);
        self.armed = true;
    }

    /// Disarms the timer.
    pub fn cancel(&mut self) {
        self.armed = false;
        self.deadline = SimTime::MAX;
    }

    /// Checks the timer against `now`. Returns `true` if it fired.
    ///
    /// A periodic timer re-arms itself one period after its *deadline* (not
    /// after `now`), so firing cadence does not drift even when the caller
    /// polls coarsely. If several whole periods were skipped, it fires once
    /// and re-arms past `now` (coalescing), which matches how Contiki
    /// etimers behave when the CPU was busy.
    pub fn fire_due(&mut self, now: SimTime) -> bool {
        if !self.armed || now < self.deadline {
            return false;
        }
        match self.period {
            Some(p) => {
                let mut next = self.deadline + p;
                while next <= now {
                    next += p;
                }
                self.deadline = next;
            }
            None => self.cancel(),
        }
        true
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::disarmed()
    }
}

/// A collection of named timers.
///
/// Keys are caller-chosen identifiers (e.g. a neighbor's node id for 6P
/// transaction timeouts). Firing order among simultaneously-due timers is
/// the key order, keeping behaviour deterministic.
///
/// # Example
///
/// ```
/// use gtt_sim::{TimerWheel, SimTime, SimDuration};
///
/// let mut wheel: TimerWheel<&'static str> = TimerWheel::new();
/// wheel.arm_one_shot("6p-timeout", SimTime::from_secs(3));
/// wheel.arm_periodic("sf-period", SimTime::ZERO, SimDuration::from_secs(10));
/// let fired = wheel.fire_due(SimTime::from_secs(10));
/// assert_eq!(fired, vec!["6p-timeout", "sf-period"]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TimerWheel<K: Ord + Clone> {
    timers: std::collections::BTreeMap<K, Timer>,
}

impl<K: Ord + Clone> TimerWheel<K> {
    /// Creates an empty wheel.
    pub fn new() -> Self {
        TimerWheel {
            timers: std::collections::BTreeMap::new(),
        }
    }

    /// Arms (or re-arms) the one-shot timer `key` at `deadline`.
    pub fn arm_one_shot(&mut self, key: K, deadline: SimTime) {
        self.timers.entry(key).or_default().arm(deadline);
    }

    /// Arms (or re-arms) the periodic timer `key`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn arm_periodic(&mut self, key: K, now: SimTime, period: SimDuration) {
        self.timers
            .entry(key)
            .or_default()
            .arm_periodic(now, period);
    }

    /// Cancels the timer `key`, dropping its entry. Unknown keys are
    /// ignored. (Removal, not just disarming: [`TimerWheel::fire_due_into`]
    /// only sweeps disarmed entries when a firing produced one, so a
    /// cancelled entry left behind would linger in the map forever.)
    pub fn cancel(&mut self, key: &K) {
        self.timers.remove(key);
    }

    /// True if `key` exists and is armed.
    pub fn is_armed(&self, key: &K) -> bool {
        self.timers.get(key).is_some_and(Timer::is_armed)
    }

    /// The deadline of `key`, if armed.
    pub fn deadline(&self, key: &K) -> Option<SimTime> {
        self.timers.get(key).and_then(Timer::deadline)
    }

    /// Fires every due timer and returns their keys in key order.
    pub fn fire_due(&mut self, now: SimTime) -> Vec<K> {
        let mut fired = Vec::new();
        self.fire_due_into(now, &mut fired);
        fired
    }

    /// Allocation-free variant of [`TimerWheel::fire_due`]: clears
    /// `fired` and fills it with the due keys in key order. Callers on a
    /// hot path (the engine fires every node's wheel on every wake-up)
    /// keep one scratch `Vec` alive across calls instead of allocating a
    /// fresh one per fire.
    pub fn fire_due_into(&mut self, now: SimTime, fired: &mut Vec<K>) {
        fired.clear();
        let mut any_disarmed = false;
        for (k, t) in self.timers.iter_mut() {
            if t.fire_due(now) {
                fired.push(k.clone());
                any_disarmed |= !t.is_armed();
            }
        }
        // Drop fully-disarmed one-shot entries to keep the map small.
        if any_disarmed {
            self.timers.retain(|_, t| t.is_armed());
        }
    }

    /// Earliest armed deadline across all timers.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.timers.values().filter_map(Timer::deadline).min()
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.timers.values().filter(|t| t.is_armed()).count()
    }

    /// True if no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once() {
        let mut t = Timer::one_shot(SimTime::from_millis(10));
        assert!(!t.fire_due(SimTime::from_millis(9)));
        assert!(t.fire_due(SimTime::from_millis(10)));
        assert!(!t.fire_due(SimTime::from_millis(11)));
        assert!(!t.is_armed());
    }

    #[test]
    fn periodic_does_not_drift() {
        let p = SimDuration::from_millis(100);
        let mut t = Timer::periodic(SimTime::ZERO, p);
        // Poll late by 30ms each time; deadlines stay on the 100ms grid.
        assert!(t.fire_due(SimTime::from_millis(130)));
        assert_eq!(t.deadline(), Some(SimTime::from_millis(200)));
        assert!(t.fire_due(SimTime::from_millis(230)));
        assert_eq!(t.deadline(), Some(SimTime::from_millis(300)));
    }

    #[test]
    fn periodic_coalesces_missed_periods() {
        let p = SimDuration::from_millis(10);
        let mut t = Timer::periodic(SimTime::ZERO, p);
        // Jump far ahead: fires once, re-arms past `now`.
        assert!(t.fire_due(SimTime::from_millis(95)));
        assert_eq!(t.deadline(), Some(SimTime::from_millis(100)));
    }

    #[test]
    fn cancel_disarms() {
        let mut t = Timer::periodic(SimTime::ZERO, SimDuration::from_millis(5));
        t.cancel();
        assert!(!t.fire_due(SimTime::from_secs(100)));
        assert_eq!(t.deadline(), None);
    }

    #[test]
    #[should_panic(expected = "non-zero period")]
    fn zero_period_panics() {
        let _ = Timer::periodic(SimTime::ZERO, SimDuration::ZERO);
    }

    #[test]
    fn wheel_fires_in_key_order() {
        let mut wheel: TimerWheel<u8> = TimerWheel::new();
        wheel.arm_one_shot(3, SimTime::from_millis(1));
        wheel.arm_one_shot(1, SimTime::from_millis(1));
        wheel.arm_one_shot(2, SimTime::from_millis(1));
        assert_eq!(wheel.fire_due(SimTime::from_millis(1)), vec![1, 2, 3]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_keeps_periodic_entries() {
        let mut wheel: TimerWheel<&str> = TimerWheel::new();
        wheel.arm_periodic("eb", SimTime::ZERO, SimDuration::from_secs(2));
        assert_eq!(wheel.fire_due(SimTime::from_secs(2)), vec!["eb"]);
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.next_deadline(), Some(SimTime::from_secs(4)));
    }

    #[test]
    fn fire_due_into_reuses_scratch_and_clears_it() {
        let mut wheel: TimerWheel<u8> = TimerWheel::new();
        wheel.arm_one_shot(2, SimTime::from_millis(1));
        wheel.arm_periodic(1, SimTime::ZERO, SimDuration::from_millis(1));
        let mut scratch = vec![99, 98]; // stale content must be cleared
        wheel.fire_due_into(SimTime::from_millis(1), &mut scratch);
        assert_eq!(scratch, vec![1, 2]);
        // The one-shot is gone, the periodic re-armed.
        wheel.fire_due_into(SimTime::from_millis(2), &mut scratch);
        assert_eq!(scratch, vec![1]);
        wheel.fire_due_into(SimTime::from_micros(2_100), &mut scratch);
        assert!(scratch.is_empty(), "nothing due leaves scratch empty");
    }

    #[test]
    fn cancelled_entries_do_not_accumulate() {
        // arm + cancel before the deadline, many times over: the map
        // must not grow (cancel removes; firing never sweeps these).
        let mut wheel: TimerWheel<u32> = TimerWheel::new();
        let mut scratch = Vec::new();
        for k in 0..1_000 {
            wheel.arm_one_shot(k, SimTime::from_secs(100));
            wheel.cancel(&k);
            wheel.fire_due_into(SimTime::from_secs(1), &mut scratch);
        }
        assert!(wheel.is_empty());
        assert_eq!(wheel.next_deadline(), None);
        // The map itself must be empty, not just free of armed timers —
        // a thousand lingering dead entries would balloon the debug dump.
        assert!(
            format!("{wheel:?}").len() < 100,
            "cancelled entries must be removed, not merely disarmed"
        );
        // And a live timer still works alongside.
        wheel.arm_one_shot(7, SimTime::from_secs(2));
        assert_eq!(wheel.len(), 1);
    }

    #[test]
    fn wheel_cancel_and_rearm() {
        let mut wheel: TimerWheel<&str> = TimerWheel::new();
        wheel.arm_one_shot("x", SimTime::from_secs(1));
        wheel.cancel(&"x");
        assert!(!wheel.is_armed(&"x"));
        assert!(wheel.fire_due(SimTime::from_secs(5)).is_empty());
        wheel.arm_one_shot("x", SimTime::from_secs(6));
        assert_eq!(wheel.deadline(&"x"), Some(SimTime::from_secs(6)));
    }
}
