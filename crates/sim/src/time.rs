//! Simulation time.
//!
//! Time is counted in whole microseconds from the start of the simulation.
//! A TSCH timeslot in the paper's configuration is 15 ms, so a `u64`
//! microsecond counter supports simulations of ~584 000 years — far beyond
//! anything the experiment harness asks for.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulation time (microseconds since start).
///
/// `SimTime` is a transparent newtype so that wall-clock `std::time` types
/// can never be confused with simulated time (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use gtt_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(15);
/// assert_eq!(t.as_micros(), 15_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time (microseconds).
///
/// # Example
///
/// ```
/// use gtt_sim::SimDuration;
/// assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from whole milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the epoch as a floating-point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    ///
    /// Returns `None` when `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1_000_000.0).round() as u64)
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of two durations.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// How many whole `rhs` periods fit into this duration.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        assert!(!rhs.is_zero(), "cannot divide by a zero duration");
        self.0 / rhs.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<SimDuration> for std::time::Duration {
    fn from(d: SimDuration) -> Self {
        std::time::Duration::from_micros(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(15).as_micros(), 15_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let slot = SimDuration::from_millis(15);
        let t = SimTime::ZERO + slot * 4;
        assert_eq!(t.as_millis(), 60);
        assert_eq!(t - SimTime::ZERO, slot * 4);
        assert_eq!((t - slot).as_millis(), 45);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(10));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn div_duration_counts_periods() {
        let frame = SimDuration::from_millis(15) * 32;
        let minute = SimDuration::from_secs(60);
        assert_eq!(minute.div_duration(frame), 125);
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn div_by_zero_duration_panics() {
        let _ = SimDuration::from_secs(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(15).to_string(), "15.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
    }
}
