//! Future event list for discrete-event simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO tie-breaking), which keeps multi-component simulations
/// deterministic without requiring callers to invent artificial sub-instant
/// priorities.
///
/// # Example
///
/// ```
/// use gtt_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(30), "b");
/// q.schedule(SimTime::from_millis(15), "a");
/// q.schedule(SimTime::from_millis(30), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse to pop the earliest (and, on
        // ties, lowest-sequence) entry first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `now`. Used by slot-synchronous loops that drain due events each slot.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// The firing time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns every event firing at or before `now`, in
    /// firing order (FIFO among ties) — the batch form of
    /// [`EventQueue::pop_due`].
    ///
    /// (The network engine keys its wake-up heap by raw slot number
    /// instead of `SimTime` and therefore rolls its own drain; this stays
    /// for `SimTime`-domain users.)
    pub fn drain_due(&mut self, now: SimTime) -> Vec<(SimTime, E)> {
        let mut due = Vec::new();
        while let Some(e) = self.pop_due(now) {
            due.push(e);
        }
        due
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (t, e) in iter {
            self.schedule(t, e);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 3);
        q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "early");
        q.schedule(SimTime::from_millis(20), "late");
        assert_eq!(q.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(
            q.pop_due(SimTime::from_millis(10)),
            Some((SimTime::from_millis(10), "early"))
        );
        assert_eq!(q.pop_due(SimTime::from_millis(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drain_due_takes_batch_in_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "b");
        q.schedule(SimTime::from_millis(5), "a");
        q.schedule(SimTime::from_millis(10), "c");
        q.schedule(SimTime::from_millis(20), "late");
        let due = q.drain_due(SimTime::from_millis(10));
        let names: Vec<_> = due.iter().map(|(_, e)| *e).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert_eq!(q.len(), 1);
        assert!(q.drain_due(SimTime::from_millis(15)).is_empty());
    }

    #[test]
    fn collect_and_clear() {
        let mut q: EventQueue<u8> = (0..5u8)
            .map(|i| (SimTime::from_millis(i as u64), i))
            .collect();
        assert_eq!(q.len(), 5);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
