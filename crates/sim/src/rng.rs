//! Deterministic pseudo-random number generation.
//!
//! The whole reproduction pipeline must be replayable from a single `u64`
//! seed: experiment results in `EXPERIMENTS.md` cite seeds, and the
//! regression tests assert exact metric values. Third-party PRNGs (e.g.
//! `rand::rngs::SmallRng`) explicitly do not promise stream stability across
//! releases, so this crate carries its own implementations of two small,
//! well-studied generators:
//!
//! * [`SplitMix64`] — used for seed derivation / stream splitting,
//! * [`Pcg32`] — PCG-XSH-RR 64/32, the workhorse generator.

/// SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// Primarily used to derive independent seeds for per-node [`Pcg32`]
/// streams: feeding consecutive outputs of a `SplitMix64` into `Pcg32::new`
/// yields streams that are de-correlated even for adjacent seeds.
///
/// # Example
///
/// ```
/// use gtt_sim::SplitMix64;
/// let mut sm = SplitMix64::new(42);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All 2^64 seeds are valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0)
    }
}

/// PCG-XSH-RR 64/32 generator (O'Neill 2014).
///
/// A 64-bit-state, 32-bit-output generator with excellent statistical
/// quality for its size and a guaranteed-stable output stream. One instance
/// lives in every simulated node plus one in the radio medium, so streams
/// never interleave across components and adding a node does not perturb
/// the randomness seen by existing ones.
///
/// # Example
///
/// ```
/// use gtt_sim::Pcg32;
/// let mut rng = Pcg32::new(7);
/// let roll = rng.gen_range_u32(0, 6); // uniform in [0, 6)
/// assert!(roll < 6);
/// let p = rng.gen_f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;
const PCG_DEFAULT_STREAM: u64 = 1_442_695_040_888_963_407;

impl Pcg32 {
    /// Creates a generator on the default stream from `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, PCG_DEFAULT_STREAM >> 1)
    }

    /// Creates a generator with an explicit stream selector.
    ///
    /// Two generators with equal seeds but different streams produce
    /// independent sequences.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derives a child generator; used to hand every simulated component
    /// its own stream from one experiment seed.
    pub fn split(&mut self) -> Pcg32 {
        let seed = ((self.next_u32() as u64) << 32) | self.next_u32() as u64;
        let stream = ((self.next_u32() as u64) << 32) | self.next_u32() as u64;
        Pcg32::with_stream(seed, stream)
    }

    /// Returns the next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit output (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform integer in `[lo, hi)` using Lemire's unbiased method.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u32();
        let mut m = (x as u64) * (span as u64);
        let mut l = m as u32;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u32();
                m = (x as u64) * (span as u64);
                l = m as u32;
            }
        }
        lo + (m >> 32) as u32
    }

    /// Uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX as usize`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty collection");
        assert!(n <= u32::MAX as usize, "index range too large");
        self.gen_range_u32(0, n as u32) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used by the Poisson traffic generator (inter-arrival times).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn gen_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // Inverse-CDF; (1 - u) avoids ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }
}

impl Default for Pcg32 {
    fn default() -> Self {
        Pcg32::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn pcg_stream_is_stable() {
        // Pin the stream so accidental algorithm changes fail loudly;
        // these values define this crate's determinism contract.
        let mut rng = Pcg32::new(42);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        let mut rng2 = Pcg32::new(42);
        let second: Vec<u32> = (0..4).map(|_| rng2.next_u32()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_streams_differ() {
        let mut a = Pcg32::with_stream(1, 0);
        let mut b = Pcg32::with_stream(1, 1);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_children_are_independent() {
        let mut root = Pcg32::new(7);
        let mut c1 = root.split();
        let mut c2 = root.split();
        let v1: Vec<u32> = (0..8).map(|_| c1.next_u32()).collect();
        let v2: Vec<u32> = (0..8).map(|_| c2.next_u32()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = Pcg32::new(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range_u32(10, 16);
            assert!((10..16).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Pcg32::new(9);
        for _ in 0..1_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = Pcg32::new(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(-0.5));
        assert!(rng.gen_bool(1.5));
    }

    #[test]
    fn gen_bool_roughly_matches_probability() {
        let mut rng = Pcg32::new(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.3).abs() < 0.02, "freq {freq} too far from 0.3");
    }

    #[test]
    fn gen_exp_mean_is_close() {
        let mut rng = Pcg32::new(13);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| rng.gen_exp(4.0)).sum();
        let mean = total / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.1,
            "sample mean {mean} too far from 4"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::new(17);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle should move something"
        );
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Pcg32::new(19);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert!(rng.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = Pcg32::new(23);
        let _ = rng.gen_range_u32(5, 5);
    }
}
