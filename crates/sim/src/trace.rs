//! Structured trace hooks.
//!
//! The engine emits trace records at interesting points (slot actions,
//! packet fates, schedule updates). Tests and the experiment harness attach
//! a [`TraceSink`] to observe them; production runs use [`NullSink`], which
//! compiles down to nothing.

use std::fmt;

use crate::time::SimTime;

/// Severity/category of a trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceLevel {
    /// Per-slot radio/MAC activity (very chatty).
    Slot,
    /// Packet lifecycle: generated, forwarded, delivered, dropped.
    Packet,
    /// Control plane: DIO/EB/6P messages, schedule changes.
    Control,
    /// Rare events worth surfacing in any run: joins, parent switches.
    Info,
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceLevel::Slot => "slot",
            TraceLevel::Packet => "packet",
            TraceLevel::Control => "control",
            TraceLevel::Info => "info",
        };
        f.write_str(s)
    }
}

/// A single trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened.
    pub time: SimTime,
    /// Category.
    pub level: TraceLevel,
    /// Index of the node the record concerns (usize::MAX = network-wide).
    pub node: usize,
    /// Human-readable message.
    pub message: String,
}

impl TraceRecord {
    /// Sentinel node index for records not tied to a node.
    pub const NETWORK: usize = usize::MAX;
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.node == Self::NETWORK {
            write!(f, "[{} {}] {}", self.time, self.level, self.message)
        } else {
            write!(
                f,
                "[{} {} n{}] {}",
                self.time, self.level, self.node, self.message
            )
        }
    }
}

/// Receives trace records from a simulation.
pub trait TraceSink {
    /// Handles one record. Implementations should be cheap; the engine may
    /// call this thousands of times per simulated second at `Slot` level.
    fn record(&mut self, record: TraceRecord);

    /// Returns `true` if `level` is wanted; the engine skips formatting
    /// work for unwanted levels.
    fn wants(&self, level: TraceLevel) -> bool {
        let _ = level;
        true
    }
}

/// A sink that drops everything (the default for experiment runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _record: TraceRecord) {}

    fn wants(&self, _level: TraceLevel) -> bool {
        false
    }
}

/// A sink that stores records in memory; used throughout the test suite.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    /// Collected records, in emission order.
    pub records: Vec<TraceRecord>,
    /// Minimum level collected (None = collect everything).
    pub min_level: Option<TraceLevel>,
}

impl VecSink {
    /// Creates a sink collecting every level.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// Creates a sink collecting only records at `level` or above
    /// (ordering: Slot < Packet < Control < Info).
    pub fn at_least(level: TraceLevel) -> Self {
        VecSink {
            records: Vec::new(),
            min_level: Some(level),
        }
    }

    /// Returns the messages of all collected records containing `needle`.
    pub fn matching(&self, needle: &str) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.message.contains(needle))
            .collect()
    }
}

impl TraceSink for VecSink {
    fn record(&mut self, record: TraceRecord) {
        if self.wants(record.level) {
            self.records.push(record);
        }
    }

    fn wants(&self, level: TraceLevel) -> bool {
        match self.min_level {
            None => true,
            Some(min) => level >= min,
        }
    }
}

/// A sink that prints records to stderr; handy in examples.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink {
    /// Minimum level printed (None = everything).
    pub min_level: Option<TraceLevel>,
}

impl TraceSink for StderrSink {
    fn record(&mut self, record: TraceRecord) {
        if self.wants(record.level) {
            eprintln!("{record}");
        }
    }

    fn wants(&self, level: TraceLevel) -> bool {
        match self.min_level {
            None => true,
            Some(min) => level >= min,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(level: TraceLevel, msg: &str) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_millis(15),
            level,
            node: 3,
            message: msg.to_string(),
        }
    }

    #[test]
    fn null_sink_wants_nothing() {
        let sink = NullSink;
        assert!(!sink.wants(TraceLevel::Info));
        assert!(!sink.wants(TraceLevel::Slot));
    }

    #[test]
    fn vec_sink_collects_and_filters() {
        let mut sink = VecSink::at_least(TraceLevel::Control);
        sink.record(rec(TraceLevel::Slot, "tx"));
        sink.record(rec(TraceLevel::Control, "6p add"));
        sink.record(rec(TraceLevel::Info, "joined"));
        assert_eq!(sink.records.len(), 2);
        assert_eq!(sink.matching("6p").len(), 1);
    }

    #[test]
    fn record_display_includes_node() {
        let r = rec(TraceLevel::Packet, "delivered");
        let s = r.to_string();
        assert!(s.contains("n3"), "{s}");
        assert!(s.contains("delivered"), "{s}");

        let net = TraceRecord {
            node: TraceRecord::NETWORK,
            ..r
        };
        assert!(!net.to_string().contains("n18446744073709551615"));
    }

    #[test]
    fn level_ordering_matches_verbosity() {
        assert!(TraceLevel::Slot < TraceLevel::Packet);
        assert!(TraceLevel::Packet < TraceLevel::Control);
        assert!(TraceLevel::Control < TraceLevel::Info);
    }
}
