//! # gtt-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the lowest layer of the GT-TSCH reproduction. It provides
//! the building blocks every other crate relies on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulation time,
//! * [`Pcg32`] / [`SplitMix64`] — small, fast, *fully deterministic* PRNGs
//!   whose streams never change between releases (unlike `rand`'s
//!   `SmallRng`), so every experiment in the paper reproduction is exactly
//!   replayable from a seed,
//! * [`EventQueue`] — a stable-ordered future event list,
//! * [`Timer`] / [`TimerWheel`] — periodic and one-shot timers checked at
//!   slot boundaries,
//! * [`trace`] — lightweight structured trace hooks used by the engine and
//!   the test suite.
//!
//! # Example
//!
//! ```
//! use gtt_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(15), "slot 1");
//! q.schedule(SimTime::ZERO, "slot 0");
//! let (t0, e0) = q.pop().unwrap();
//! assert_eq!(t0, SimTime::ZERO);
//! assert_eq!(e0, "slot 0");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod rng;
pub mod time;
pub mod timer;
pub mod trace;

pub use events::EventQueue;
pub use rng::{Pcg32, SplitMix64};
pub use time::{SimDuration, SimTime};
pub use timer::{Timer, TimerWheel};
