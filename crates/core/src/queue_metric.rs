//! The EWMA queue metric of eq. 6.

/// Exponentially weighted moving average of the queue length:
/// `Q̄(t) = ζ·Q̄(t−1) + (1−ζ)·q(t)` (paper eq. 6).
///
/// "To define a smooth queue metric which is resilient against the sudden
/// changes" — a transient burst does not immediately change the game's
/// queue cost, but sustained congestion does.
///
/// # Example
///
/// ```
/// use gt_tsch::QueueEwma;
///
/// let mut q = QueueEwma::new(0.5);
/// q.update(4.0);
/// q.update(4.0);
/// assert!((q.value() - 3.0).abs() < 1e-12); // 0.5·2 + 0.5·4
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QueueEwma {
    zeta: f64,
    value: f64,
}

impl QueueEwma {
    /// Creates the metric with smoothing factor `ζ` (weight of history).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ζ < 1`.
    pub fn new(zeta: f64) -> Self {
        assert!((0.0..1.0).contains(&zeta), "ζ must be in [0,1), got {zeta}");
        QueueEwma { zeta, value: 0.0 }
    }

    /// Current `Q̄`.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Feeds the instantaneous queue length `q(t)` (eq. 6).
    pub fn update(&mut self, queue_len: f64) -> f64 {
        self.value = self.zeta * self.value + (1.0 - self.zeta) * queue_len;
        self.value
    }

    /// Resets to an empty queue.
    pub fn reset(&mut self) {
        self.value = 0.0;
    }
}

impl Default for QueueEwma {
    fn default() -> Self {
        QueueEwma::new(0.3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_constant_input() {
        let mut q = QueueEwma::new(0.7);
        for _ in 0..200 {
            q.update(5.0);
        }
        assert!((q.value() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zeta_zero_tracks_instantaneously() {
        let mut q = QueueEwma::new(0.0);
        q.update(7.0);
        assert_eq!(q.value(), 7.0);
        q.update(1.0);
        assert_eq!(q.value(), 1.0);
    }

    #[test]
    fn smooths_bursts() {
        let mut smooth = QueueEwma::new(0.9);
        let mut jumpy = QueueEwma::new(0.1);
        for _ in 0..5 {
            smooth.update(0.0);
            jumpy.update(0.0);
        }
        smooth.update(8.0);
        jumpy.update(8.0);
        assert!(smooth.value() < jumpy.value(), "higher ζ ⇒ slower reaction");
    }

    #[test]
    fn reset_clears() {
        let mut q = QueueEwma::default();
        q.update(4.0);
        q.reset();
        assert_eq!(q.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "ζ must be in [0,1)")]
    fn unit_zeta_rejected() {
        let _ = QueueEwma::new(1.0);
    }
}
