//! Slotframe layout: §IV timeslot placement and §V data-cell rules.

use gtt_mac::{CellClass, Slotframe};

/// Broadcast timeslot offsets (§IV rule 1): uniformly distributed as
/// `{x | x < m, x mod ⌊m/k⌋ = 0}`.
///
/// # Example
///
/// The paper's own example: `m = 20, k = 5 → {0, 4, 8, 12, 16}`.
///
/// ```
/// use gt_tsch::layout::broadcast_offsets;
/// assert_eq!(broadcast_offsets(20, 5), vec![0, 4, 8, 12, 16]);
/// ```
///
/// # Panics
///
/// Panics if `k` is zero or `k > m`.
pub fn broadcast_offsets(m: u16, k: u16) -> Vec<u16> {
    assert!(k >= 1 && k <= m, "need 1 ≤ k ≤ m (got k={k}, m={m})");
    let step = m / k;
    (0..m).filter(|x| x % step == 0).collect()
}

/// Shared timeslot offsets (§IV rule 4): the slots immediately after the
/// first `count` broadcast slots, so they are uniformly spread too and
/// never collide with broadcast offsets.
///
/// # Panics
///
/// Panics if the layout cannot fit (`count` larger than the number of
/// broadcast slots or `m` too small).
pub fn shared_offsets(m: u16, k: u16, count: u16) -> Vec<u16> {
    let bcast = broadcast_offsets(m, k);
    assert!(
        (count as usize) <= bcast.len(),
        "cannot place {count} shared slots next to {} broadcast slots",
        bcast.len()
    );
    bcast
        .iter()
        .take(count as usize)
        .map(|&b| (b + 1) % m)
        .collect()
}

/// The slot offsets of `sf` with no scheduled cell (candidate slots for
/// 6P negotiation), in increasing order.
pub fn free_slots(sf: &Slotframe) -> Vec<u16> {
    let mut occupied = vec![false; sf.length() as usize];
    for cell in sf.cells() {
        occupied[cell.slot.index()] = true;
    }
    (0..sf.length())
        .filter(|&s| !occupied[s as usize])
        .collect()
}

/// The §V interleaving check: would adding a *data Rx* cell at `slot`
/// leave two consecutive data-Rx cells with no data-Tx cell between them
/// (cyclically)?
///
/// "GT-TSCH allocates at least one TSCH Tx timeslot between two
/// consecutive TSCH Rx timeslots" — Fig. 5's congestion example. Nodes
/// with no Tx cells at all (roots) are exempt: the rule exists to bound a
/// *forwarder's* queue.
pub fn rx_placement_ok(sf: &Slotframe, slot: u16) -> bool {
    // Collect data cells as (slot, is_tx), plus the prospective Rx.
    let mut cells: Vec<(u16, bool)> = sf
        .cells()
        .iter()
        .filter(|c| c.class == CellClass::Data)
        .map(|c| (c.slot.raw(), c.options.tx))
        .collect();
    let has_tx = cells.iter().any(|&(_, tx)| tx);
    if !has_tx {
        // Root-style node: the interleave rule is vacuous.
        return true;
    }
    cells.push((slot, false));
    cells.sort_unstable();
    // Cyclic scan: between any two consecutive Rx entries there must be
    // a Tx entry.
    let n = cells.len();
    for i in 0..n {
        let (_, tx_here) = cells[i];
        if tx_here {
            continue;
        }
        // The next data cell cyclically must not be another Rx…
        let (_, tx_next) = cells[(i + 1) % n];
        if !tx_next {
            return false;
        }
    }
    true
}

/// Orders a child's candidate Tx slots for an ADD proposal (§V): prefer
/// slots that break up consecutive-Rx runs in this node's own schedule,
/// then the remaining free slots rotated by `salt` (callers pass the
/// node id). The rotation keeps siblings from proposing identical
/// lowest-first lists — without it, two children whose low slots are
/// already taken at the parent would deterministically collide on the
/// same doomed proposal forever. Returns at most `limit` slots.
pub fn candidate_tx_slots(sf: &Slotframe, limit: usize, salt: u64) -> Vec<u16> {
    let free = free_slots(sf);
    if free.is_empty() || limit == 0 {
        return Vec::new();
    }

    // Data-Rx slots of this node (cells from its children).
    let rx_slots: Vec<u16> = sf
        .cells()
        .iter()
        .filter(|c| c.class == CellClass::Data && c.options.rx && !c.options.tx)
        .map(|c| c.slot.raw())
        .collect();

    // Score: 1 if the free slot falls cyclically between two Rx slots
    // with no Tx between (placing a Tx there enforces the §V rule).
    let tx_slots: Vec<u16> = sf
        .cells()
        .iter()
        .filter(|c| c.class == CellClass::Data && c.options.tx)
        .map(|c| c.slot.raw())
        .collect();
    let breaks_rx_run = |slot: u16| -> bool {
        if rx_slots.len() < 2 {
            return false;
        }
        let mut events: Vec<(u16, u8)> = Vec::new(); // 0 = rx, 1 = tx, 2 = candidate
        events.extend(rx_slots.iter().map(|&s| (s, 0u8)));
        events.extend(tx_slots.iter().map(|&s| (s, 1u8)));
        events.push((slot, 2));
        events.sort_unstable();
        let n = events.len();
        for i in 0..n {
            if events[i].1 == 2 {
                let prev = events[(i + n - 1) % n].1;
                let next = events[(i + 1) % n].1;
                return prev == 0 && next == 0;
            }
        }
        false
    };

    let mut breakers: Vec<u16> = Vec::new();
    let mut rest: Vec<u16> = Vec::new();
    for &s in &free {
        if breaks_rx_run(s) {
            breakers.push(s);
        } else {
            rest.push(s);
        }
    }
    // Rotate the plain free slots by the salt (deterministic per node).
    if !rest.is_empty() {
        let k = (salt as usize) % rest.len();
        rest.rotate_left(k);
    }
    breakers.into_iter().chain(rest).take(limit).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gtt_mac::{Cell, ChannelOffset, SlotOffset};
    use gtt_net::NodeId;

    fn data_tx(sf: &mut Slotframe, slot: u16) {
        sf.add(Cell::data_tx(
            SlotOffset::new(slot),
            ChannelOffset::new(1),
            NodeId::new(0),
        ));
    }

    fn data_rx(sf: &mut Slotframe, slot: u16) {
        sf.add(Cell::data_rx(
            SlotOffset::new(slot),
            ChannelOffset::new(2),
            NodeId::new(9),
        ));
    }

    #[test]
    fn paper_example_m20_k5() {
        assert_eq!(broadcast_offsets(20, 5), vec![0, 4, 8, 12, 16]);
    }

    #[test]
    fn m32_k4_spreads_every_8() {
        assert_eq!(broadcast_offsets(32, 4), vec![0, 8, 16, 24]);
    }

    #[test]
    fn non_divisible_k_still_covers() {
        // m=20, k=6: step 3 → 0,3,6,9,12,15,18 (7 slots ≥ k).
        let offs = broadcast_offsets(20, 6);
        assert!(offs.len() >= 6);
        assert!(offs.iter().all(|&x| x < 20));
    }

    #[test]
    fn shared_slots_follow_broadcast_slots() {
        assert_eq!(shared_offsets(32, 4, 3), vec![1, 9, 17]);
        // Never overlapping the broadcast offsets themselves.
        let b = broadcast_offsets(32, 4);
        for s in shared_offsets(32, 4, 3) {
            assert!(!b.contains(&s));
        }
    }

    #[test]
    fn free_slots_excludes_occupied() {
        let mut sf = Slotframe::new(8);
        data_tx(&mut sf, 2);
        data_rx(&mut sf, 5);
        assert_eq!(free_slots(&sf), vec![0, 1, 3, 4, 6, 7]);
    }

    #[test]
    fn rx_placement_rule_fig5() {
        // Fig. 5's rule, cyclic version: every Rx must be followed by a
        // Tx before the next Rx. With Tx at 5 and 8 and Rx at 0:
        let mut sf = Slotframe::new(10);
        data_rx(&mut sf, 0);
        data_tx(&mut sf, 5);
        data_tx(&mut sf, 8);
        assert!(rx_placement_ok(&sf, 6), "Rx at 6 is drained by Tx at 8");
        assert!(
            !rx_placement_ok(&sf, 1),
            "Rx at 1 back-to-back with Rx at 0"
        );
        // Wrap-around: Rx at 9 is followed (cyclically) by Rx at 0 with
        // no Tx in slot 9→0; Fig. 5a's queue build-up — rejected.
        assert!(!rx_placement_ok(&sf, 9));
    }

    #[test]
    fn one_tx_supports_exactly_one_rx() {
        // Corollary of the cyclic rule: a forwarder with a single Tx cell
        // can host at most one Rx cell — mirroring the §V "Tx > Rx"
        // capacity rule.
        let mut sf = Slotframe::new(10);
        data_tx(&mut sf, 5);
        assert!(rx_placement_ok(&sf, 2));
        data_rx(&mut sf, 2);
        for cand in [0, 1, 3, 4, 6, 7, 8, 9] {
            assert!(!rx_placement_ok(&sf, cand), "slot {cand} must be rejected");
        }
    }

    #[test]
    fn rx_placement_vacuous_for_roots() {
        let mut sf = Slotframe::new(10);
        data_rx(&mut sf, 0);
        data_rx(&mut sf, 1);
        // No Tx cells at all: a root may pack Rx cells densely.
        assert!(rx_placement_ok(&sf, 2));
    }

    #[test]
    fn candidates_prefer_breaking_rx_runs() {
        let mut sf = Slotframe::new(12);
        data_rx(&mut sf, 2);
        data_rx(&mut sf, 4);
        data_tx(&mut sf, 8);
        // Slot 3 sits between the two Rx cells → highest priority.
        let cands = candidate_tx_slots(&sf, 4, 0);
        assert_eq!(cands[0], 3, "run-breaking slot first, got {cands:?}");
        // The salt rotates only the non-breaking remainder.
        let salted = candidate_tx_slots(&sf, 4, 5);
        assert_eq!(salted[0], 3, "breakers stay first under salt");
        assert_ne!(cands[1..], salted[1..], "salt must rotate the rest");
    }

    #[test]
    fn candidates_respect_limit_and_emptiness() {
        let mut sf = Slotframe::new(6);
        for s in 0..6 {
            data_tx(&mut sf, s);
        }
        assert!(candidate_tx_slots(&sf, 4, 0).is_empty(), "no free slots");
        let sf2 = Slotframe::new(6);
        assert_eq!(candidate_tx_slots(&sf2, 3, 0).len(), 3);
        // Different salts cover different starting points of the space.
        let a = candidate_tx_slots(&sf2, 3, 0);
        let b = candidate_tx_slots(&sf2, 3, 2);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "1 ≤ k ≤ m")]
    fn zero_k_rejected() {
        let _ = broadcast_offsets(10, 0);
    }

    #[test]
    #[should_panic(expected = "shared slots")]
    fn too_many_shared_rejected() {
        let _ = shared_offsets(32, 2, 5);
    }
}
