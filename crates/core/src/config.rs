//! GT-TSCH configuration.

use crate::game::GameWeights;

/// Parameters of the GT-TSCH scheduling function.
#[derive(Debug, Clone, PartialEq)]
pub struct GtTschConfig {
    /// Slotframe size `m` (§IV rule 1; Table II: 32). GT-TSCH uses a
    /// single slotframe for all traffic planes.
    pub slotframe_len: u16,
    /// Number of broadcast timeslots `k`, uniformly spread (§IV rule 1).
    pub broadcast_slots: u16,
    /// Number of shared timeslots (§IV rule 4: half the maximum number
    /// of children, each shared by two children).
    pub shared_slots: u16,
    /// Game weights α, β, γ (eq. 8).
    pub weights: GameWeights,
    /// Queue-metric smoothing factor ζ (eq. 6).
    pub zeta: f64,
    /// The broadcast channel offset `f_bcast`.
    pub fbcast: u8,
    /// Cap on the Rx capacity a node advertises in its DIO `l_rx` option;
    /// bounds the per-transaction grant so one greedy child cannot claim
    /// the parent's whole slotframe in one round.
    pub rx_advertise_cap: u16,
    /// Tx cells beyond demand tolerated before a DELETE is issued (§IV
    /// rule 3: release cells under light load).
    pub delete_slack: u16,
    /// **Ablation switch**: replace Algorithm 1 with hash-based channel
    /// selection (`hash(node) mod |F|`), the strawman the paper's §III
    /// analyses. Disables `ASK-CHANNEL`; used by the `ablation_channel`
    /// experiment to quantify what the channel-allocation strategies buy.
    pub hash_channels: bool,
}

impl GtTschConfig {
    /// The configuration used in the paper's evaluation (slotframe 32).
    pub fn paper_default() -> Self {
        GtTschConfig {
            slotframe_len: 32,
            broadcast_slots: 4,
            // Paper: max children = 8 channels − 3 = 5; shared slots =
            // ⌈5/2⌉.
            shared_slots: 3,
            weights: GameWeights::default(),
            zeta: 0.3,
            fbcast: 0,
            rx_advertise_cap: 8,
            delete_slack: 1,
            hash_channels: false,
        }
    }

    /// Same proportions, different slotframe length — used by the Fig. 10
    /// sweep where GT-TSCH runs at 4× Orchestra's unicast slotframe.
    ///
    /// # Panics
    ///
    /// Panics if `m < 8` (no room for broadcast + shared + data slots).
    pub fn with_slotframe_len(m: u16) -> Self {
        assert!(m >= 8, "GT-TSCH needs at least 8 slots, got {m}");
        GtTschConfig {
            slotframe_len: m,
            broadcast_slots: (m / 8).max(2),
            ..GtTschConfig::paper_default()
        }
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on invalid values.
    pub fn validate(&self) {
        assert!(self.slotframe_len >= 8, "slotframe too short");
        assert!(
            self.broadcast_slots >= 1 && self.broadcast_slots < self.slotframe_len,
            "broadcast slot count out of range"
        );
        assert!(
            self.broadcast_slots + self.shared_slots < self.slotframe_len,
            "no slots left for data"
        );
        assert!((0.0..1.0).contains(&self.zeta), "ζ must be in [0,1)");
        self.weights.validate();
    }
}

impl Default for GtTschConfig {
    fn default() -> Self {
        GtTschConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        GtTschConfig::paper_default().validate();
    }

    #[test]
    fn scaled_slotframes_are_valid() {
        for m in [32, 48, 64, 80] {
            let cfg = GtTschConfig::with_slotframe_len(m);
            cfg.validate();
            assert_eq!(cfg.slotframe_len, m);
            assert!(cfg.broadcast_slots >= 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 8 slots")]
    fn tiny_slotframe_rejected() {
        let _ = GtTschConfig::with_slotframe_len(4);
    }
}
