//! The GT-TSCH channel-allocation scheme (paper §III, Algorithm 1).
//!
//! GT-TSCH assigns every parent one channel on which *all* its children
//! transmit to it, keeps a node's parent-facing and child-facing channels
//! distinct, and keeps each allocated channel unique along three-hop
//! routing paths. That fixes the four §III interference problems of
//! hash-based schedulers:
//!
//! 1. a node never transmits and receives in the same (slot, channel),
//! 2. sibling parents receive from their children on different channels,
//! 3. uncle/nephew pairs use different channels,
//! 4. two-hop (hidden-terminal) reuse is excluded because a channel is
//!    unique among `{f_bcast, f_{i,p}, f_{i,cs}}` and all sibling
//!    allocations at the grandparent.

use std::collections::BTreeMap;

use gtt_net::NodeId;

/// Per-parent allocator answering `ASK-CHANNEL` requests (Algorithm 1,
/// lines 8–22).
///
/// Node `i` runs one of these; for each child `j` that asks, it allocates
/// `f_{j,cs_j}` — the channel `j` will use to *receive from its own
/// children* — avoiding `f_bcast`, `f_{i,p_i}`, `f_{i,cs_i}` and every
/// channel already granted to another child.
///
/// # Example
///
/// ```
/// use gt_tsch::ChannelAllocator;
/// use gtt_net::NodeId;
///
/// let mut alloc = ChannelAllocator::new(8, 0); // 8 offsets, f_bcast = 0
/// let a = alloc.allocate(NodeId::new(5), Some(1), Some(2)).unwrap();
/// let b = alloc.allocate(NodeId::new(6), Some(1), Some(2)).unwrap();
/// assert_ne!(a, b);
/// assert!(![0, 1, 2].contains(&a) && ![0, 1, 2].contains(&b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ChannelAllocator {
    n_offsets: u8,
    fbcast: u8,
    assigned: BTreeMap<NodeId, u8>,
}

impl ChannelAllocator {
    /// Creates an allocator over `n_offsets` channel offsets with the
    /// broadcast channel `fbcast` reserved.
    ///
    /// # Panics
    ///
    /// Panics if `fbcast` is not a valid offset or fewer than 2 offsets
    /// exist.
    pub fn new(n_offsets: u8, fbcast: u8) -> Self {
        assert!(n_offsets >= 2, "need at least two channel offsets");
        assert!(fbcast < n_offsets, "f_bcast outside the offset space");
        ChannelAllocator {
            n_offsets,
            fbcast,
            assigned: BTreeMap::new(),
        }
    }

    /// The paper's §III bound on children per parent: with `n` channels,
    /// one is `f_bcast` and two are the node's own parent/children
    /// channels, leaving `n − 3` distinct child allocations.
    pub fn max_children(&self) -> u8 {
        self.n_offsets.saturating_sub(3)
    }

    /// The channel already granted to `child`, if any.
    pub fn channel_of(&self, child: NodeId) -> Option<u8> {
        self.assigned.get(&child).copied()
    }

    /// Number of children with allocations.
    pub fn allocated(&self) -> usize {
        self.assigned.len()
    }

    /// Allocates (or returns the existing) channel for `child`,
    /// excluding `f_bcast`, this node's own parent-facing channel
    /// (`f_self_parent`) and child-facing channel (`f_self_children`),
    /// and every sibling's allocation (Algorithm 1 inner loop).
    ///
    /// When all distinct offsets are exhausted (more children than
    /// [`ChannelAllocator::max_children`] — the paper bounds the fan-out
    /// to avoid this), the least-used sibling allocation is reused: the
    /// three-hop uniqueness guarantee degrades gracefully instead of
    /// refusing service.
    ///
    /// Returns `None` only when *no* offset outside the reserved set
    /// exists.
    pub fn allocate(
        &mut self,
        child: NodeId,
        f_self_parent: Option<u8>,
        f_self_children: Option<u8>,
    ) -> Option<u8> {
        if let Some(&existing) = self.assigned.get(&child) {
            return Some(existing);
        }
        let reserved =
            |z: u8| z == self.fbcast || Some(z) == f_self_parent || Some(z) == f_self_children;

        // Algorithm 1: first offset not reserved and not used by a
        // sibling (deterministic smallest-first keeps runs replayable).
        let fresh =
            (0..self.n_offsets).find(|&z| !reserved(z) && !self.assigned.values().any(|&v| v == z));
        if let Some(z) = fresh {
            self.assigned.insert(child, z);
            return Some(z);
        }

        // Overflow: reuse the least-used non-reserved offset.
        let mut usage: BTreeMap<u8, usize> = BTreeMap::new();
        for &v in self.assigned.values() {
            *usage.entry(v).or_insert(0) += 1;
        }
        let reuse = (0..self.n_offsets)
            .filter(|&z| !reserved(z))
            .min_by_key(|z| usage.get(z).copied().unwrap_or(0))?;
        self.assigned.insert(child, reuse);
        Some(reuse)
    }

    /// Releases `child`'s allocation (no-path DAO, child expiry).
    pub fn release(&mut self, child: NodeId) {
        self.assigned.remove(&child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u16) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn allocations_avoid_reserved_channels() {
        let mut a = ChannelAllocator::new(8, 0);
        for i in 0..5 {
            let z = a.allocate(id(i), Some(3), Some(4)).unwrap();
            assert!(
                ![0, 3, 4].contains(&z),
                "child {i} got reserved channel {z}"
            );
        }
    }

    #[test]
    fn siblings_get_distinct_channels() {
        let mut a = ChannelAllocator::new(8, 0);
        let mut seen = std::collections::BTreeSet::new();
        // max_children = 5 distinct allocations.
        for i in 0..5 {
            let z = a.allocate(id(i), Some(1), Some(2)).unwrap();
            assert!(seen.insert(z), "duplicate channel {z}");
        }
        assert_eq!(a.allocated(), 5);
    }

    #[test]
    fn allocation_is_stable_per_child() {
        let mut a = ChannelAllocator::new(8, 0);
        let first = a.allocate(id(9), Some(1), Some(2)).unwrap();
        let second = a.allocate(id(9), Some(1), Some(2)).unwrap();
        assert_eq!(first, second);
        assert_eq!(a.allocated(), 1);
    }

    #[test]
    fn overflow_reuses_least_used() {
        let mut a = ChannelAllocator::new(8, 0);
        for i in 0..5 {
            a.allocate(id(i), Some(1), Some(2)).unwrap();
        }
        // Sixth child exceeds max_children: must reuse, never a reserved
        // channel.
        let z = a.allocate(id(99), Some(1), Some(2)).unwrap();
        assert!(![0, 1, 2].contains(&z));
    }

    #[test]
    fn release_frees_channel_for_reuse() {
        let mut a = ChannelAllocator::new(5, 0); // offsets 1..5 minus 2 reserved
        let z1 = a.allocate(id(1), Some(1), Some(2)).unwrap();
        a.release(id(1));
        assert_eq!(a.channel_of(id(1)), None);
        let z2 = a.allocate(id(2), Some(1), Some(2)).unwrap();
        assert_eq!(z1, z2, "released channel is the first candidate again");
    }

    #[test]
    fn root_allocates_without_parent_channel() {
        let mut a = ChannelAllocator::new(8, 0);
        let z = a.allocate(id(1), None, Some(5)).unwrap();
        assert!(z != 0 && z != 5);
    }

    #[test]
    fn three_hop_uniqueness_structure() {
        // Model the Fig. 3 chain: root → A → G. The channel G uses with
        // its children must differ from A's children channel and from
        // root's children channel — exactly what excluding
        // {f_self_parent, f_self_children} at each hop produces.
        let mut root = ChannelAllocator::new(8, 0);
        let root_children_ch = 1u8; // root picked f_root,cs = 1
        let a_children_ch = root.allocate(id(10), None, Some(root_children_ch)).unwrap();
        assert_ne!(a_children_ch, root_children_ch);

        let mut node_a = ChannelAllocator::new(8, 0);
        // A's parent-facing channel is root_children_ch; its child-facing
        // channel is a_children_ch.
        let g_children_ch = node_a
            .allocate(id(20), Some(root_children_ch), Some(a_children_ch))
            .unwrap();
        assert_ne!(g_children_ch, a_children_ch, "next hop differs");
        assert_ne!(g_children_ch, root_children_ch, "two hops up differs");
    }

    #[test]
    fn impossible_allocation_returns_none() {
        // 2 offsets, fbcast=0, parent channel 1: nothing remains.
        let mut a = ChannelAllocator::new(2, 0);
        assert_eq!(a.allocate(id(1), Some(1), None), None);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_offset_space_rejected() {
        let _ = ChannelAllocator::new(1, 0);
    }
}
