//! The non-cooperative TSCH cell-allocation game (paper §VII).
//!
//! Players are IoT nodes; node `i`'s strategy is the number of TSCH Tx
//! cells `l_tx_i` it requests from its parent, constrained to
//! `S_i = [l_tx_min_i, l_rx_{p_i}]` (eq. 1 lower bound, parent's
//! advertised capacity upper bound). The payoff (eq. 8)
//!
//! ```text
//! v_i = α·R̄ank_i·ln(l+1) − β·l·(ETX−1) − γ·l·(1 − Q̄/Q_max)
//! ```
//!
//! is strictly concave in `l` (Theorem 1), and because each node's payoff
//! depends only on its own strategy, best responses are dominant
//! strategies: the unique Nash equilibrium (Theorem 2, via Rosen's
//! diagonal strict concavity) is every node playing eq. 15's closed form.
//! The tests at the bottom verify all of this numerically.

/// The user-preference weights α, β, γ of eq. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameWeights {
    /// Weight of the utility term (throughput appetite).
    pub alpha: f64,
    /// Weight of the link-quality cost (energy on lossy links).
    pub beta: f64,
    /// Weight of the queue cost (congestion avoidance).
    pub gamma: f64,
}

impl Default for GameWeights {
    fn default() -> Self {
        // "For networks with high quality links under heavy traffic load,
        // queue cost should have a higher priority … (γ should be greater
        // than β)" — §VII-D. These defaults follow that guidance.
        GameWeights {
            alpha: 1.0,
            beta: 0.5,
            gamma: 1.0,
        }
    }
}

impl GameWeights {
    /// Validates the weights (all non-negative, α positive).
    ///
    /// # Panics
    ///
    /// Panics on invalid weights.
    pub fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha.is_finite(),
            "alpha must be positive"
        );
        assert!(
            self.beta >= 0.0 && self.beta.is_finite(),
            "beta must be non-negative"
        );
        assert!(
            self.gamma >= 0.0 && self.gamma.is_finite(),
            "gamma must be non-negative"
        );
    }
}

/// Which bound of the strategy set eq. 15 landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// The interior stationary point was feasible.
    Interior,
    /// Clamped to `l_tx_min` (the node needs at least its deficit).
    Lower,
    /// Clamped to `l_rx_parent` (the parent cannot grant more).
    Upper,
}

/// The outcome of the best-response computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BestResponse {
    /// The optimal number of Tx cells to request.
    pub cells: u16,
    /// Which constraint was active.
    pub bound: Bound,
}

/// All inputs to node `i`'s payoff (Table I symbols).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GameInputs {
    /// `R̄ank_i = MinStepOfRank / (Rank_i − Rank_min)` (eq. 3); use
    /// [`Rank::game_weight`](gtt_rpl::Rank::game_weight).
    pub rank_weight: f64,
    /// `ETX_{i,p_i} ≥ 1` (eq. 4).
    pub etx: f64,
    /// The EWMA queue metric `Q̄_i` (eq. 6).
    pub queue_avg: f64,
    /// `Q_max`: the queue capacity.
    pub queue_max: f64,
    /// Strategy lower bound `l_tx_min_i` (eq. 1).
    pub l_tx_min: u16,
    /// Strategy upper bound `l_rx_{p_i}` (parent's DIO option).
    pub l_rx_parent: u16,
}

impl GameInputs {
    /// The utility term `u_i = R̄ank_i · ln(l+1)` (eq. 2).
    pub fn utility(&self, l: f64) -> f64 {
        self.rank_weight * (l + 1.0).ln()
    }

    /// The link-quality cost `d_i = l·(ETX−1)` (eq. 5).
    pub fn link_cost(&self, l: f64) -> f64 {
        l * (self.etx - 1.0)
    }

    /// The queue cost `z_i = l·(1 − Q̄/Q_max)` (eq. 7).
    pub fn queue_cost(&self, l: f64) -> f64 {
        l * (1.0 - self.queue_avg / self.queue_max)
    }

    /// The payoff `v_i = α·u − β·d − γ·z` (eq. 8).
    pub fn payoff(&self, weights: &GameWeights, l: f64) -> f64 {
        weights.alpha * self.utility(l)
            - weights.beta * self.link_cost(l)
            - weights.gamma * self.queue_cost(l)
    }

    /// First derivative of the payoff in `l` (used in the KKT condition).
    pub fn payoff_gradient(&self, weights: &GameWeights, l: f64) -> f64 {
        weights.alpha * self.rank_weight / (l + 1.0)
            - weights.beta * (self.etx - 1.0)
            - weights.gamma * (1.0 - self.queue_avg / self.queue_max)
    }

    /// Second derivative of the payoff in `l`: always negative (eq. 10),
    /// establishing strict concavity (Theorem 1).
    pub fn payoff_curvature(&self, weights: &GameWeights, l: f64) -> f64 {
        -weights.alpha * self.rank_weight / (l + 1.0).powi(2)
    }

    /// The unconstrained stationary point `X` of eq. 15:
    /// `X = α·R̄ank / (γ(1 − Q̄/Q_max) + β(ETX−1)) − 1`.
    ///
    /// Returns `f64::INFINITY` when the marginal cost is zero (perfect
    /// link and saturated queue) — the node then wants as many cells as
    /// the parent will give.
    pub fn stationary_point(&self, weights: &GameWeights) -> f64 {
        let marginal_cost = weights.gamma * (1.0 - self.queue_avg / self.queue_max)
            + weights.beta * (self.etx - 1.0);
        if marginal_cost <= 0.0 {
            return f64::INFINITY;
        }
        weights.alpha * self.rank_weight / marginal_cost - 1.0
    }

    /// The paper's eq. 15: the KKT-optimal `l_tx_i`, clamped to the
    /// strategy set `[l_tx_min, l_rx_parent]`.
    ///
    /// When the strategy set is empty (`l_rx_parent < l_tx_min`, i.e. the
    /// parent cannot even cover the deficit — the "`l_rx_p ≤ l_tx_min`"
    /// case in §VII), the node requests everything the parent has:
    /// `l_rx_parent`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are out of domain (ETX < 1, Q̄ outside
    /// `[0, Q_max]`, non-positive `Q_max`) or weights invalid.
    pub fn best_response(&self, weights: &GameWeights) -> BestResponse {
        weights.validate();
        assert!(self.etx >= 1.0, "ETX must be ≥ 1 (eq. 4), got {}", self.etx);
        assert!(self.queue_max > 0.0, "Q_max must be positive");
        assert!(
            (0.0..=self.queue_max).contains(&self.queue_avg),
            "queue metric {} outside [0, {}]",
            self.queue_avg,
            self.queue_max
        );
        assert!(
            self.rank_weight.is_finite() && self.rank_weight > 0.0,
            "rank weight must be positive (roots do not play)"
        );

        if self.l_rx_parent <= self.l_tx_min {
            // Degenerate strategy set: take all the parent offers.
            return BestResponse {
                cells: self.l_rx_parent,
                bound: Bound::Upper,
            };
        }

        let x = self.stationary_point(weights);
        if x <= self.l_tx_min as f64 {
            BestResponse {
                cells: self.l_tx_min,
                bound: Bound::Lower,
            }
        } else if x >= self.l_rx_parent as f64 {
            BestResponse {
                cells: self.l_rx_parent,
                bound: Bound::Upper,
            }
        } else {
            // Cells are integral; round to the better of the two
            // neighbors of the continuous optimum (concavity makes the
            // comparison sufficient).
            let lo = x.floor();
            let hi = x.ceil();
            let pick = if self.payoff(weights, lo) >= self.payoff(weights, hi) {
                lo
            } else {
                hi
            };
            BestResponse {
                cells: pick as u16,
                bound: Bound::Interior,
            }
        }
    }
}

/// Computes the unique Nash equilibrium of an n-player game instance.
///
/// Because `v_i` depends only on the player's own strategy (the coupling
/// between players is through the constraint sets, fixed at decision
/// time), the equilibrium is simply every player's best response — this
/// function exists to make the game-theoretic claim executable and
/// testable against iterated best-response dynamics.
pub fn nash_equilibrium(players: &[GameInputs], weights: &GameWeights) -> Vec<u16> {
    players
        .iter()
        .map(|p| p.best_response(weights).cells)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> GameInputs {
        // A first-hop forwarder with a decent link and a filling queue:
        // marginal cost = γ·(1−6/8) + β·(1.2−1) = 0.25 + 0.1 = 0.35,
        // X = 1/0.35 − 1 ≈ 1.857 — an interior optimum.
        GameInputs {
            rank_weight: 1.0,
            etx: 1.2,
            queue_avg: 6.0,
            queue_max: 8.0,
            l_tx_min: 1,
            l_rx_parent: 10,
        }
    }

    fn w() -> GameWeights {
        GameWeights::default()
    }

    #[test]
    fn payoff_terms_match_equations() {
        let g = inputs();
        // eq. 2 at l = e−1: ln(e) = 1 → u = rank_weight.
        let l = std::f64::consts::E - 1.0;
        assert!((g.utility(l) - 1.0).abs() < 1e-12);
        // eq. 5: l(ETX−1).
        assert!((g.link_cost(4.0) - 4.0 * 0.2).abs() < 1e-10);
        // eq. 7: l(1−Q/Qmax).
        assert!((g.queue_cost(4.0) - 4.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn curvature_is_negative_everywhere() {
        // Theorem 1: ∂²v/∂l² = −αR̄/(1+l)² < 0.
        let g = inputs();
        for l in 0..50 {
            assert!(g.payoff_curvature(&w(), l as f64) < 0.0);
        }
    }

    #[test]
    fn stationary_point_matches_gradient_zero() {
        let g = inputs();
        let x = g.stationary_point(&w());
        assert!(x.is_finite());
        assert!(
            g.payoff_gradient(&w(), x).abs() < 1e-9,
            "gradient at X must vanish"
        );
    }

    #[test]
    fn interior_optimum_beats_neighbors() {
        let g = inputs();
        let br = g.best_response(&w());
        assert_eq!(br.bound, Bound::Interior);
        let l = br.cells as f64;
        let v = g.payoff(&w(), l);
        // No feasible integer strategy does better (dominant strategy).
        for other in g.l_tx_min..=g.l_rx_parent {
            assert!(
                g.payoff(&w(), other as f64) <= v + 1e-12,
                "l={other} beats the claimed optimum {l}"
            );
        }
    }

    #[test]
    fn clamps_to_lower_bound_on_bad_links() {
        // A terrible link (ETX 8) makes extra cells expensive: the node
        // only requests its deficit.
        let g = GameInputs {
            etx: 8.0,
            l_tx_min: 3,
            ..inputs()
        };
        let br = g.best_response(&w());
        assert_eq!(br.bound, Bound::Lower);
        assert_eq!(br.cells, 3);
    }

    #[test]
    fn clamps_to_upper_bound_when_queue_saturated() {
        // Full queue ⇒ queue cost vanishes ⇒ X → ∞ ⇒ take all offered.
        let g = GameInputs {
            etx: 1.0,
            queue_avg: 8.0,
            ..inputs()
        };
        assert_eq!(g.stationary_point(&w()), f64::INFINITY);
        let br = g.best_response(&w());
        assert_eq!(br.bound, Bound::Upper);
        assert_eq!(br.cells, 10);
    }

    #[test]
    fn degenerate_strategy_set_takes_everything() {
        // §VII: "l_tx_i is set equal to l_rx_p when l_rx_p ≤ l_tx_min".
        let g = GameInputs {
            l_tx_min: 5,
            l_rx_parent: 3,
            ..inputs()
        };
        let br = g.best_response(&w());
        assert_eq!(br.cells, 3);
        assert_eq!(br.bound, Bound::Upper);
    }

    #[test]
    fn nodes_closer_to_root_request_more() {
        // eq. 3's priority: larger rank weight ⇒ larger interior optimum.
        let near = GameInputs {
            rank_weight: 1.0,
            ..inputs()
        };
        let far = GameInputs {
            rank_weight: 0.25, // 4 hops deep
            ..inputs()
        };
        assert!(
            near.best_response(&w()).cells >= far.best_response(&w()).cells,
            "closer nodes must win the allocation game"
        );
    }

    #[test]
    fn worse_links_request_fewer_cells() {
        let good = GameInputs {
            etx: 1.0,
            ..inputs()
        };
        let bad = GameInputs {
            etx: 3.0,
            ..inputs()
        };
        assert!(good.best_response(&w()).cells >= bad.best_response(&w()).cells);
    }

    #[test]
    fn fuller_queues_request_more_cells() {
        let empty = GameInputs {
            queue_avg: 0.0,
            ..inputs()
        };
        let full = GameInputs {
            queue_avg: 7.0,
            ..inputs()
        };
        assert!(full.best_response(&w()).cells >= empty.best_response(&w()).cells);
    }

    #[test]
    fn nash_is_fixed_point_of_best_response_dynamics() {
        // Theorem 2 (uniqueness): iterated best response converges in one
        // round and never moves afterwards.
        let players: Vec<GameInputs> = (1..=4)
            .map(|hop| GameInputs {
                rank_weight: 1.0 / hop as f64,
                etx: 1.0 + 0.2 * hop as f64,
                queue_avg: hop as f64,
                queue_max: 8.0,
                l_tx_min: 1,
                l_rx_parent: 12,
            })
            .collect();
        let ne = nash_equilibrium(&players, &w());
        // Re-running best responses from the equilibrium changes nothing.
        let again = nash_equilibrium(&players, &w());
        assert_eq!(ne, again);
        // And no unilateral integer deviation improves any player.
        for (p, &l_star) in players.iter().zip(&ne) {
            let v_star = p.payoff(&w(), l_star as f64);
            for dev in p.l_tx_min..=p.l_rx_parent {
                assert!(p.payoff(&w(), dev as f64) <= v_star + 1e-12);
            }
        }
    }

    #[test]
    fn diagonal_strict_concavity_numeric() {
        // Theorem 2's condition: x'(J + Jᵀ)x < 0. Cross-partials vanish
        // (payoffs decouple), so J is diagonal with the (negative)
        // curvatures on the diagonal; verify the quadratic form on a few
        // random-ish vectors.
        let players: Vec<GameInputs> = (1..=3)
            .map(|h| GameInputs {
                rank_weight: 1.0 / h as f64,
                ..inputs()
            })
            .collect();
        let diag: Vec<f64> = players
            .iter()
            .map(|p| p.payoff_curvature(&w(), 2.0))
            .collect();
        for x in [[1.0, 0.0, 0.0], [0.3, -0.7, 0.2], [1.0, 1.0, 1.0]] {
            let quad: f64 = diag.iter().zip(&x).map(|(d, xi)| 2.0 * d * xi * xi).sum();
            assert!(quad < 0.0, "quadratic form must be negative definite");
        }
    }

    #[test]
    fn rounding_picks_better_integer() {
        // Construct an instance with a fractional interior X and check
        // the rounded value dominates the other neighbor.
        let g = GameInputs {
            etx: 1.1,
            queue_avg: 6.5,
            ..inputs()
        };
        let x = g.stationary_point(&w());
        assert!(x.fract() != 0.0, "want a fractional optimum, got {x}");
        let br = g.best_response(&w());
        assert_eq!(br.bound, Bound::Interior);
        let other = if (br.cells as f64) < x {
            br.cells + 1
        } else {
            br.cells - 1
        };
        assert!(g.payoff(&w(), br.cells as f64) >= g.payoff(&w(), other as f64));
    }

    #[test]
    #[should_panic(expected = "ETX must be ≥ 1")]
    fn sub_unity_etx_rejected() {
        let g = GameInputs {
            etx: 0.5,
            ..inputs()
        };
        let _ = g.best_response(&w());
    }

    #[test]
    #[should_panic(expected = "roots do not play")]
    fn root_cannot_play() {
        let g = GameInputs {
            rank_weight: f64::NAN,
            ..inputs()
        };
        let _ = g.best_response(&w());
    }
}
